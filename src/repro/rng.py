"""Deterministic random-stream management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  Experiments need *independent* streams
per run and per logical thread so that (a) results are reproducible from
a single master seed and (b) changing the number of threads does not
silently reuse a stream.  We build a seed tree with
:class:`numpy.random.SeedSequence`:

    master seed
      └── run r            (spawn index r)
            └── thread t   (spawn index t)

The helpers below make the tree explicit instead of scattering
``default_rng(seed + i)`` arithmetic around the code base (adjacent
integer seeds are *not* independent streams).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "seed_for_run",
    "stream_for",
    "DEFAULT_SEED",
]

#: Seed used by harnesses when the caller does not provide one.
DEFAULT_SEED = 0xC6A_2010


def make_rng(seed: int | np.random.SeedSequence | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, SeedSequence, Generator or ``None``.

    Passing an existing Generator returns it unchanged so APIs can accept
    "anything seedable" without re-wrapping.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically
    independent regardless of the numeric value of ``seed``.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def seed_for_run(master_seed: int, run_index: int) -> np.random.SeedSequence:
    """SeedSequence for one independent run of an experiment."""
    if run_index < 0:
        raise ValueError(f"run_index must be >= 0, got {run_index}")
    return np.random.SeedSequence(master_seed, spawn_key=(run_index,))


def stream_for(master_seed: int, *path: int) -> np.random.Generator:
    """Generator addressed by a path in the seed tree.

    ``stream_for(seed, run, thread)`` gives thread ``thread`` of run
    ``run``; any depth works (instance generation uses a hash path).
    """
    if any(p < 0 for p in path):
        raise ValueError(f"seed-tree path must be non-negative, got {path}")
    return np.random.default_rng(np.random.SeedSequence(master_seed, spawn_key=tuple(path)))


def hash_name(name: str) -> int:
    """Stable non-negative integer hash of a string (for instance seeds).

    ``hash()`` is salted per interpreter run, so we use FNV-1a instead.
    """
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def interleave_choice(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Pick an index proportional to ``weights`` (used by the sim engine).

    Separated out so the discrete-event scheduler has one tested,
    vectorized primitive instead of ad-hoc cumulative sums.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    return int(rng.choice(w.size, p=w / total))

"""Simulated annealing baseline (one of Braun et al.'s eleven mappers).

A single-solution metaheuristic over the same representation: the
neighborhood is the paper's *move* operation (one task to one machine),
acceptance follows Metropolis with a geometric cooling schedule, and
the incumbent starts from Min-min — the configuration Braun et al.
found workable for the ETC benchmark.  Serves as a cheap
population-free reference point for the comparison experiments.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.cga.config import StopCondition
from repro.cga.engine import RunResult
from repro.etc.model import ETCMatrix
from repro.heuristics.minmin import min_min
from repro.rng import make_rng
from repro.scheduling.delta import PeakTracker
from repro.scheduling.schedule import Schedule

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing:
    """Metropolis SA over task-move neighborhoods.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    initial_temperature:
        Starting temperature as a *fraction of the initial makespan*
        (temperature scales with the objective, so instances of any
        magnitude anneal alike).
    cooling:
        Geometric factor per evaluation (Braun et al. used 0.8–0.9 per
        sweep; per-evaluation cooling close to 1 matches that).
    seed_with_minmin:
        Start from Min-min (True, as in Braun et al.) or random.
    """

    def __init__(
        self,
        instance: ETCMatrix,
        initial_temperature: float = 0.1,
        cooling: float = 0.9995,
        seed_with_minmin: bool = True,
        rng: np.random.Generator | int | None = 0,
    ):
        if initial_temperature <= 0:
            raise ValueError(f"initial_temperature must be > 0, got {initial_temperature}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.instance = instance
        self.rng = make_rng(rng)
        self.cooling = cooling
        if seed_with_minmin:
            self.current = min_min(instance)
        else:
            self.current = Schedule.random(instance, self.rng)
        self.best = self.current.copy()
        self.temperature = initial_temperature * self.current.makespan()

    def run(self, stop: StopCondition) -> RunResult:
        """Anneal until ``stop``; one evaluation = one proposed move."""
        inst = self.instance
        rng = self.rng
        cur = self.current
        cur_fit = cur.makespan()
        best, best_fit = self.best, self.best.makespan()
        etc_t = inst.etc_t
        # O(1) "max over the other machines" per proposal instead of
        # np.delete(...).max() — same floats, bit-identical trajectory
        peaks = PeakTracker(cur.ct)
        evaluations = 0
        history: list[tuple[int, int, float, float]] = [(0, 0, best_fit, cur_fit)]
        t0 = time.perf_counter()
        while True:
            elapsed = time.perf_counter() - t0
            if stop.done(evaluations, evaluations, elapsed, best_fit):
                break
            task = int(rng.integers(0, inst.ntasks))
            machine = int(rng.integers(0, inst.nmachines))
            old = int(cur.s[task])
            evaluations += 1
            if old == machine:
                self.temperature *= self.cooling
                continue
            new_src = cur.ct[old] - etc_t[old, task]
            new_dst = cur.ct[machine] + etc_t[machine, task]
            rest = peaks.max_excluding(old, machine)
            new_fit = max(rest, new_src, new_dst)
            delta = new_fit - cur_fit
            if delta <= 0 or rng.random() < math.exp(-delta / max(self.temperature, 1e-12)):
                cur.move(task, machine)
                peaks.notify((old, machine))
                cur_fit = new_fit
                if cur_fit < best_fit:
                    best = cur.copy()
                    best_fit = cur_fit
            self.temperature *= self.cooling
            if evaluations % 1000 == 0:
                history.append((evaluations // 1000, evaluations, best_fit, cur_fit))
        self.current, self.best = cur, best
        return RunResult(
            best_fitness=float(best_fit),
            best_assignment=best.s.copy(),
            evaluations=evaluations,
            generations=evaluations // 1000,
            elapsed_s=time.perf_counter() - t0,
            history=history,
            extra={
                "algorithm": "simulated-annealing",
                "final_temperature": self.temperature,
            },
        )

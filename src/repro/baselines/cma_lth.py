"""cMA + LTH (Xhafa, Alba, Dorronsoro & Duran 2008) — Table 2 baseline.

A cellular memetic algorithm whose offspring are refined by a **Local
Tabu Hop**: a short Tabu-Search walk over single-task *transfer* moves
off the most loaded machine.  Unlike H2LL, LTH accepts the best
non-tabu move even when it does not improve the makespan (diversifying
hops), with the classical aspiration criterion (a tabu move is allowed
if it beats the best makespan seen in the walk).

This is a faithful-in-spirit reimplementation from the published
description; the exact parameter files of the original study are not
available, so the defaults below follow the paper's scale (short walks,
small tabu tenure).  The cellular layer reuses this library's CGA
machinery, so the comparison against PA-CGA isolates the local-search
and update-policy differences.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import AsyncCGA, RunResult
from repro.cga.local_search import LOCAL_SEARCHES
from repro.etc.model import ETCMatrix

__all__ = ["local_tabu_hop", "CMALTH"]

#: Default tabu tenure (moves a task stays untouchable after moving).
DEFAULT_TENURE = 7


def local_tabu_hop(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    iterations: int = 5,
    n_candidates: int | None = None,
    tenure: int = DEFAULT_TENURE,
) -> int:
    """Run a Local-Tabu-Hop walk in place; return #moves applied.

    Per hop: take the most loaded machine, score moving each of its
    non-tabu tasks to its best alternative machine, apply the best hop
    (improving or not), mark the task tabu, and remember the best
    configuration seen.  The arrays are left at the *best* visited
    state, so LTH never degrades the offspring it polishes.

    Signature matches :data:`repro.cga.local_search.LOCAL_SEARCHES` so
    a :class:`CGAConfig` can select ``"lth"`` directly.
    """
    if iterations <= 0:
        return 0
    etc_t = instance.etc_t
    nmachines = instance.nmachines
    if nmachines < 2:
        return 0
    tabu: deque[int] = deque(maxlen=max(1, tenure))
    best_s = s.copy()
    best_ct = ct.copy()
    best_makespan = float(ct.max())
    moves = 0
    for _ in range(iterations):
        worst = int(ct.argmax())
        makespan = float(ct[worst])
        tasks = np.flatnonzero(s == worst)
        if tasks.size == 0:
            break
        # score every (task on worst machine) → (its best other machine)
        free = np.array([t for t in tasks if t not in tabu], dtype=np.int64)
        aspiring = free
        if free.size == 0:
            aspiring = tasks  # everything tabu: aspiration decides below
        # resulting makespan if task t leaves `worst` for machine m:
        #   max(ct[worst] - etc[worst, t], ct[m] + etc[m, t], rest)
        best_task = -1
        best_mac = -1
        best_after = np.inf
        order = np.argsort(ct, kind="stable")  # order[-1] == worst
        for t in aspiring:
            t = int(t)
            src_after = makespan - etc_t[worst, t]
            dst_loads = ct + etc_t[:, t]
            dst_loads[worst] = np.inf  # moving to itself is not a hop
            m = int(dst_loads.argmin())
            if m == int(order[-2]):
                rest = float(ct[order[-3]]) if nmachines >= 3 else 0.0
            else:
                rest = float(ct[order[-2]])
            after = max(src_after, float(dst_loads[m]), rest)
            # aspiration: tabu tasks may move only if they beat the best
            if t in tabu and after >= best_makespan:
                continue
            if after < best_after:
                best_after = after
                best_task = t
                best_mac = m
        if best_task < 0:
            break
        ct[worst] -= etc_t[worst, best_task]
        ct[best_mac] += etc_t[best_mac, best_task]
        s[best_task] = best_mac
        tabu.append(best_task)
        moves += 1
        cur = float(ct.max())
        if cur < best_makespan:
            best_makespan = cur
            best_s[:] = s
            best_ct[:] = ct
    # hand back the best visited configuration
    s[:] = best_s
    ct[:] = best_ct
    return moves


# make "lth" selectable from any CGAConfig
LOCAL_SEARCHES.setdefault("lth", local_tabu_hop)


class CMALTH:
    """Cellular memetic algorithm hybridized with Local Tabu Hop.

    A preset around :class:`repro.cga.engine.AsyncCGA` with the 2008
    study's operator choices: tournament selection, two-point
    crossover, move mutation, LTH refinement of every offspring.
    """

    def __init__(
        self,
        instance: ETCMatrix,
        ls_iterations: int = 5,
        rng: np.random.Generator | int | None = 0,
        config: CGAConfig | None = None,
    ):
        self.instance = instance
        self.config = config or CGAConfig(
            selection="tournament",
            crossover="tpx",
            p_comb=1.0,
            mutation="move",
            p_mut=1.0,
            local_search="lth",
            ls_iterations=ls_iterations,
            replacement="if-better",
        )
        if self.config.local_search != "lth":
            raise ValueError("CMALTH requires the 'lth' local search")
        self._engine = AsyncCGA(instance, self.config, rng=rng)

    def run(self, stop: StopCondition) -> RunResult:
        """Evolve until ``stop``; returns the run trace."""
        result = self._engine.run(stop)
        result.extra["algorithm"] = "cma+lth"
        return result

"""Standalone Tabu Search baseline (Braun et al.'s mapper family).

A single-solution Tabu Search over the transfer-move neighborhood:
batches of Local-Tabu-Hop walks (shared with the cMA+LTH baseline)
interleaved with random-move diversification whenever the search
stagnates — the classical short-term-memory TS with restarts that
Braun et al. evaluated alongside GA and SA.

Budget accounting: one *evaluation* = one hop (each hop scores every
candidate move incrementally, like H2LL's candidate scan, so a hop is
the natural unit comparable to one offspring evaluation).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.cma_lth import local_tabu_hop
from repro.cga.config import StopCondition
from repro.cga.engine import RunResult
from repro.etc.model import ETCMatrix
from repro.heuristics.minmin import min_min
from repro.rng import make_rng
from repro.scheduling.schedule import Schedule

__all__ = ["TabuSearch"]


class TabuSearch:
    """Tabu Search with LTH walks and stagnation-triggered restarts.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    batch:
        Hops per LTH walk between stagnation checks.
    tenure:
        Tabu tenure inside each walk.
    stagnation:
        Walks without improvement before diversification kicks in.
    shake_moves:
        Random task moves applied on diversification.
    seed_with_minmin:
        Start from Min-min (as Braun et al. do) or random.
    """

    def __init__(
        self,
        instance: ETCMatrix,
        batch: int = 20,
        tenure: int = 7,
        stagnation: int = 5,
        shake_moves: int = 8,
        seed_with_minmin: bool = True,
        rng: np.random.Generator | int | None = 0,
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if stagnation < 1:
            raise ValueError(f"stagnation must be >= 1, got {stagnation}")
        if shake_moves < 1:
            raise ValueError(f"shake_moves must be >= 1, got {shake_moves}")
        self.instance = instance
        self.batch = batch
        self.tenure = tenure
        self.stagnation = stagnation
        self.shake_moves = shake_moves
        self.rng = make_rng(rng)
        self.current = (
            min_min(instance) if seed_with_minmin else Schedule.random(instance, self.rng)
        )
        self.best = self.current.copy()

    def _shake(self) -> None:
        """Diversify: random task moves on the incumbent."""
        inst = self.instance
        for _ in range(self.shake_moves):
            t = int(self.rng.integers(0, inst.ntasks))
            m = int(self.rng.integers(0, inst.nmachines))
            self.current.move(t, m)

    def run(self, stop: StopCondition) -> RunResult:
        """Search until ``stop``; returns the best schedule found."""
        cur = self.current
        best, best_fit = self.best, self.best.makespan()
        evaluations = 0
        walks = 0
        shakes = 0
        stale = 0
        history: list[tuple[int, int, float, float]] = [
            (0, 0, best_fit, cur.makespan())
        ]
        t0 = time.perf_counter()
        while True:
            elapsed = time.perf_counter() - t0
            if stop.done(evaluations, walks, elapsed, best_fit):
                break
            local_tabu_hop(
                cur.s, cur.ct, self.instance, self.rng,
                iterations=self.batch, tenure=self.tenure,
            )
            evaluations += self.batch
            walks += 1
            fit = cur.makespan()
            if fit < best_fit - 1e-12:
                best = cur.copy()
                best_fit = fit
                stale = 0
            else:
                stale += 1
                if stale >= self.stagnation:
                    self._shake()
                    shakes += 1
                    stale = 0
            history.append((walks, evaluations, best_fit, cur.makespan()))
        self.current, self.best = cur, best
        return RunResult(
            best_fitness=float(best_fit),
            best_assignment=best.s.copy(),
            evaluations=evaluations,
            generations=walks,
            elapsed_s=time.perf_counter() - t0,
            history=history,
            extra={"algorithm": "tabu-search", "shakes": shakes},
        )

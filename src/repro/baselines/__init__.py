"""Literature baselines compared against PA-CGA in Table 2.

* :class:`StruggleGA` — Xhafa's steady-state GA with *struggle*
  replacement (offspring replaces the most similar individual when
  better), a panmictic (non-decentralized) population GA.
* :func:`local_tabu_hop` / :class:`CMALTH` — reimplementation of the
  cellular memetic algorithm hybridized with Tabu Search of
  Xhafa, Alba, Dorronsoro & Duran (2008).

Importing this package registers the ``lth`` local search in
``repro.cga.local_search.LOCAL_SEARCHES`` so it can be used from any
:class:`repro.cga.CGAConfig`.
"""

from repro.baselines.struggle_ga import StruggleGA
from repro.baselines.cma_lth import CMALTH, local_tabu_hop
from repro.baselines.sa import SimulatedAnnealing
from repro.baselines.island_ga import IslandGA
from repro.baselines.tabu import TabuSearch

__all__ = ["StruggleGA", "CMALTH", "local_tabu_hop", "SimulatedAnnealing", "IslandGA", "TabuSearch"]

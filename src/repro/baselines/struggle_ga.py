"""Struggle GA (Xhafa 2006) — the panmictic baseline of Table 2.

A steady-state GA whose replacement operator implements *struggle*
(Grüninger & Wallace): the offspring competes with the most *similar*
individual of the whole population and replaces it only if fitter.
Similarity-based crowding keeps niches alive, which is what made it a
strong GA for batch scheduling before the cellular approaches.

Reimplemented from the description in the paper's reference [19]; the
genetic operators are shared with the CGA (same crossover/mutation
modules), so the comparison isolates the population model.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cga.config import StopCondition
from repro.cga.crossover import CROSSOVERS, child_with_ct
from repro.cga.engine import RunResult
from repro.cga.mutation import MUTATIONS
from repro.etc.model import ETCMatrix
from repro.heuristics.minmin import min_min
from repro.rng import make_rng

__all__ = ["StruggleGA"]


class StruggleGA:
    """Steady-state struggle GA.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    pop_size:
        Panmictic population size (Xhafa uses ~60–70 for these
        instances; default 64).
    crossover, mutation:
        Operator names resolved from the shared registries.
    p_comb, p_mut:
        Operator probabilities.
    tournament:
        Parent-selection tournament size.
    seed_with_minmin:
        Plant one Min-min individual (same protocol as PA-CGA).
    replacement:
        Steady-state replacement operator — the subject of the paper's
        reference [19], which compared exactly these policies:

        * ``"struggle"`` — offspring fights the most *similar*
          individual (crowding; the best diversity keeper);
        * ``"worst"`` — offspring replaces the population's worst;
        * ``"random"`` — offspring replaces a random individual;

        each applied only when the offspring is strictly better than
        its victim.
    """

    REPLACEMENTS = ("struggle", "worst", "random")

    def __init__(
        self,
        instance: ETCMatrix,
        pop_size: int = 64,
        crossover: str = "tpx",
        mutation: str = "move",
        p_comb: float = 0.8,
        p_mut: float = 0.4,
        tournament: int = 3,
        seed_with_minmin: bool = True,
        replacement: str = "struggle",
        rng: np.random.Generator | int | None = 0,
    ):
        if pop_size < 2:
            raise ValueError(f"pop_size must be >= 2, got {pop_size}")
        if tournament < 1:
            raise ValueError(f"tournament must be >= 1, got {tournament}")
        if replacement not in self.REPLACEMENTS:
            raise ValueError(
                f"replacement must be one of {self.REPLACEMENTS}, got {replacement!r}"
            )
        self.replacement = replacement
        self.instance = instance
        self.pop_size = pop_size
        self.crossover = CROSSOVERS[crossover]
        self.mutate = MUTATIONS[mutation]
        self.p_comb = p_comb
        self.p_mut = p_mut
        self.tournament = tournament
        self.rng = make_rng(rng)

        self.s = self.rng.integers(
            0, instance.nmachines, size=(pop_size, instance.ntasks), dtype=np.int32
        )
        if seed_with_minmin:
            self.s[0] = min_min(instance).s
        self.ct = np.empty((pop_size, instance.nmachines))
        for i in range(pop_size):
            ct = instance.ready_times.copy()
            np.add.at(ct, self.s[i], instance.etc[np.arange(instance.ntasks), self.s[i]])
            self.ct[i] = ct
        self.fitness = self.ct.max(axis=1)

    # ------------------------------------------------------------------
    def _select_parent(self) -> int:
        """Tournament selection over the whole (panmictic) population."""
        contenders = self.rng.integers(0, self.pop_size, size=self.tournament)
        return int(contenders[self.fitness[contenders].argmin()])

    def _most_similar(self, child_s: np.ndarray) -> int:
        """Index of the population member with the most matching genes."""
        matches = (self.s == child_s[None, :]).sum(axis=1)
        return int(matches.argmax())

    def _pick_victim(self, child_s: np.ndarray) -> int:
        """Replacement target under the configured policy."""
        if self.replacement == "struggle":
            return self._most_similar(child_s)
        if self.replacement == "worst":
            return int(self.fitness.argmax())
        return int(self.rng.integers(0, self.pop_size))

    # ------------------------------------------------------------------
    def run(self, stop: StopCondition) -> RunResult:
        """Steady-state evolution until ``stop``.

        One *evaluation* = one offspring; ``generations`` counts
        ``pop_size`` evaluations to stay comparable with the CGA traces.
        """
        inst = self.instance
        rng = self.rng
        evaluations = 0
        history: list[tuple[int, int, float, float]] = []
        t0 = time.perf_counter()
        history.append((0, 0, float(self.fitness.min()), float(self.fitness.mean())))
        while True:
            elapsed = time.perf_counter() - t0
            generations = evaluations // self.pop_size
            if stop.done(evaluations, generations, elapsed, float(self.fitness.min())):
                break
            a = self._select_parent()
            b = self._select_parent()
            if self.fitness[b] < self.fitness[a]:
                a, b = b, a
            if rng.random() < self.p_comb:
                child_s, child_ct = child_with_ct(
                    inst, self.s[a], self.ct[a], self.s[b], self.crossover, rng
                )
            else:
                child_s, child_ct = self.s[a].copy(), self.ct[a].copy()
            if rng.random() < self.p_mut:
                self.mutate(child_s, child_ct, inst, rng)
            child_fit = float(child_ct.max())
            evaluations += 1

            # replacement: fight the policy-selected victim
            rival = self._pick_victim(child_s)
            if child_fit < self.fitness[rival]:
                self.s[rival] = child_s
                self.ct[rival] = child_ct
                self.fitness[rival] = child_fit

            if evaluations % self.pop_size == 0:
                history.append(
                    (
                        evaluations // self.pop_size,
                        evaluations,
                        float(self.fitness.min()),
                        float(self.fitness.mean()),
                    )
                )
        best = int(self.fitness.argmin())
        return RunResult(
            best_fitness=float(self.fitness[best]),
            best_assignment=self.s[best].copy(),
            evaluations=evaluations,
            generations=evaluations // self.pop_size,
            elapsed_s=time.perf_counter() - t0,
            history=history,
            extra={
                "algorithm": "struggle-ga",
                "pop_size": self.pop_size,
                "replacement": self.replacement,
            },
        )

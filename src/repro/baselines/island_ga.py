"""Island-model (distributed) cellular GA baseline.

The paper positions PA-CGA against the *cluster* parallelizations of
cGAs (refs [4], [5]): coarse-grained islands that evolve independently
and exchange individuals by explicit migration, instead of PA-CGA's
shared-memory blocks with overlapping neighborhoods.  This baseline
implements that architecture — k independent cellular islands with
ring migration of elites — so the two parallelization philosophies can
be compared at equal evaluation budgets.

The contrast the experiments surface: migration couples islands only
every ``migration_interval`` generations and only through single
elites, so information mixes far more slowly than through PA-CGA's
boundary-crossing neighborhoods; islands preserve more global
diversity at the cost of slower convergence.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.neighborhood import neighbor_table
from repro.cga.population import Population
from repro.etc.model import ETCMatrix
from repro.heuristics.minmin import min_min
from repro.rng import spawn_rngs

__all__ = ["IslandGA"]


class IslandGA:
    """k cellular islands with ring migration.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    n_islands:
        Number of independent subpopulations (ring-connected).
    island_config:
        Per-island cellular configuration; its grid is the island size
        (default 8×8, so 4 islands match the paper's 256 individuals).
    migration_interval:
        Generations between migrations (1 = every generation).
    migrants:
        Elites sent to the successor island per migration.
    seed:
        Seed tree root: one stream per island plus one for init.
    """

    def __init__(
        self,
        instance: ETCMatrix,
        n_islands: int = 4,
        island_config: CGAConfig | None = None,
        migration_interval: int = 5,
        migrants: int = 1,
        seed: int | None = 0,
    ):
        if n_islands < 1:
            raise ValueError(f"n_islands must be >= 1, got {n_islands}")
        if migration_interval < 1:
            raise ValueError(f"migration_interval must be >= 1, got {migration_interval}")
        if migrants < 1:
            raise ValueError(f"migrants must be >= 1, got {migrants}")
        self.instance = instance
        self.n_islands = n_islands
        self.config = island_config or CGAConfig(
            grid_rows=8, grid_cols=8, ls_iterations=5
        )
        if migrants >= self.config.population_size:
            raise ValueError("migrants must be smaller than the island population")
        self.migration_interval = migration_interval
        self.migrants = migrants
        self.grid = self.config.grid
        self.neighbors = neighbor_table(self.grid, self.config.neighborhood)
        self.ops = self.config.resolve()
        rngs = spawn_rngs(seed, n_islands + 1)
        init_rng, self._island_rngs = rngs[0], rngs[1:]
        self.islands: list[Population] = []
        for i in range(n_islands):
            pop = Population(instance, self.grid)
            seeds = [min_min(instance)] if (self.config.seed_with_minmin and i == 0) else None
            pop.init_random(init_rng, seed_schedules=seeds, fitness_fn=self.ops.fitness)
            self.islands.append(pop)

    # ------------------------------------------------------------------
    def _migrate(self) -> None:
        """Ring migration: island i's elites replace i+1's worst."""
        if self.n_islands < 2:
            return
        k = self.migrants
        # snapshot elites first so a migration wave is simultaneous
        payloads = []
        for pop in self.islands:
            order = np.argsort(pop.fitness, kind="stable")[:k]
            payloads.append(
                [(pop.s[j].copy(), pop.ct[j].copy(), float(pop.fitness[j])) for j in order]
            )
        for i, payload in enumerate(payloads):
            target = self.islands[(i + 1) % self.n_islands]
            worst = np.argsort(target.fitness, kind="stable")[-k:]
            for slot, (s, ct, fit) in zip(worst, payload):
                if fit < target.fitness[slot]:
                    target.write_individual(int(slot), s, ct, fit)

    def best(self) -> tuple[int, int, float]:
        """(island, index, fitness) of the global best individual."""
        best = (0, 0, float("inf"))
        for i, pop in enumerate(self.islands):
            idx, fit = pop.best()
            if fit < best[2]:
                best = (i, idx, fit)
        return best

    def run(self, stop: StopCondition) -> RunResult:
        """Round-robin island generations until ``stop``."""
        evaluations = 0
        generations = 0
        migrations = 0
        history: list[tuple[int, int, float, float]] = []
        t0 = time.perf_counter()
        island_size = self.grid.size

        def global_mean() -> float:
            return float(np.mean([pop.fitness.mean() for pop in self.islands]))

        history.append((0, 0, self.best()[2], global_mean()))
        while True:
            elapsed = time.perf_counter() - t0
            if stop.done(evaluations, generations, elapsed, self.best()[2]):
                break
            budget_hit = False
            for i, pop in enumerate(self.islands):
                rng = self._island_rngs[i]
                for idx in range(island_size):
                    evolve_individual(pop, idx, self.neighbors[idx], self.ops, rng)
                    evaluations += 1
                    if (
                        stop.max_evaluations is not None
                        and evaluations >= stop.max_evaluations
                    ):
                        budget_hit = True
                        break
                if budget_hit:
                    break
            generations += 1
            if generations % self.migration_interval == 0:
                self._migrate()
                migrations += 1
            history.append((generations, evaluations, self.best()[2], global_mean()))
        island, idx, fit = self.best()
        return RunResult(
            best_fitness=fit,
            best_assignment=self.islands[island].s[idx].copy(),
            evaluations=evaluations,
            generations=generations,
            elapsed_s=time.perf_counter() - t0,
            history=history,
            extra={
                "algorithm": "island-ga",
                "n_islands": self.n_islands,
                "migrations": migrations,
            },
        )

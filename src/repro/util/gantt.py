"""Plain-text Gantt rendering of a schedule.

For terminals and logs: one row per machine, task segments in SPT
order (the flowtime convention), proportional widths, makespan marker.
Used by the examples and handy when debugging operator behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, width: int = 72, max_machines: int | None = None) -> str:
    """Render ``schedule`` as a fixed-width text Gantt chart.

    Each machine row shows its queued tasks as blocks scaled to the
    makespan; blocks too narrow to label render as ``#``.  Rows are
    ordered by machine index; ``max_machines`` truncates tall charts.
    """
    if width < 20:
        raise ValueError(f"width must be >= 20, got {width}")
    inst = schedule.instance
    makespan = schedule.makespan()
    if makespan <= 0:
        return "(empty schedule)"
    scale = (width - 10) / makespan
    lines = []
    shown = inst.nmachines if max_machines is None else min(max_machines, inst.nmachines)
    for m in range(shown):
        tasks = schedule.tasks_on(m)
        times = inst.etc_t[m, tasks]
        order = np.argsort(times)  # SPT within the machine
        cursor = float(inst.ready_times[m])
        cells: list[str] = []
        if cursor > 0:
            cells.append("." * max(1, int(cursor * scale)))
        for k in order:
            t = int(tasks[k])
            span = max(1, int(times[k] * scale))
            label = f"t{t}"
            if span >= len(label) + 2:
                pad = span - len(label)
                cells.append("[" + label + "·" * (pad - 2) + "]")
            else:
                cells.append("#" * span)
            cursor += float(times[k])
        bar = "".join(cells)[: width - 10]
        lines.append(f"m{m:02d} |{bar:<{width - 10}}| {schedule.ct[m]:,.0f}")
    if shown < inst.nmachines:
        lines.append(f"... ({inst.nmachines - shown} more machines)")
    lines.append(f"{'makespan':>4} = {makespan:,.2f}")
    return "\n".join(lines)

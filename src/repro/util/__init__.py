"""Small shared utilities: text Gantt rendering, run persistence."""

from repro.util.gantt import render_gantt
from repro.util.persist import result_to_dict, result_from_dict, save_result, load_result

__all__ = [
    "render_gantt",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

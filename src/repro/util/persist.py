"""JSON persistence for run results.

Experiments at paper scale take long enough that losing results to a
crashed analysis script is painful; these helpers serialize
:class:`repro.cga.engine.RunResult` (including history and engine
metadata) to plain JSON so any later session — or any other tool — can
reload them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.cga.engine import RunResult

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]

_FORMAT_VERSION = 1


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def result_to_dict(result: RunResult) -> dict:
    """Lossless, JSON-serializable view of a run result."""
    return {
        "format_version": _FORMAT_VERSION,
        "best_fitness": result.best_fitness,
        "best_assignment": result.best_assignment.tolist(),
        "evaluations": result.evaluations,
        "generations": result.generations,
        "elapsed_s": result.elapsed_s,
        "history": [list(row) for row in result.history],
        "extra": _jsonable(result.extra),
    }


def result_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    return RunResult(
        best_fitness=float(data["best_fitness"]),
        best_assignment=np.asarray(data["best_assignment"], dtype=np.int32),
        evaluations=int(data["evaluations"]),
        generations=int(data["generations"]),
        elapsed_s=float(data["elapsed_s"]),
        history=[tuple(row) for row in data["history"]],
        extra=dict(data.get("extra", {})),
    )


def save_result(result: RunResult, path: str | os.PathLike) -> None:
    """Write a run result as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result)), encoding="utf-8")


def load_result(path: str | os.PathLike) -> RunResult:
    """Read a run result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

"""Constructive scheduling heuristics (Braun et al. 2001 family).

The paper seeds one individual of the PA-CGA population with the
Min-min schedule (§4.1, Table 1) and motivates metaheuristics by
comparing against this heuristic family; examples and benchmarks use
them as fast baselines.  All heuristics return a
:class:`repro.scheduling.Schedule`.
"""

from repro.heuristics.minmin import duplex, max_min, min_min
from repro.heuristics.sufferage import sufferage
from repro.heuristics.listsched import mct, met, olb
from repro.heuristics.random_sched import random_schedule

#: name → callable(instance, rng=None) registry used by CLIs and benches.
HEURISTICS = {
    "min-min": min_min,
    "max-min": max_min,
    "duplex": duplex,
    "sufferage": sufferage,
    "mct": mct,
    "met": met,
    "olb": olb,
    "random": random_schedule,
}

__all__ = [
    "min_min",
    "max_min",
    "duplex",
    "sufferage",
    "mct",
    "met",
    "olb",
    "random_schedule",
    "HEURISTICS",
]

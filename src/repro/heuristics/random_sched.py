"""Uniformly random schedules — the population initializer (§4.1).

The PA-CGA population is "initialized randomly, except for one
individual" (the Min-min seed); this module is that random part, kept
as a heuristic so it composes with the registry.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.rng import make_rng
from repro.scheduling.schedule import Schedule

__all__ = ["random_schedule"]


def random_schedule(
    instance: ETCMatrix, rng: np.random.Generator | int | None = None
) -> Schedule:
    """Assign every task to a uniformly random machine."""
    return Schedule.random(instance, make_rng(rng))

"""Sufferage heuristic (Maheswaran et al.; evaluated in Braun et al. 2001).

Each round, every unassigned task computes how much it would *suffer*
if denied its best machine: the gap between its second-best and best
completion times.  The task with the largest sufferage is scheduled on
its best machine — tasks with strong machine preferences get priority.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import Schedule

__all__ = ["sufferage"]


def sufferage(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Sufferage schedule."""
    etc = instance.etc
    ntasks, nmachines = etc.shape
    ct = instance.ready_times.copy()
    assignment = np.full(ntasks, -1, dtype=np.int32)
    unassigned = np.arange(ntasks)
    while unassigned.size:
        completion = ct[None, :] + etc[unassigned]  # (|U|, m)
        if nmachines == 1:
            best_machine = np.zeros(unassigned.size, dtype=np.int64)
            suffer = completion[:, 0]
        else:
            part = np.partition(completion, 1, axis=1)
            suffer = part[:, 1] - part[:, 0]
            best_machine = completion.argmin(axis=1)
        idx = int(suffer.argmax())
        task = int(unassigned[idx])
        mac = int(best_machine[idx])
        assignment[task] = mac
        ct[mac] += etc[task, mac]
        unassigned = np.delete(unassigned, idx)
    return Schedule(instance, assignment)

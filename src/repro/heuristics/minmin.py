"""Min-min and Max-min heuristics (Ibarra & Kim 1977; Braun et al. 2001).

Both iterate: for every unassigned task compute its *minimum completion
time* over all machines; Min-min then schedules the task whose minimum
is smallest (shortest work first keeps machines balanced), Max-min the
task whose minimum is largest (longest work first, so long tasks do not
straggle).  Min-min is the strongest simple heuristic on the Braun
benchmark and the one the paper uses to seed the population.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import Schedule

__all__ = ["min_min", "max_min", "duplex"]


def _greedy_completion(instance: ETCMatrix, pick_max: bool) -> np.ndarray:
    etc = instance.etc
    ntasks, _ = etc.shape
    ct = instance.ready_times.copy()
    assignment = np.full(ntasks, -1, dtype=np.int32)
    unassigned = np.arange(ntasks)
    # O(ntasks) rounds; each round is a vectorized (|U| x m) scan.
    while unassigned.size:
        completion = ct[None, :] + etc[unassigned]  # (|U|, m)
        best_machine = completion.argmin(axis=1)
        best_time = completion[np.arange(unassigned.size), best_machine]
        idx = int(best_time.argmax() if pick_max else best_time.argmin())
        task = int(unassigned[idx])
        mac = int(best_machine[idx])
        assignment[task] = mac
        ct[mac] += etc[task, mac]
        unassigned = np.delete(unassigned, idx)
    return assignment


def min_min(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Min-min schedule.  ``rng`` is accepted for registry uniformity."""
    return Schedule(instance, _greedy_completion(instance, pick_max=False))


def max_min(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Max-min schedule (long tasks placed first)."""
    return Schedule(instance, _greedy_completion(instance, pick_max=True))


def duplex(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Duplex: run Min-min and Max-min, keep the better (Braun et al.)."""
    a = min_min(instance)
    b = max_min(instance)
    return a if a.makespan() <= b.makespan() else b

"""Single-pass list-scheduling heuristics (Braun et al. 2001).

These process tasks in index order and make one greedy decision each —
O(ntasks × nmachines) total, the cheapest baselines:

* **MCT** (minimum completion time): best finish time *given current
  loads* — the strongest of the three;
* **MET** (minimum execution time): fastest machine for the task,
  ignoring load — degenerates badly on consistent matrices where one
  machine is globally fastest;
* **OLB** (opportunistic load balancing): earliest-ready machine,
  ignoring execution times.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import Schedule

__all__ = ["mct", "met", "olb"]


def mct(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Minimum-completion-time list schedule."""
    etc = instance.etc
    ct = instance.ready_times.copy()
    assignment = np.empty(instance.ntasks, dtype=np.int32)
    for t in range(instance.ntasks):
        mac = int((ct + etc[t]).argmin())
        assignment[t] = mac
        ct[mac] += etc[t, mac]
    return Schedule(instance, assignment)


def met(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Minimum-execution-time schedule (load-blind, fully vectorized)."""
    return Schedule(instance, instance.etc.argmin(axis=1).astype(np.int32))


def olb(instance: ETCMatrix, rng: np.random.Generator | None = None) -> Schedule:
    """Opportunistic load balancing (execution-time-blind)."""
    etc = instance.etc
    ct = instance.ready_times.copy()
    assignment = np.empty(instance.ntasks, dtype=np.int32)
    for t in range(instance.ntasks):
        mac = int(ct.argmin())
        assignment[t] = mac
        ct[mac] += etc[t, mac]
    return Schedule(instance, assignment)

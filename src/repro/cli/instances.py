"""``repro instances`` / ``heuristics`` / ``generate``: instance tooling."""

from __future__ import annotations

__all__ = ["register", "HANDLERS"]


def register(sub) -> None:
    sub.add_parser("instances", help="list the benchmark instances")

    p = sub.add_parser("heuristics", help="run every heuristic on an instance")
    p.add_argument("--instance", default="u_i_hihi.0")
    p.add_argument(
        "--lp-bound", action="store_true", help="also compute the LP lower bound"
    )

    p = sub.add_parser("generate", help="generate a problem instance file")
    p.add_argument(
        "--problem",
        choices=["independent", "flowshop"],
        default="independent",
        help="workload to generate (ETC matrix or flow-shop processing times)",
    )
    p.add_argument(
        "--ntasks", type=int, default=512, help="tasks (flow shop: jobs)"
    )
    p.add_argument("--nmachines", type=int, default=16)
    p.add_argument(
        "--consistency", choices=["c", "i", "s"], default="i", help="ETC only"
    )
    p.add_argument("--task-het", default="hi", help="ETC only")
    p.add_argument("--machine-het", default="hi", help="ETC only")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)


def _cmd_instances(args) -> int:
    from repro.etc import BENCHMARK_INSTANCES
    from repro.experiments import ascii_table

    rows = [
        [
            info.name,
            info.consistency.name.lower(),
            info.task_het,
            info.machine_het,
            f"{info.pj_min:g}",
            f"{info.pj_max:g}",
        ]
        for info in BENCHMARK_INSTANCES.values()
    ]
    print(
        ascii_table(
            ["instance", "consistency", "task het", "machine het", "pj min", "pj max"],
            rows,
        )
    )
    return 0


def _cmd_heuristics(args) -> int:
    import numpy as np

    from repro.etc import load_benchmark
    from repro.experiments import ascii_table
    from repro.heuristics import HEURISTICS
    from repro.scheduling.bounds import lp_lower_bound

    inst = load_benchmark(args.instance)
    rng = np.random.default_rng(0)
    rows = []
    for name, fn in HEURISTICS.items():
        rows.append([name, f"{fn(inst, rng).makespan():,.2f}"])
    print(f"{inst}\n")
    print(ascii_table(["heuristic", "makespan"], rows))
    if args.lp_bound:
        print(f"\nLP lower bound: {lp_lower_bound(inst):,.2f}")
    return 0


def _cmd_generate(args) -> int:
    if args.problem == "flowshop":
        from repro.problems.flowshop import make_flowshop, save_flowshop_instance

        inst = make_flowshop(args.ntasks, args.nmachines, seed=args.seed)
        save_flowshop_instance(inst, args.out)
        print(f"wrote {inst.name} ({inst.njobs}x{inst.nmachines}) to {args.out}")
        return 0
    from repro.etc import make_instance, save_instance

    inst = make_instance(
        args.ntasks,
        args.nmachines,
        consistency=args.consistency,
        task_het=args.task_het,
        machine_het=args.machine_het,
        seed=args.seed,
    )
    save_instance(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


HANDLERS = {
    "instances": _cmd_instances,
    "heuristics": _cmd_heuristics,
    "generate": _cmd_generate,
}

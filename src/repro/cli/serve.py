"""``repro serve``: run the solve-as-a-service HTTP front end.

Flags mirror ``repro solve`` where the concepts overlap: the obs flag
group comes from :mod:`repro.cli.obsflags` (one flag set, one
validation path), so ``serve`` rejects ``--obs-trace`` without
``--obs-out`` with *exactly* the error text ``solve`` prints.  Flags
whose machinery is per-run rather than per-service (``--obs-trace``,
``--obs-sample-every``, ``--obs-live``, ``--obs-profile``,
``--obs-stack-sample``) are rejected with a pointer to the per-job
alternative; ``--obs-stall-deadline`` arms the service's worker
watchdog and ``--obs-flight``/``--obs-resources`` toggle the service's
own flight-recorder/resource-sampler usage.

Fault injection (the ``inject`` job field used by the crash-recovery
tests and ``benchmarks/smoke_serve.py``) is gated behind the
``REPRO_SERVE_FAULT_INJECTION=1`` environment variable so a production
service never honors crash requests from clients.
"""

from __future__ import annotations

import os
import sys

from repro.cli.obsflags import add_obs_arguments, reject_stray_obs_flags

__all__ = ["register", "HANDLERS"]

#: obs modifiers that configure a *single run's* bundle and have no
#: meaning for the long-lived service process.
_PER_RUN_ONLY = (
    ("--obs-trace/--no-obs-trace", "obs_trace", "per-run trace timelines"),
    ("--obs-sample-every", "obs_sample_every", "per-run time-series sampling"),
    ("--obs-live", "obs_live", "the live bundle server (serve *is* the server)"),
    ("--obs-profile", "obs_profile", "per-run profiling"),
    ("--obs-stack-sample", "obs_stack_sample", "per-run stack sampling"),
)


def register(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="run the asynchronous solve service (HTTP/JSON API)",
        epilog=(
            "POST /jobs submits a solve job; GET /jobs/<id> streams its "
            "progress; GET /metrics is OpenMetrics. SIGTERM drains "
            "gracefully (in-flight jobs park via checkpoint and resume on "
            "restart). See docs/serving.md and docs/operations.md."
        ),
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers", type=int, default=2, help="engine worker processes"
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="bounded queue depth; beyond it POST /jobs answers 429 + Retry-After",
    )
    p.add_argument(
        "--spool",
        default="serve-spool",
        metavar="DIR",
        help=(
            "durable state directory (job records, checkpoints, flight "
            "rings); restart on the same spool resumes unfinished jobs"
        ),
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="crash retries per job before it is marked failed",
    )
    p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base of the exponential crash-retry backoff",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="GENS",
        help="job checkpoint cadence in generations",
    )
    add_obs_arguments(p)


def _reject_serve_flags(args) -> int | None:
    """Shared obs validation first, then serve-specific rejections."""
    rc = reject_stray_obs_flags(args)
    if rc is not None:
        return rc
    # identity checks, not membership: `0 == False`, so `--obs-live 0`
    # would slip through an `in (None, False)` test
    offending = [
        (flag, why)
        for flag, attr, why in _PER_RUN_ONLY
        if getattr(args, attr) is not None and getattr(args, attr) is not False
    ]
    if offending:
        detail = "; ".join(f"{flag} configures {why}" for flag, why in offending)
        print(
            f"error: {detail} — not applicable to `repro serve` "
            "(submit per-job telemetry via the job payload instead)",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.queue_limit < 1:
        print(
            f"error: --queue-limit must be >= 1, got {args.queue_limit}",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_serve(args) -> int:
    rc = _reject_serve_flags(args)
    if rc is not None:
        return rc
    from repro.serve.http import run_service
    from repro.serve.service import SolveService

    service = SolveService(
        args.spool,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
        stall_deadline_s=args.obs_stall_deadline,
        checkpoint_every=args.checkpoint_every,
        fault_injection=os.environ.get("REPRO_SERVE_FAULT_INJECTION") == "1",
        obs_out=args.obs_out,
        obs_resources=(
            args.obs_out is not None
            and (True if args.obs_resources is None else args.obs_resources)
        ),
    )
    print(f"spool          : {args.spool}", flush=True)
    if args.obs_out is not None:
        print(f"live telemetry : {args.obs_out}/live.json", flush=True)
    return run_service(
        service, host=args.host, port=args.port, ready=lambda line: print(line, flush=True)
    )


HANDLERS = {"serve": _cmd_serve}

"""Registry-driven engine plumbing + the ``repro engines`` listing.

The ``--engine`` choices, the alias legend in ``solve --help``, engine
construction and the ``repro engines`` table are all derived from
:mod:`repro.runtime.registry` — registering a new engine there makes it
appear everywhere in the CLI without further edits.
"""

from __future__ import annotations

from repro.runtime.registry import ENGINE_SPECS, engine_aliases, engine_names

__all__ = ["engine_choices", "alias_epilog", "build_config", "register", "HANDLERS"]


def engine_choices() -> list[str]:
    """Valid ``--engine`` values: canonical names, then the aliases."""
    return [*engine_names(), *sorted(engine_aliases())]


def alias_epilog() -> str:
    """The alias legend shown under ``solve --help``."""
    pairs = ", ".join(f"{alias} = {name}" for alias, name in engine_aliases().items())
    return (
        f"engine aliases: {pairs} (the paper's PA-CGA engine on its "
        "three substrates)"
    )


def build_config(args, spec):
    """The :class:`CGAConfig` for one solve/resume invocation.

    ``--threads`` only reaches the config for engines whose spec says
    ``config.n_threads`` maps to real workers.
    """
    from repro.cga import CGAConfig

    return CGAConfig(
        problem=getattr(args, "problem", "independent"),
        n_threads=args.threads if spec.threaded else 1,
        crossover=args.crossover,
        fitness=args.fitness,
        ls_iterations=args.ls_iters,
    )


def _cmd_engines(args) -> int:
    from repro.experiments import ascii_table

    rows = [
        [
            spec.name,
            ", ".join(spec.aliases) or "-",
            spec.parallelism,
            "yes" if spec.checkpointable else "no",
            spec.summary,
        ]
        for spec in ENGINE_SPECS.values()
    ]
    print(
        ascii_table(
            ["engine", "aliases", "parallelism", "resumable", "summary"], rows
        )
    )
    return 0


def register(sub) -> None:
    sub.add_parser(
        "engines", help="list the engine registry (names, aliases, resumability)"
    )


HANDLERS = {"engines": _cmd_engines}

"""``repro resume``: continue a run from a ``solve --checkpoint`` file.

The checkpoint records the engine, configuration, instance name, every
RNG stream and the run's progress, so resuming needs nothing but the
file — the continued run follows the identical stochastic trajectory
and reports the same cumulative counters as an uninterrupted one.
"""

from __future__ import annotations

import sys

__all__ = ["register", "HANDLERS"]


def register(sub) -> None:
    p = sub.add_parser(
        "resume",
        help="resume a run from a checkpoint file",
        epilog=(
            "the stop condition embedded at save time is reused unless "
            "--evals/--vtime/--wall override it"
        ),
    )
    p.add_argument("checkpoint", help="file written by `solve --checkpoint`")
    p.add_argument(
        "--instance",
        default=None,
        metavar="FILE",
        help="ETC instance file (required when the checkpoint is not a benchmark)",
    )
    p.add_argument("--evals", type=int, default=None, help="evaluation budget")
    p.add_argument(
        "--vtime", type=float, default=None, help="virtual seconds (sim engine)"
    )
    p.add_argument("--wall", type=float, default=None, help="wall-clock seconds")
    p.add_argument("--gantt", action="store_true", help="print the best schedule")
    p.add_argument("--out", default=None, help="write the run result as JSON")
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="GENS",
        help="keep checkpointing into the source file every GENS generations",
    )
    p.add_argument(
        "--checkpoint-to",
        default=None,
        metavar="PATH",
        help="redirect continued checkpoints to a different file",
    )


def _cmd_resume(args) -> int:
    from repro.cga import StopCondition
    from repro.runtime import resume_engine, run_with_checkpoints

    instance = None
    if args.instance is not None:
        from repro.etc import load_instance

        instance = load_instance(args.instance)
    try:
        engine, stop = resume_engine(args.checkpoint, instance=instance)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    bounds = {}
    if args.evals is not None:
        bounds["max_evaluations"] = args.evals
    if args.vtime is not None:
        bounds["virtual_time"] = args.vtime
    if args.wall is not None:
        bounds["wall_time_s"] = args.wall
    if bounds:
        stop = StopCondition(**bounds)
    if stop is None:
        print(
            "error: the checkpoint records no stop condition; "
            "pass --evals, --vtime or --wall",
            file=sys.stderr,
        )
        return 2

    ckpt_path = args.checkpoint_to or (
        args.checkpoint if args.checkpoint_every is not None else None
    )
    if ckpt_path is not None:
        result = run_with_checkpoints(
            engine, stop, ckpt_path, every_generations=args.checkpoint_every or 1
        )
    else:
        result = engine.run(stop)

    inst, config = engine.instance, engine.config
    print(f"resumed from  : {args.checkpoint}")
    print(f"instance      : {inst.name}")
    print(f"engine        : {engine.engine_name} ({config.n_threads} thread(s))")
    print(f"best makespan : {result.best_fitness:,.2f}")
    print(f"evaluations   : {result.evaluations:,}")
    print(f"generations   : {result.generations}")
    if args.gantt:
        from repro.util import render_gantt

        print()
        print(render_gantt(result.best_schedule(inst)))
    if args.out:
        from repro.util import save_result

        save_result(result, args.out)
        print(f"result written to {args.out}")
    if ckpt_path is not None:
        print(f"checkpoint    : {ckpt_path}")
    return 0


HANDLERS = {"resume": _cmd_resume}

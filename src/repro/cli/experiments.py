"""Paper-artifact harness commands (Figs. 4-6, Tables 2-3, campaign)."""

from __future__ import annotations

__all__ = ["register", "HANDLERS"]


def register(sub) -> None:
    p = sub.add_parser("speedup", help="regenerate Fig. 4 (speedup)")
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--vtime", type=float, default=0.1)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("operators", help="regenerate Fig. 5 (operator study)")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--vtime", type=float, default=0.05)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=5)

    p = sub.add_parser("comparison", help="regenerate Table 2 (vs baselines)")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--vtime", type=float, default=0.05)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--protocol", choices=["evals", "time"], default="evals")

    p = sub.add_parser("convergence", help="regenerate Fig. 6 (convergence)")
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--vtime", type=float, default=0.1)
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=23)

    p = sub.add_parser("quality", help="optimality gaps vs the LP bound")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--evals", type=int, default=5000)
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser("calibrate", help="measure this machine's breeding-step costs")
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--samples", type=int, default=2000)

    p = sub.add_parser(
        "reproduce", help="regenerate every paper artifact into a directory"
    )
    p.add_argument("--out", default="reproduction")
    p.add_argument("--scale", type=float, default=1.0, help="budget multiplier")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="also write per-cell observability bundles under <out>/telemetry/",
    )


def _cmd_speedup(args) -> int:
    from repro.experiments import speedup_experiment

    result = speedup_experiment(
        instance=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(result.table())
    return 0


def _cmd_operators(args) -> int:
    from repro.experiments import operators_experiment

    result = operators_experiment(
        instances=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(result.table())
    return 0


def _cmd_comparison(args) -> int:
    from repro.experiments import comparison_experiment

    result = comparison_experiment(
        instances=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
        protocol=args.protocol,
    )
    print(result.table())
    return 0


def _cmd_convergence(args) -> int:
    from repro.experiments import convergence_experiment
    from repro.experiments.report import ascii_chart

    result = convergence_experiment(
        instance=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(
        ascii_chart(
            {
                f"{n} thread(s)": result.curves[n].tolist()
                for n in sorted(result.curves)
            },
            x_label="generations (common grid)",
            y_label="mean population makespan",
        )
    )
    for n in sorted(result.curves):
        print(
            f"{n} thread(s): final={result.final_mean[n]:,.0f} "
            f"gens={result.generations_reached[n]:.0f}"
        )
    print(f"best thread count: {result.best_thread_count()}")
    return 0


def _cmd_quality(args) -> int:
    from repro.experiments import quality_experiment

    result = quality_experiment(
        instances=args.instance, max_evaluations=args.evals, seed=args.seed
    )
    print(result.table())
    print(f"\nmean PA-CGA gap above LP: {100 * result.mean_gap():.2f}%")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.etc import load_benchmark
    from repro.parallel import XEON_E5440, measure_cost_model

    inst = load_benchmark(args.instance)
    model = measure_cost_model(inst, samples=args.samples)
    print(f"measured on this machine ({args.samples} samples, {inst.name}):")
    print(f"  t_breed   : {model.t_breed:8.2f} us  (paper model: {XEON_E5440.t_breed})")
    print(
        f"  t_ls_iter : {model.t_ls_iter:8.2f} us  (paper model: {XEON_E5440.t_ls_iter})"
    )
    print(f"  t_lock    : {model.t_lock:8.2f} us  (paper model: {XEON_E5440.t_lock})")
    print("contention/cache terms inherited from the paper calibration;")
    print("pass the model to SimulatedPACGA(cost_model=...) to rebuild Fig. 4.")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.experiments import run_campaign
    from repro.rng import DEFAULT_SEED

    report = run_campaign(
        args.out,
        scale=args.scale,
        n_runs=args.runs,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        telemetry=args.telemetry,
    )
    print(report.summary())
    return 0


HANDLERS = {
    "speedup": _cmd_speedup,
    "operators": _cmd_operators,
    "comparison": _cmd_comparison,
    "convergence": _cmd_convergence,
    "quality": _cmd_quality,
    "calibrate": _cmd_calibrate,
    "reproduce": _cmd_reproduce,
}

"""``repro solve`` / ``repro run``: one PA-CGA run on one instance."""

from __future__ import annotations

import sys

from repro.cli.engines import alias_epilog, build_config, engine_choices
from repro.cli.obsflags import add_obs_arguments, reject_stray_obs_flags

__all__ = ["register", "HANDLERS", "print_result"]


def register(sub) -> None:
    for name, help_ in (
        ("solve", "run PA-CGA on an instance"),
        ("run", "alias for solve"),
    ):
        from repro.problems import problem_names

        p = sub.add_parser(name, help=help_, epilog=alias_epilog())
        p.add_argument(
            "--problem",
            choices=problem_names(),
            default="independent",
            help="registered scheduling problem (see `repro problems`)",
        )
        p.add_argument(
            "--instance",
            default=None,
            help="instance name/spec (default: the problem's default instance)",
        )
        p.add_argument("--engine", choices=engine_choices(), default="sim")
        p.add_argument("--threads", type=int, default=3)
        p.add_argument("--crossover", choices=["opx", "tpx", "uniform"], default="tpx")
        p.add_argument(
            "--fitness", choices=["makespan", "makespan+flowtime"], default="makespan"
        )
        p.add_argument("--ls-iters", type=int, default=10)
        p.add_argument("--evals", type=int, default=None, help="evaluation budget")
        p.add_argument(
            "--vtime", type=float, default=None, help="virtual seconds (sim engine)"
        )
        p.add_argument("--wall", type=float, default=None, help="wall-clock seconds")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gantt", action="store_true", help="print the best schedule")
        p.add_argument("--out", default=None, help="write the run result as JSON")
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help=(
                "write a resumable snapshot to this file at every sweep "
                "boundary (resume with `repro resume PATH`; the threads "
                "engine switches to its deterministic lockstep schedule)"
            ),
        )
        p.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="GENS",
            help="checkpoint cadence in generations (default: 1)",
        )
        # --obs-out and the --obs-* modifiers are shared with `repro
        # serve` (one flag set, one validation path: repro.cli.obsflags)
        add_obs_arguments(p)


def _reject_stray_flags(args) -> int | None:
    """Exit code 2 when bundle/checkpoint modifier flags lack their target."""
    rc = reject_stray_obs_flags(args)
    if rc is not None:
        return rc
    if args.checkpoint is None and args.checkpoint_every is not None:
        print(
            "error: --checkpoint-every sets the snapshot cadence and "
            "requires --checkpoint PATH (no checkpoint file was given)",
            file=sys.stderr,
        )
        return 2
    return None


def _build_observer(args, inst, engine_name):
    from repro.obs import Observer

    obs = Observer(
        out=args.obs_out,
        trace=True if args.obs_trace is None else args.obs_trace,
        sample_every_evals=(
            256 if args.obs_sample_every is None else args.obs_sample_every
        ),
        live=args.obs_live is not None,
        live_port=args.obs_live,
        stall_deadline_s=args.obs_stall_deadline,
        flight=True if args.obs_flight is None else args.obs_flight,
        resources=True if args.obs_resources is None else args.obs_resources,
        stack_sample_s=(
            1.0 / args.obs_stack_sample if args.obs_stack_sample else None
        ),
    )
    obs.meta.update({"instance": inst.name, "engine": engine_name, "seed": args.seed})
    if args.obs_live is not None:
        print(f"live telemetry : {args.obs_out}/live.json", flush=True)
        if args.obs_live:
            print(
                f"live endpoint  : http://127.0.0.1:{args.obs_live}/metrics "
                "(OpenMetrics) and /live.json",
                flush=True,
            )
    return obs


def print_result(args, inst, engine_name, config, result, obs=None) -> None:
    """The shared solve/resume report block."""
    print(f"instance      : {inst.name}")
    print(f"engine        : {engine_name} ({config.n_threads} thread(s))")
    print(f"best makespan : {result.best_fitness:,.2f}")
    print(f"evaluations   : {result.evaluations:,}")
    print(f"generations   : {result.generations}")
    if obs is not None:
        paths = obs.finalize()
        print()
        print(obs.summary())
        if paths:
            print(f"telemetry bundle: {args.obs_out}")
            for kind, path in sorted(paths.items()):
                print(f"  {kind:<10} {path}")
    if args.gantt:
        from repro.problems import problem_of

        sched = result.best_schedule(inst)
        print()
        if problem_of(inst).name == "independent":
            from repro.util import render_gantt

            print(render_gantt(sched))
        else:
            # permutation problems have no per-machine task queues to
            # chart; the job order *is* the schedule
            print(f"job order : {' '.join(str(int(j)) for j in sched.s)}")
            print(f"makespan  : {sched.makespan():,.2f}")
    if args.out:
        from repro.util import save_result

        save_result(result, args.out)
        print(f"result written to {args.out}")


def _cmd_solve(args) -> int:
    from repro.cga import StopCondition
    from repro.problems import resolve_problem
    from repro.runtime import resolve_engine, run_with_checkpoints

    rc = _reject_stray_flags(args)
    if rc is not None:
        return rc

    spec = resolve_engine(args.engine)
    if args.checkpoint is not None and not spec.checkpointable:
        from repro.runtime import checkpointable_engines

        print(
            f"error: engine {spec.name!r} does not support checkpoints "
            f"(checkpointable engines: {', '.join(checkpointable_engines())})",
            file=sys.stderr,
        )
        return 2

    problem = resolve_problem(args.problem)
    inst = problem.load_instance(args.instance or problem.default_instance)
    config = build_config(args, spec)
    bounds = {}
    if args.evals is not None:
        bounds["max_evaluations"] = args.evals
    if args.vtime is not None:
        bounds["virtual_time"] = args.vtime
    if args.wall is not None:
        bounds["wall_time_s"] = args.wall
    if not bounds:
        bounds["max_evaluations"] = 5000
    stop = StopCondition(**bounds)

    obs = None
    if args.obs_out is not None:
        obs = _build_observer(args, inst, spec.name)

    extras = {}
    if args.checkpoint is not None and spec.name in ("threads", "shm"):
        # free-running workers are schedule-dependent; only the lockstep
        # schedule quiesces at sweep boundaries
        extras["lockstep"] = True
    engine = spec.create(inst, config, seed=args.seed, obs=obs, **extras)

    def execute():
        if args.checkpoint is not None:
            return run_with_checkpoints(
                engine,
                stop,
                args.checkpoint,
                every_generations=args.checkpoint_every or 1,
            )
        return engine.run(stop)

    # the observer context finalizes a *partial* bundle (with the error
    # and failing-worker identity stamped into meta.json) when the run
    # raises — that bundle is what `repro obs postmortem` renders
    from contextlib import nullcontext

    with obs if obs is not None else nullcontext():
        if args.obs_profile:
            from repro.obs import PhaseProfiler

            with PhaseProfiler(obs):
                result = execute()
        else:
            result = execute()
    print_result(args, inst, spec.name, config, result, obs=obs)
    if args.checkpoint is not None:
        print(f"checkpoint    : {args.checkpoint}")
    return 0


HANDLERS = {"solve": _cmd_solve, "run": _cmd_solve}

"""``repro obs``: live + longitudinal telemetry tooling."""

from __future__ import annotations

import sys

__all__ = ["register", "HANDLERS"]


def register(sub) -> None:
    p = sub.add_parser("obs", help="live + longitudinal telemetry tooling")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("watch", help="render a bundle's live.json in place")
    q.add_argument("bundle", help="telemetry bundle directory")
    q.add_argument("--interval", type=float, default=1.0, help="refresh seconds")
    q.add_argument("--once", action="store_true", help="render one frame and exit")

    q = obs_sub.add_parser(
        "top",
        help=(
            "live search-dynamics dashboard: grid heatmap, operator "
            "success rates, throughput/stall state"
        ),
    )
    q.add_argument(
        "source",
        help="bundle dir, live.json file, or a LivePublisher http:// endpoint",
    )
    q.add_argument("--interval", type=float, default=1.0, help="refresh seconds")
    q.add_argument(
        "--once",
        action="store_true",
        help="print one plain-text frame and exit (no curses; CI-safe)",
    )

    q = obs_sub.add_parser(
        "report", help="render a finished bundle's report in the terminal"
    )
    q.add_argument("bundle", help="telemetry bundle directory")

    q = obs_sub.add_parser(
        "postmortem",
        help=(
            "render a crashed run's black box: flight-ring events, "
            "failing worker stacks, final resource samples"
        ),
    )
    q.add_argument("bundle", help="telemetry bundle directory (may be partial)")
    q.add_argument(
        "--events",
        type=int,
        default=None,
        metavar="N",
        help="flight events shown per ring (default 12)",
    )

    q = obs_sub.add_parser(
        "ingest", help="append a finished bundle's summary to a run history"
    )
    q.add_argument("bundle", help="telemetry bundle directory")
    q.add_argument("--history", required=True, help="JSONL run registry (appended)")

    q = obs_sub.add_parser("history", help="list a JSONL run registry")
    q.add_argument("file")
    q.add_argument(
        "--limit", type=int, default=None, help="show only the newest N runs"
    )

    q = obs_sub.add_parser(
        "diff", help="compare two runs (bundle dirs, summary .json, or history .jsonl)"
    )
    q.add_argument("a")
    q.add_argument("b")

    q = obs_sub.add_parser(
        "check",
        help="regression gate against a baseline; exits nonzero on regression",
    )
    q.add_argument(
        "run", help="run under test: bundle dir, summary .json, or history .jsonl"
    )
    q.add_argument(
        "--baseline",
        required=True,
        help="baseline: summary .json / history .jsonl / BENCH_throughput.json",
    )
    q.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed makespan (quality) regression in percent",
    )
    q.add_argument(
        "--throughput-tolerance",
        type=float,
        default=None,
        metavar="PCT",
        help="allowed evals/s drop in percent (default: same as --tolerance)",
    )
    q.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "also gate the bench file's parallel_speedup section: every "
            "multi-worker scaling ratio must be at least RATIO"
        ),
    )
    q.add_argument(
        "--min-ls-success-rate",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "gate the run's local-search success rate (op.ls.* "
            "attribution counters): fail below this fraction"
        ),
    )
    q.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help=(
            "hard gate: fail if any single process's peak RSS exceeded "
            "this many MiB (needs a run with resource sampling)"
        ),
    )
    q.add_argument(
        "--max-fds",
        type=int,
        default=None,
        metavar="N",
        help="hard gate: fail if the peak open-descriptor count exceeded N",
    )


def _cmd_obs(args) -> int:
    if args.obs_command == "watch":
        from repro.obs.live import watch

        return watch(args.bundle, interval_s=args.interval, once=args.once)

    if args.obs_command == "top":
        from repro.obs.top import top

        return top(args.source, interval_s=args.interval, once=args.once)

    if args.obs_command == "report":
        from repro.obs.dynamics import load_grid_rows
        from repro.obs.report import load_bundle, render_terminal

        meta, metrics, rows = load_bundle(args.bundle)
        print(render_terminal(meta, metrics, rows, grid_rows=load_grid_rows(args.bundle)))
        return 0

    if args.obs_command == "postmortem":
        from repro.obs.postmortem import DEFAULT_EVENTS, postmortem

        return postmortem(
            args.bundle,
            last_events=args.events if args.events is not None else DEFAULT_EVENTS,
        )

    from repro.obs import history as hist

    if args.obs_command == "ingest":
        row = hist.append_history(args.history, hist.summarize_bundle(args.bundle))
        print(f"recorded {row['run_id']} -> {args.history}")
        print(hist.render_history([row]))
        return 0

    if args.obs_command == "history":
        rows = hist.load_history(args.file)
        print(hist.render_history(rows, limit=args.limit))
        return 0

    if args.obs_command == "diff":
        a = hist.summarize_source(args.a)
        b = hist.summarize_source(args.b)
        print(hist.render_diff(a, b))
        return 0

    if args.obs_command == "check":
        current = hist.summarize_source(args.run)
        baseline = hist.load_baseline(args.baseline, row=current)
        problems = hist.check_row(
            current,
            baseline,
            tolerance_pct=args.tolerance,
            throughput_tolerance_pct=args.throughput_tolerance,
        )
        if args.min_parallel_speedup is not None:
            # the speedup section lives in a bench-shaped payload; a
            # fresh smoke measurement passed as the run wins over the
            # committed baseline file
            source = current
            if "parallel_speedup" not in source:
                source = hist.summarize_source(args.baseline)
            problems += hist.check_parallel_speedup(
                source, args.min_parallel_speedup
            )
        dyn_problems, warnings = hist.check_dynamics(
            current, min_ls_success_rate=args.min_ls_success_rate
        )
        problems += dyn_problems
        problems += hist.check_resources(
            current, max_rss_mb=args.max_rss_mb, max_fds=args.max_fds
        )
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        print(
            f"run {current.get('run_id', '?')} vs baseline "
            f"{baseline.get('run_id', args.baseline)}"
        )
        for key in ("best_fitness", "evals_per_s"):
            cur, base = current.get(key), baseline.get(key)
            if cur is not None and base is not None:
                print(f"  {key:<14}: {cur:,.2f} (baseline {base:,.2f})")
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    raise AssertionError(
        f"unhandled obs command {args.obs_command!r}"
    )  # pragma: no cover


HANDLERS = {"obs": _cmd_obs}

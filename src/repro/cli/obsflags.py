"""Shared ``--obs-*`` argument group and its validation.

``repro solve`` and ``repro serve`` expose the same telemetry flags
and must reject bad combinations with the *same* error text — operators
switch between the two constantly, and a drifting error message is a
documentation bug.  Both commands therefore register their obs flags
through :func:`add_obs_arguments` and validate them through
:func:`reject_stray_obs_flags`; there is no second copy to drift.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["add_obs_arguments", "reject_stray_obs_flags"]


def add_obs_arguments(p) -> None:
    """Register ``--obs-out`` and every ``--obs-*`` modifier on ``p``."""
    p.add_argument(
        "--obs-out",
        default=None,
        help="collect run telemetry and write the bundle to this directory",
    )
    # the --obs-* defaults are None sentinels so "flag given without
    # --obs-out" is detectable and rejected with a clear error
    p.add_argument(
        "--obs-trace",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="include a Chrome trace_event timeline in the bundle (default: on)",
    )
    p.add_argument(
        "--obs-sample-every",
        type=int,
        default=None,
        metavar="EVALS",
        help="time-series sampling cadence in evaluations (default: 256)",
    )
    p.add_argument(
        "--obs-live",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "publish live.json into the bundle while running and serve "
            "/metrics (OpenMetrics) + /live.json on this port (0 = ephemeral)"
        ),
    )
    p.add_argument(
        "--obs-stall-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "arm the worker watchdog: report a stall event when a worker's "
            "heartbeat does not advance for this long"
        ),
    )
    p.add_argument(
        "--obs-profile",
        action="store_true",
        default=False,
        help=(
            "profile the run with cProfile and write profile.pstats / "
            "profile.txt / profile.collapsed (flamegraph collapsed "
            "stacks) into the bundle; overhead estimate is stamped "
            "into meta.json"
        ),
    )
    p.add_argument(
        "--obs-flight",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "crash-surviving flight recorder: mmap'd per-process event "
            "rings + post-mortem hooks (SIGUSR1 stack dumps, worker "
            "crash records) under <bundle>/flight/ (default: on)"
        ),
    )
    p.add_argument(
        "--obs-resources",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "sample per-process resources (/proc/self RSS, CPU, fds, GC, "
            "/dev/shm) into resources.jsonl + proc.* gauges (default: on)"
        ),
    )
    p.add_argument(
        "--obs-stack-sample",
        type=float,
        default=None,
        metavar="HZ",
        help=(
            "statistical sampling profiler: sample every thread's stack "
            "HZ times/second in every process (forked workers included) "
            "and write merged collapsed stacks to samples.collapsed"
        ),
    )


def reject_stray_obs_flags(args) -> int | None:
    """Exit code 2 when ``--obs-*`` modifiers are given without ``--obs-out``."""
    if args.obs_out is not None:
        return None
    stray = [
        flag
        for flag, value in (
            ("--obs-trace/--no-obs-trace", args.obs_trace),
            ("--obs-sample-every", args.obs_sample_every),
            ("--obs-live", args.obs_live),
            ("--obs-stall-deadline", args.obs_stall_deadline),
            ("--obs-profile", args.obs_profile or None),
            ("--obs-flight/--no-obs-flight", args.obs_flight),
            ("--obs-resources/--no-obs-resources", args.obs_resources),
            ("--obs-stack-sample", args.obs_stack_sample),
        )
        if value is not None
    ]
    if stray:
        print(
            f"error: {', '.join(stray)} configure the telemetry bundle and "
            "require --obs-out DIR (no bundle directory was given)",
            file=sys.stderr,
        )
        return 2
    return None

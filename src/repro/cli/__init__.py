"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``instances``   — list the twelve benchmark instances and metadata;
* ``heuristics``  — run every constructive heuristic on one instance;
* ``solve``       — run PA-CGA (any engine) on an instance
  (``run`` is an alias); ``--obs-out DIR`` collects a full telemetry
  bundle, ``--obs-live PORT`` serves live OpenMetrics/JSON snapshots,
  and ``--checkpoint PATH`` writes resumable boundary snapshots;
* ``resume``      — continue a run from a ``--checkpoint`` file;
* ``serve``       — run the asynchronous solve service: an HTTP/JSON
  API accepting solve jobs into a bounded queue, dispatching to a
  persistent pool of engine workers with checkpoint durability,
  crash retries and graceful SIGTERM drain (see ``docs/serving.md``);
* ``engines``     — list the engine registry (names, aliases,
  substrate, resumability);
* ``problems``    — list the registered scheduling problems (genome
  type, operator families, batch kernels, supported engines);
* ``obs``         — live/longitudinal telemetry tooling: ``watch`` a
  running bundle, ``ingest`` finished bundles into a JSONL run
  history, ``history``/``diff`` past runs, and ``check`` a run against
  a baseline with regression gates (nonzero exit on regression);
* ``generate``    — generate an ETC instance file;
* ``speedup`` / ``operators`` / ``comparison`` / ``convergence`` —
  run the paper-artifact harnesses at CLI-chosen budgets.

Every command prints plain text; ``solve --out`` additionally writes
the run result as JSON (reloadable with ``repro.util.load_result``).

Each subcommand family lives in its own module; engine names, aliases
and construction all come from :mod:`repro.runtime.registry`, so the
CLI needs no per-engine code.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import engines, experiments, instances, obs, problems, resume, serve, solve

__all__ = ["main", "build_parser"]

#: registration order fixes the order commands appear in ``--help``.
_MODULES = (instances, solve, resume, serve, engines, problems, obs, experiments)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PA-CGA for grid scheduling (Pinel, Dorronsoro & Bouvry 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in _MODULES:
        module.register(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    for module in _MODULES:
        handler = module.HANDLERS.get(args.command)
        if handler is not None:
            return handler(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""``repro problems``: list the registered scheduling problems.

One row per :class:`repro.problems.SchedulingProblem` — genome type,
operator families, batch-kernel availability and which engines of the
registry can run it (batch engines need the problem's batch suite).
"""

from __future__ import annotations

__all__ = ["register", "HANDLERS"]


def register(sub) -> None:
    sub.add_parser(
        "problems",
        help="list the registered scheduling problems (genome, kernels, engines)",
    )


def _supported_engines(problem) -> str:
    from repro.runtime.registry import ENGINE_SPECS

    names = [
        spec.name
        for spec in ENGINE_SPECS.values()
        if not spec.batch or problem.has_batch_kernels
    ]
    return ", ".join(names)


def _cmd_problems(args) -> int:
    from repro.experiments import ascii_table
    from repro.problems import PROBLEMS

    rows = []
    for problem in PROBLEMS.values():
        ops = problem.operator_names()
        rows.append(
            [
                problem.name,
                str(problem.genome_dtype),
                ", ".join(ops["crossover"]),
                ", ".join(ops["mutation"]),
                ", ".join(ops["local_search"]),
                "yes" if problem.has_batch_kernels else "no",
                _supported_engines(problem),
            ]
        )
    print(
        ascii_table(
            [
                "problem",
                "genome",
                "crossovers",
                "mutations",
                "local searches",
                "batch",
                "engines",
            ],
            rows,
        )
    )
    print()
    for problem in PROBLEMS.values():
        print(f"{problem.name:<12} {problem.summary}")
        print(f"{'':<12} default instance: {problem.default_instance}")
    return 0


HANDLERS = {"problems": _cmd_problems}

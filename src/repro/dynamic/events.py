"""Grid events: task batches arriving, machines joining and dropping."""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["BatchArrival", "MachineJoin", "MachineLeave"]


@dataclass(frozen=True)
class BatchArrival:
    """A user submits a batch of independent tasks.

    ``workloads`` are in millions of instructions (the ETC model's task
    size unit); execution time on machine ``m`` is ``workload / speed_m``.
    """

    time: float
    workloads: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if not self.workloads:
            raise ValueError("a batch must contain at least one task")
        if any(w <= 0 for w in self.workloads):
            raise ValueError("workloads must be positive")


@dataclass(frozen=True)
class MachineJoin:
    """A machine with the given computing capacity (mips) joins the grid."""

    time: float
    speed: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")


@dataclass(frozen=True)
class MachineLeave:
    """Machine ``machine_id`` drops from the grid.

    Its queued tasks — and, per the paper's non-preemptive-unless-
    dropped rule, the task it is currently executing — return to the
    pending pool and are rescheduled.
    """

    time: float
    machine_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.machine_id < 0:
            raise ValueError(f"machine_id must be >= 0, got {self.machine_id}")

"""Discrete-event simulator for dynamic grid scheduling.

Replays a timeline of :mod:`repro.dynamic.events` against a pluggable
scheduler.  Between events the grid executes its current plan
deterministically (non-preemptive machines, one task at a time, queues
in the planned order); at every event the not-yet-started tasks are
pooled and rescheduled with the machines' *ready times* — the exact
setting eq. 2 of the paper models.

Semantics (matching the paper's §2.1 rules):

* tasks are independent and non-preemptive: once started they run to
  completion on their machine — unless that machine drops, in which
  case the task restarts elsewhere (its partial work is lost);
* machines process one task at a time;
* rescheduling may move any task that has not started (counted as a
  *migration* when its machine changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import AsyncCGA
from repro.dynamic.events import BatchArrival, MachineJoin, MachineLeave
from repro.etc.model import ETCMatrix
from repro.heuristics.listsched import mct
from repro.rng import make_rng
from repro.scheduling.schedule import Schedule

__all__ = ["DynamicGridSimulator", "DynamicRunStats", "greedy_rescheduler", "pacga_rescheduler"]

#: scheduler: (instance, rng) → Schedule over the instance's tasks.
Rescheduler = Callable[[ETCMatrix, np.random.Generator], Schedule]


def greedy_rescheduler(instance: ETCMatrix, rng: np.random.Generator) -> Schedule:
    """Fast default: minimum-completion-time list scheduling."""
    return mct(instance, rng)


def pacga_rescheduler(
    max_evaluations: int = 2000, config: CGAConfig | None = None
) -> Rescheduler:
    """Build a PA-CGA-based rescheduler with a fixed evaluation budget.

    Uses the canonical asynchronous CGA (PA-CGA, 1 thread) sized to the
    rescheduling pool; grids shrink for small pools so tiny batches do
    not pay a 256-cell population.
    """
    base = config or CGAConfig(ls_iterations=5)

    def schedule(instance: ETCMatrix, rng: np.random.Generator) -> Schedule:
        side = 16 if instance.ntasks >= 128 else 8 if instance.ntasks >= 16 else 4
        cfg = base.with_(grid_rows=side, grid_cols=side)
        engine = AsyncCGA(instance, cfg, rng=rng, record_history=False)
        result = engine.run(StopCondition(max_evaluations=max_evaluations))
        return result.best_schedule(instance)

    return schedule


@dataclass
class DynamicRunStats:
    """Outcome of one dynamic-grid run."""

    makespan: float
    completed: int
    mean_flowtime: float
    reschedules: int
    migrations: int
    restarted: int
    #: (time, pending_count, n_machines) at every rescheduling point
    timeline: list[tuple[float, int, int]] = field(default_factory=list)


@dataclass
class _PlanEntry:
    task: int
    machine: int
    start: float
    finish: float


class DynamicGridSimulator:
    """Event-driven grid with pluggable rescheduling policy.

    Parameters
    ----------
    initial_speeds:
        Computing capacity (mips) of the machines present at time 0.
    scheduler:
        Policy invoked at every event (default: MCT).
    seed:
        Seed for the scheduler's random stream.
    """

    def __init__(
        self,
        initial_speeds: list[float],
        scheduler: Rescheduler = greedy_rescheduler,
        seed: int | None = 0,
    ):
        if not initial_speeds:
            raise ValueError("the grid needs at least one initial machine")
        if any(s <= 0 for s in initial_speeds):
            raise ValueError("machine speeds must be positive")
        self.scheduler = scheduler
        self.rng = make_rng(seed)
        self._speeds: dict[int, float] = {i: s for i, s in enumerate(initial_speeds)}
        self._next_machine = len(initial_speeds)
        self._workloads: dict[int, float] = {}
        self._arrival: dict[int, float] = {}
        self._next_task = 0
        # execution state
        self._pending: set[int] = set()
        self._plan: list[_PlanEntry] = []
        self._completed: dict[int, float] = {}
        self._last_machine: dict[int, int] = {}
        self._migrations = 0
        self._restarted = 0

    # ------------------------------------------------------------------
    def run(self, events: list) -> DynamicRunStats:
        """Replay ``events`` (any order; sorted by time) to completion."""
        events = sorted(events, key=lambda e: e.time)
        now = 0.0
        reschedules = 0
        timeline: list[tuple[float, int, int]] = []
        for event in events:
            if event.time < now:
                raise ValueError("event times must be non-decreasing")
            now = event.time
            self._advance(now)
            self._apply(event, now)
            self._reschedule(now)
            reschedules += 1
            timeline.append((now, len(self._pending), len(self._speeds)))
        # drain: run the final plan to completion
        self._advance(float("inf"))
        if self._pending or any(t not in self._completed for t in self._workloads):
            raise RuntimeError(
                "tasks left unfinished: the grid had no machines to run them"
            )
        makespan = max(self._completed.values(), default=0.0)
        flows = [self._completed[t] - self._arrival[t] for t in self._completed]
        return DynamicRunStats(
            makespan=makespan,
            completed=len(self._completed),
            mean_flowtime=float(np.mean(flows)) if flows else 0.0,
            reschedules=reschedules,
            migrations=self._migrations,
            restarted=self._restarted,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    def _advance(self, to_time: float) -> None:
        """Execute the current plan up to ``to_time``."""
        keep: list[_PlanEntry] = []
        for entry in self._plan:
            if entry.finish <= to_time:
                self._completed[entry.task] = entry.finish
            else:
                keep.append(entry)
        self._plan = keep

    def _apply(self, event, now: float) -> None:
        if isinstance(event, BatchArrival):
            for w in event.workloads:
                tid = self._next_task
                self._next_task += 1
                self._workloads[tid] = w
                self._arrival[tid] = now
                self._pending.add(tid)
        elif isinstance(event, MachineJoin):
            self._speeds[self._next_machine] = event.speed
            self._next_machine += 1
        elif isinstance(event, MachineLeave):
            if event.machine_id not in self._speeds:
                raise KeyError(f"machine {event.machine_id} is not in the grid")
            if len(self._speeds) == 1:
                raise ValueError("cannot drop the last machine of the grid")
            del self._speeds[event.machine_id]
            # running and queued tasks on the dropped machine restart
            for entry in self._plan:
                if entry.machine == event.machine_id:
                    self._pending.add(entry.task)
                    if entry.start < now:
                        self._restarted += 1
            self._plan = [e for e in self._plan if e.machine != event.machine_id]
        else:
            raise TypeError(f"unknown event type: {type(event).__name__}")

    def _reschedule(self, now: float) -> None:
        # pull every not-yet-started task back into the pool
        started: list[_PlanEntry] = []
        for entry in self._plan:
            if entry.start < now:
                started.append(entry)  # non-preemptive: keeps running
            else:
                self._pending.add(entry.task)
        self._plan = started
        if not self._pending:
            return

        machine_ids = sorted(self._speeds)
        ready = {m: now for m in machine_ids}
        for entry in started:
            ready[entry.machine] = max(ready[entry.machine], entry.finish)

        tasks = sorted(self._pending)
        workloads = np.array([self._workloads[t] for t in tasks])
        speeds = np.array([self._speeds[m] for m in machine_ids])
        etc = workloads[:, None] / speeds[None, :]
        instance = ETCMatrix(
            etc=etc,
            ready_times=np.array([ready[m] for m in machine_ids]),
            name=f"reschedule@{now:g}",
        )
        schedule = self.scheduler(instance, self.rng)

        # install the new plan: per machine, SPT order from its ready time
        for mi, m in enumerate(machine_ids):
            local = np.flatnonzero(schedule.s == mi)
            durations = instance.etc[local, mi]
            order = np.argsort(durations, kind="stable")
            cursor = ready[m]
            for k in order:
                tid = tasks[int(local[k])]
                dur = float(durations[k])
                entry = _PlanEntry(task=tid, machine=m, start=cursor, finish=cursor + dur)
                cursor += dur
                self._plan.append(entry)
                prev = self._last_machine.get(tid)
                if prev is not None and prev != m:
                    self._migrations += 1
                self._last_machine[tid] = m
        self._pending.clear()

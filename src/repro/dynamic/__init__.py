"""Dynamic grid scheduling (the paper's §2.1 environment).

The benchmark experiments schedule one static batch, but the problem
description is dynamic: users keep submitting independent tasks,
machines join and drop, and every rescheduling round sees non-zero
ready times.  This package provides a discrete-event grid simulator
that replays such a scenario and invokes any of this library's
schedulers (heuristics or PA-CGA) at each rescheduling point —
exercising the ``ready_times`` path of the representation end to end.
"""

from repro.dynamic.events import BatchArrival, MachineJoin, MachineLeave
from repro.dynamic.simulator import DynamicGridSimulator, DynamicRunStats, greedy_rescheduler

__all__ = [
    "BatchArrival",
    "MachineJoin",
    "MachineLeave",
    "DynamicGridSimulator",
    "DynamicRunStats",
    "greedy_rescheduler",
]

"""Problem registry — the single source of workload dispatch.

Mirrors the engine registry (:mod:`repro.runtime.registry`): problems
register by name, unknown names raise an error that lists the valid
ones, and everything that needs workload-specific behavior — config
validation, population codec, batch-kernel resolution, CLI ``--problem``
choices, checkpoint stamps — resolves through this module.
"""

from __future__ import annotations

from repro.problems.base import SchedulingProblem
from repro.problems.flowshop import FLOWSHOP
from repro.problems.independent import INDEPENDENT

__all__ = [
    "SchedulingProblem",
    "PROBLEMS",
    "register_problem",
    "resolve_problem",
    "problem_names",
    "problem_of",
    "DEFAULT_PROBLEM",
]

#: default problem: the paper's workload.
DEFAULT_PROBLEM = "independent"

#: name -> problem, in registration (= documentation) order.
PROBLEMS: dict[str, SchedulingProblem] = {}


def register_problem(problem: SchedulingProblem) -> SchedulingProblem:
    """Register a problem under its canonical name (idempotent)."""
    existing = PROBLEMS.get(problem.name)
    if existing is not None and existing is not problem:
        raise ValueError(f"problem {problem.name!r} is already registered")
    PROBLEMS[problem.name] = problem
    return problem


def resolve_problem(name: str) -> SchedulingProblem:
    """Look up a problem by name; unknown names list the valid ones."""
    try:
        return PROBLEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown problem {name!r}; valid problems: {', '.join(PROBLEMS)}"
        ) from None


def problem_names() -> list[str]:
    """Registered problem names in registration order."""
    return list(PROBLEMS)


def problem_of(instance) -> SchedulingProblem:
    """Map an instance object back to its registered problem."""
    for problem in PROBLEMS.values():
        if problem.owns_instance(instance):
            return problem
    raise TypeError(
        f"no registered problem owns instances of type {type(instance).__name__}; "
        f"valid problems: {', '.join(PROBLEMS)}"
    )


register_problem(INDEPENDENT)
register_problem(FLOWSHOP)

"""The paper's workload as a :class:`SchedulingProblem`.

Independent tasks on heterogeneous machines (ETC matrix, paper §3.1)
with the (S, CT) representation of §3.3.  This module only *adapts*
the existing stack — :mod:`repro.etc`, :mod:`repro.scheduling`,
:mod:`repro.cga` operators, :mod:`repro.kernels` batch suites, Min-min
seeding — into the protocol; every callable either is the pre-existing
function object or reproduces its array arithmetic verbatim, so
registering the problem changes no trajectory (pinned by
``tests/golden_capture.py``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cga.crossover import CROSSOVERS, child_with_ct
from repro.cga.fitness import FITNESS
from repro.cga.local_search import LOCAL_SEARCHES
from repro.cga.mutation import MUTATIONS, move_mutation
from repro.etc.model import ETCMatrix
from repro.etc.registry import BENCHMARK_INSTANCES, load_benchmark
from repro.etc import io as etc_io
from repro.kernels.batch_ct import batch_ct_delta
from repro.kernels.batch_fitness import BATCH_FITNESS
from repro.kernels.batch_ls import BATCH_LOCAL_SEARCHES
from repro.kernels.batch_variation import BATCH_CROSSOVER_MASKS, BATCH_MUTATIONS
from repro.problems.base import SchedulingProblem
from repro.scheduling.schedule import Schedule, compute_completion_times
from repro.scheduling.validation import check_completion_times, validate_assignment

__all__ = ["INDEPENDENT", "load_etc_instance"]


def load_etc_instance(spec: str) -> ETCMatrix:
    """Resolve an instance spec: benchmark name or instance file path."""
    if spec in BENCHMARK_INSTANCES:
        return load_benchmark(spec)
    if Path(spec).is_file():
        return etc_io.load_instance(spec)
    raise ValueError(
        f"unknown ETC instance {spec!r}: expected a benchmark name "
        f"({', '.join(BENCHMARK_INSTANCES)}) or a path to an instance file"
    )


def _random_genomes(instance: ETCMatrix, rng: np.random.Generator, shape) -> np.ndarray:
    # One draw, identical to the pre-refactor Population.init_random.
    return rng.integers(0, instance.nmachines, size=shape, dtype=np.int32)


def _population_ct(instance: ETCMatrix, S: np.ndarray) -> np.ndarray:
    """Whole-population CT recompute: one flattened scatter-add."""
    inst = instance
    n = S.shape[0]
    ct = np.empty((n, inst.nmachines), dtype=np.float64)
    ct[:] = inst.ready_times[None, :]
    rows = np.repeat(np.arange(n), inst.ntasks)
    cols = S.ravel()
    tasks = np.tile(np.arange(inst.ntasks), n)
    flat = ct.ravel()
    np.add.at(flat, rows * inst.nmachines + cols, inst.etc[tasks, cols])
    return flat.reshape(ct.shape)


def _random_move(s, ct, instance, rng) -> float:
    """One random task move through the O(1) incremental CT update."""
    move_mutation(s, ct, instance, rng)
    return float(ct.max())


def _seed_schedules(instance: ETCMatrix, config) -> list | None:
    if not getattr(config, "seed_with_minmin", True):
        return None
    from repro.heuristics import min_min

    return [min_min(instance)]


def _batch_recombine(instance, child_s, child_ct, p2_s, mask) -> np.ndarray:
    """Mask-select genes from parent 2, patching CT by the O(changed) delta."""
    new_s = np.where(mask, p2_s, child_s)
    batch_ct_delta(instance, child_ct, child_s, new_s)
    return new_s


INDEPENDENT = SchedulingProblem(
    name="independent",
    summary="independent tasks on heterogeneous machines (ETC, paper §3)",
    instance_type=ETCMatrix,
    load_instance=load_etc_instance,
    default_instance="u_i_hihi.0",
    alphabet=lambda instance: instance.nmachines,
    random_genomes=_random_genomes,
    evaluate=compute_completion_times,
    population_ct=_population_ct,
    random_move=_random_move,
    check_genome=validate_assignment,
    check_ct=check_completion_times,
    seed_schedules=_seed_schedules,
    as_schedule=Schedule,
    fitness=FITNESS,
    crossovers=CROSSOVERS,
    mutations=MUTATIONS,
    local_searches=LOCAL_SEARCHES,
    recombine=child_with_ct,
    batch_fitness=BATCH_FITNESS,
    batch_mutations=BATCH_MUTATIONS,
    batch_local_searches=BATCH_LOCAL_SEARCHES,
    batch_cross_masks=BATCH_CROSSOVER_MASKS,
    batch_recombine=_batch_recombine,
)

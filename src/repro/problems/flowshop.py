"""Permutation flow shop as a :class:`SchedulingProblem`.

The second registered workload, proving the problem abstraction: the
same cGA engines (scalar, vectorized, threaded, shared-memory) run
``F | perm | Cmax`` — the permutation flow-shop problem of Taillard
(1993) — without knowing they left the ETC world.  The mapping onto the
universal (S, CT) buffers:

* genome ``s`` — a permutation of the ``njobs`` jobs (``ntasks`` =
  ``njobs``, so every engine buffer keeps its shape);
* ``ct`` row — per-machine completion time of the **last** job in the
  permutation.  The DP recurrence makes rows nondecreasing across
  machines, so ``ct.max() == ct[-1]`` is the makespan and the engines'
  shared ``ct.max()`` fitness fast path stays valid.

Operator analogs keep the paper's canonical names so one
:class:`~repro.cga.config.CGAConfig` drives either problem:

* crossover ``opx``/``tpx``/``uniform`` — the independent problem's
  inheritance masks (same RNG draws) feeding an order-preserving
  mask-fill: the child takes parent 2's jobs at mask positions and
  fills the rest with parent 1's remaining jobs in parent-1 order
  (feasible for *any* mask because a parent row is a permutation);
* mutation ``move`` — remove-and-reinsert one job (the permutation
  analog of moving a task to another machine); ``swap`` — exchange two
  positions;
* local search ``h2ll`` — the H2LL analog: take a random job out and
  re-insert it at the best of all positions, evaluated in O(n·m) with
  Taillard's head/tail (e, q, f) acceleration instead of n separate DP
  sweeps;
* seeding — NEH (Nawaz–Enscore–Ham 1983) replaces Min-min as the
  constructive heuristic planted at position 0.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cga.fitness import makespan_fitness
from repro.cga.local_search import _publish
from repro.kernels.batch_fitness import batch_makespan
from repro.kernels.batch_variation import BATCH_CROSSOVER_MASKS
from repro.problems.base import SchedulingProblem
from repro.scheduling.validation import InvalidScheduleError

__all__ = [
    "FLOWSHOP",
    "FlowShopInstance",
    "FlowShopSchedule",
    "make_flowshop",
    "load_flowshop_instance",
    "save_flowshop_instance",
    "flowshop_ct",
    "batch_flowshop_ct",
    "insertion_makespans",
    "neh_order",
]

#: spec pattern for deterministically regenerable instances.
_GEN_PATTERN = re.compile(r"fs(\d+)x(\d+)\.(\d+)")


@dataclass(frozen=True)
class FlowShopInstance:
    """Immutable permutation flow-shop instance.

    Parameters
    ----------
    p:
        ``(njobs, nmachines)`` array of positive processing times
        (job-major, like the ETC matrix's task-major layout).
    name:
        Human-readable instance name (``fs20x5.0`` for generated ones).
    """

    p: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        p = np.ascontiguousarray(self.p, dtype=np.float64)
        if p.ndim != 2:
            raise ValueError(f"processing times must be 2-D, got shape {p.shape}")
        if p.shape[0] < 2 or p.shape[1] < 1:
            raise ValueError(f"need >= 2 jobs and >= 1 machine, got shape {p.shape}")
        if not np.all(np.isfinite(p)) or np.any(p <= 0):
            raise ValueError("processing times must be finite and strictly positive")
        object.__setattr__(self, "p", p)

    # engine-facing geometry: genome length and aux-row width
    @property
    def ntasks(self) -> int:
        """Genome length — the number of jobs."""
        return self.p.shape[0]

    @property
    def njobs(self) -> int:
        """Number of jobs (alias of :attr:`ntasks`)."""
        return self.p.shape[0]

    @property
    def nmachines(self) -> int:
        """Number of machines — the width of the CT row."""
        return self.p.shape[1]

    def makespan_lower_bound(self) -> float:
        """Machine-load bound: each machine's work plus min head/tail."""
        p = self.p
        best = 0.0
        for k in range(self.nmachines):
            head = float(p[:, :k].sum(axis=1).min()) if k else 0.0
            tail = float(p[:, k + 1 :].sum(axis=1).min()) if k + 1 < self.nmachines else 0.0
            best = max(best, head + float(p[:, k].sum()) + tail)
        return best

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowShopInstance):
            return NotImplemented
        return self.p.shape == other.p.shape and bool(np.array_equal(self.p, other.p))

    def __hash__(self) -> int:
        return hash((self.name, self.p.shape, float(self.p.sum())))

    def __repr__(self) -> str:
        label = self.name or "<unnamed>"
        return f"FlowShopInstance({label}, {self.njobs}x{self.nmachines})"


class FlowShopSchedule:
    """A standalone permutation schedule (the flow-shop ``Schedule``)."""

    __slots__ = ("instance", "s")

    def __init__(self, instance: FlowShopInstance, s: np.ndarray):
        s = np.ascontiguousarray(s, dtype=np.int32)
        check_permutation(instance, s)
        self.instance = instance
        self.s = s

    def completion_times(self) -> np.ndarray:
        """Per-machine completion time of the last permutation job."""
        return flowshop_ct(self.instance, self.s)

    def makespan(self) -> float:
        """Completion time of the last job on the last machine."""
        return float(flowshop_ct(self.instance, self.s)[-1])


# ----------------------------------------------------------------------
# instance generation and I/O
# ----------------------------------------------------------------------
def make_flowshop(njobs: int, nmachines: int, seed: int = 0, name: str = "") -> FlowShopInstance:
    """Taillard-style random instance: integer times uniform in [1, 99]."""
    rng = np.random.default_rng(seed)
    p = rng.integers(1, 100, size=(njobs, nmachines)).astype(np.float64)
    return FlowShopInstance(p=p, name=name or f"fs{njobs}x{nmachines}.{seed}")


def save_flowshop_instance(instance: FlowShopInstance, path) -> None:
    """Write the annotated text format (header + one row per job)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if instance.name:
            fh.write(f"# {instance.name}\n")
        fh.write(f"{instance.njobs} {instance.nmachines}\n")
        for row in instance.p:
            fh.write(" ".join(f"{v:.17g}" for v in row))
            fh.write("\n")


def _load_file(path: Path) -> FlowShopInstance:
    name = ""
    with path.open("r", encoding="utf-8") as fh:
        line = fh.readline()
        if line.startswith("#"):
            name = line[1:].strip()
            line = fh.readline()
        try:
            njobs, nmachines = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise ValueError(f"{path}: malformed dimension line {line!r}") from exc
        data = np.loadtxt(fh, dtype=np.float64, ndmin=2)
    if data.shape != (njobs, nmachines):
        raise ValueError(
            f"{path}: header says {njobs}x{nmachines} but body has shape {data.shape}"
        )
    return FlowShopInstance(p=data, name=name)


def load_flowshop_instance(spec: str) -> FlowShopInstance:
    """Resolve a spec: ``fs<jobs>x<machines>.<seed>`` or a file path.

    Generated specs are deterministic, so checkpoints referencing them
    resume against bit-identical instances with no file on disk.
    """
    match = _GEN_PATTERN.fullmatch(spec)
    if match:
        return make_flowshop(int(match[1]), int(match[2]), seed=int(match[3]))
    if Path(spec).is_file():
        return _load_file(Path(spec))
    raise ValueError(
        f"unknown flow-shop instance {spec!r}: expected a generator spec like "
        f"'fs20x5.0' (jobs x machines . seed) or a path to an instance file"
    )


# ----------------------------------------------------------------------
# evaluation — the makespan DP, scalar and batch
# ----------------------------------------------------------------------
def flowshop_ct(instance: FlowShopInstance, s: np.ndarray) -> np.ndarray:
    """Completion-time row of one permutation (the scalar reference).

    The classic O(n·m) recurrence over Python floats (ndarray element
    access dominated a profiled NumPy version at benchmark sizes); the
    op-for-op order matches :func:`batch_flowshop_ct`, so scalar and
    batch evaluation agree bit-exactly.
    """
    p = instance.p
    m = instance.nmachines
    c = [0.0] * m
    for j in s:
        row = p[int(j)]
        c[0] += row[0]
        prev = c[0]
        for k in range(1, m):
            ck = c[k]
            if prev > ck:
                ck = prev
            prev = c[k] = ck + row[k]
    return np.asarray(c, dtype=np.float64)


def batch_flowshop_ct(instance: FlowShopInstance, S: np.ndarray) -> np.ndarray:
    """CT rows for a whole ``(P, njobs)`` permutation matrix.

    Loops over the n·m DP cells with every operation vectorized across
    the population — the flow-shop analog of the independent problem's
    scatter-add population evaluation.
    """
    p = instance.p
    S = np.asarray(S)
    P, n = S.shape
    m = p.shape[1]
    C = np.zeros((P, m), dtype=np.float64)
    for t in range(n):
        pj = p[S[:, t]]
        C[:, 0] += pj[:, 0]
        for k in range(1, m):
            np.maximum(C[:, k], C[:, k - 1], out=C[:, k])
            C[:, k] += pj[:, k]
    return C


def check_permutation(instance: FlowShopInstance, s: np.ndarray) -> None:
    """Raise unless ``s`` is a valid int32 permutation of the jobs."""
    n = instance.njobs
    if s.shape != (n,):
        raise InvalidScheduleError(f"genome shape {s.shape} != ({n},)")
    if s.dtype != np.int32:
        raise InvalidScheduleError(f"genome dtype {s.dtype} != int32")
    seen = np.zeros(n, dtype=bool)
    valid = (s >= 0) & (s < n)
    if not valid.all():
        raise InvalidScheduleError("genome contains out-of-range job ids")
    seen[s] = True
    if not seen.all():
        raise InvalidScheduleError("genome is not a permutation (repeated jobs)")


def check_flowshop_ct(instance: FlowShopInstance, s: np.ndarray, ct: np.ndarray) -> None:
    """Raise unless the cached CT row matches a fresh DP sweep."""
    expected = flowshop_ct(instance, s)
    if not np.allclose(ct, expected, rtol=1e-9, atol=1e-6):
        raise InvalidScheduleError(f"stale completion times: {ct} != {expected}")


# ----------------------------------------------------------------------
# Taillard (e, q, f) insertion acceleration
# ----------------------------------------------------------------------
def insertion_makespans(
    instance: FlowShopInstance, R: np.ndarray, jobs: np.ndarray
) -> np.ndarray:
    """Makespans of inserting ``jobs[r]`` at every position of ``R[r]``.

    ``R`` is a ``(P, L)`` matrix of partial permutations and the result
    is ``(P, L + 1)``.  Taillard's acceleration: heads ``e`` (prefix
    completion times), tails ``q`` (time from each suffix's start to
    the end), and the inserted job's own completion ``f`` give the
    makespan at position ``i`` as ``max_k(f[i, k] + q[i, k])`` — all
    n + 1 insertions in one O(n·m) pass instead of n DP sweeps.
    """
    p = instance.p
    R = np.asarray(R)
    P, L = R.shape
    m = p.shape[1]
    e = np.zeros((P, L + 1, m), dtype=np.float64)
    for i in range(1, L + 1):
        pj = p[R[:, i - 1]]
        prev = e[:, i - 1]
        cur = e[:, i]
        cur[:, 0] = prev[:, 0] + pj[:, 0]
        for k in range(1, m):
            np.maximum(cur[:, k - 1], prev[:, k], out=cur[:, k])
            cur[:, k] += pj[:, k]
    q = np.zeros((P, L + 1, m), dtype=np.float64)
    for i in range(L - 1, -1, -1):
        pj = p[R[:, i]]
        nxt = q[:, i + 1]
        cur = q[:, i]
        cur[:, m - 1] = nxt[:, m - 1] + pj[:, m - 1]
        for k in range(m - 2, -1, -1):
            np.maximum(cur[:, k + 1], nxt[:, k], out=cur[:, k])
            cur[:, k] += pj[:, k]
    pj = p[jobs][:, None, :]
    f = np.empty((P, L + 1, m), dtype=np.float64)
    f[:, :, 0] = e[:, :, 0] + pj[:, :, 0]
    for k in range(1, m):
        np.maximum(f[:, :, k - 1], e[:, :, k], out=f[:, :, k])
        f[:, :, k] += pj[:, :, k]
    return (f + q).max(axis=2)


def _delete_positions(S: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Row-wise ``np.delete``: drop ``pos[r]`` from every row of ``S``."""
    P, n = S.shape
    cols = np.arange(n - 1)[None, :]
    take = np.where(cols < pos[:, None], cols, cols + 1)
    return np.take_along_axis(S, take, axis=1)


def _insert_positions(R: np.ndarray, pos: np.ndarray, jobs: np.ndarray) -> np.ndarray:
    """Row-wise ``np.insert``: place ``jobs[r]`` at ``pos[r]`` in ``R[r]``."""
    P, L = R.shape
    cols = np.arange(L + 1)[None, :]
    take = np.where(cols < pos[:, None], cols, cols - 1)
    out = np.take_along_axis(R, np.clip(take, 0, L - 1), axis=1)
    out[np.arange(P), pos] = jobs
    return out


# ----------------------------------------------------------------------
# seeding — NEH
# ----------------------------------------------------------------------
def neh_order(instance: FlowShopInstance) -> np.ndarray:
    """NEH constructive heuristic: the flow-shop analog of Min-min.

    Jobs sorted by descending total processing time, each inserted at
    its best position (Taillard-accelerated, O(n²·m) total).
    """
    totals = instance.p.sum(axis=1)
    order = np.argsort(-totals, kind="stable")
    seq = np.asarray([order[0]], dtype=np.int32)
    for job in order[1:]:
        ms = insertion_makespans(instance, seq[None, :], np.asarray([job]))[0]
        pos = int(ms.argmin())
        seq = np.insert(seq, pos, np.int32(job))
    return np.ascontiguousarray(seq, dtype=np.int32)


def _seed_schedules(instance: FlowShopInstance, config) -> list | None:
    # the config's "seed with a constructive heuristic" switch keeps its
    # paper name; for flow shop the heuristic is NEH instead of Min-min
    if not getattr(config, "seed_with_minmin", True):
        return None
    return [FlowShopSchedule(instance, neh_order(instance))]


# ----------------------------------------------------------------------
# scalar operators
# ----------------------------------------------------------------------
def _ox_fill(p1: np.ndarray, p2: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Order-preserving mask fill (generalized OX)."""
    taken = np.zeros(p1.shape[0], dtype=bool)
    taken[p2[mask]] = True
    child = np.empty_like(p1)
    child[mask] = p2[mask]
    child[~mask] = p1[~taken[p1]]
    return child


def fs_one_point(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """opx analog: p2's suffix jobs keep their places, prefix refilled."""
    n = p1.shape[0]
    if n < 2:
        return p1.copy()
    cut = int(rng.integers(1, n))
    return _ox_fill(p1, p2, np.arange(n) >= cut)


def fs_two_point(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """tpx analog: p2's jobs inside a random window keep their places."""
    n = p1.shape[0]
    if n < 2:
        return p1.copy()
    cuts = rng.integers(0, n + 1, size=2)
    a, b = (int(cuts.min()), int(cuts.max()))
    cols = np.arange(n)
    return _ox_fill(p1, p2, (cols >= a) & (cols < b))


def fs_uniform(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """uniform analog: each position from p2 with p = 1/2, rest refilled."""
    return _ox_fill(p1, p2, rng.random(p1.shape[0]) < 0.5)


def fs_recombine(instance, p1_s, p1_ct, p2_s, op, rng):
    """Apply a crossover and derive the child's CT by one DP sweep.

    The flow-shop counterpart of :func:`repro.cga.crossover.child_with_ct`;
    a permutation has no O(changed) CT delta, but the DP sweep is O(n·m).
    """
    child = op(p1_s, p2_s, rng)
    return child, flowshop_ct(instance, child)


def fs_insertion_mutation(s, ct, instance, rng) -> None:
    """``move`` analog: remove one random job, reinsert at a random slot."""
    n = instance.ntasks
    i = int(rng.integers(0, n))
    j = int(rng.integers(0, n))
    if i == j:
        return
    if j < i:
        s[j : i + 1] = np.roll(s[j : i + 1], 1)
    else:
        s[i : j + 1] = np.roll(s[i : j + 1], -1)
    ct[:] = flowshop_ct(instance, s)


def fs_swap_mutation(s, ct, instance, rng) -> None:
    """``swap`` analog: exchange the jobs at two random positions."""
    n = instance.ntasks
    a, b = rng.choice(n, size=2, replace=False)
    if s[a] == s[b]:
        return
    s[a], s[b] = s[b], s[a]
    ct[:] = flowshop_ct(instance, s)


def fs_insertion_ls(
    s, ct, instance, rng, iterations: int = 5, n_candidates=None, stats=None
) -> int:
    """``h2ll`` analog: best reinsertion of a random job, if improving.

    Each pass takes one job out and evaluates all n insertion points
    with the Taillard acceleration — the same "one targeted move per
    pass, no full re-evaluation" budget as H2LL.  ``n_candidates`` is
    accepted for signature parity and ignored (every position is a
    candidate at the same O(n·m) cost).
    """
    if iterations <= 0 or instance.ntasks < 2:
        return 0
    moves = 0
    tried = 0
    picks = rng.random(iterations)  # one pre-drawn uniform per pass
    n = instance.ntasks
    for it in range(iterations):
        i = int(picks[it] * n)
        job = np.asarray([s[i]])
        rest = np.delete(s, i)
        ms = insertion_makespans(instance, rest[None, :], job)[0]
        tried += 1
        pos = int(ms.argmin())
        if ms[pos] < float(ct[-1]):
            s[:] = np.insert(rest, pos, job[0])
            ct[:] = flowshop_ct(instance, s)
            moves += 1
    _publish(stats, tried, moves)
    return moves


def _random_move(s, ct, instance, rng) -> float:
    """One random reinsertion through the DP/Taillard delta machinery."""
    n = instance.ntasks
    i = int(rng.integers(0, n))
    j = int(rng.integers(0, n))
    if i == j:
        return float(ct[-1])
    job = np.asarray([s[i]])
    rest = np.delete(s, i)
    predicted = float(insertion_makespans(instance, rest[None, :], job)[0][j])
    s[:] = np.insert(rest, j, job[0])
    ct[:] = flowshop_ct(instance, s)
    return predicted


# ----------------------------------------------------------------------
# batch kernels
# ----------------------------------------------------------------------
def _batch_ox_fill(p1: np.ndarray, p2: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Row-wise order-preserving mask fill for ``(P, n)`` matrices."""
    P, n = p1.shape
    child = np.where(mask, p2, p1)
    taken = np.zeros((P, n), dtype=bool)
    r, c = np.nonzero(mask)
    taken[r, p2[r, c]] = True
    avail = ~np.take_along_axis(taken, p1.astype(np.intp), axis=1)
    src_rank = np.cumsum(avail, axis=1) - 1
    compacted = np.zeros_like(p1)
    rr, cc = np.nonzero(avail)
    compacted[rr, src_rank[rr, cc]] = p1[rr, cc]
    slot_rank = np.cumsum(~mask, axis=1) - 1
    fr, fc = np.nonzero(~mask)
    child[fr, fc] = compacted[fr, slot_rank[fr, fc]]
    return child


def fs_batch_recombine(instance, child_s, child_ct, p2_s, mask) -> np.ndarray:
    """Mask-fill every crossed row, then refresh its CT by one DP pass."""
    r = np.flatnonzero(mask.any(axis=1))
    if r.size == 0:
        return child_s
    new_s = child_s.copy()
    new_s[r] = _batch_ox_fill(child_s[r], p2_s[r], mask[r])
    child_ct[r] = batch_flowshop_ct(instance, new_s[r])
    return new_s


def fs_batch_insertion_mutation(s, ct, instance, rng, active) -> None:
    """Remove-and-reinsert one random job in every active row."""
    P, n = s.shape
    i = rng.integers(0, n, size=P)
    j = rng.integers(0, n, size=P)
    r = np.flatnonzero(active & (i != j))
    if r.size == 0:
        return
    jobs = s[r, i[r]]
    rest = _delete_positions(s[r], i[r])
    s[r] = _insert_positions(rest, j[r], jobs)
    ct[r] = batch_flowshop_ct(instance, s[r])


def fs_batch_swap_mutation(s, ct, instance, rng, active) -> None:
    """Exchange two random distinct positions in every active row."""
    P, n = s.shape
    a = rng.integers(0, n, size=P)
    b = rng.integers(0, n - 1, size=P)
    b += b >= a  # distinct pair, uniform over the other n-1 positions
    r = np.flatnonzero(active)
    if r.size == 0:
        return
    rows = r
    ar, br = a[r], b[r]
    va, vb = s[rows, ar].copy(), s[rows, br].copy()
    s[rows, ar] = vb
    s[rows, br] = va
    ct[r] = batch_flowshop_ct(instance, s[r])


def fs_batch_insertion_ls(s, ct, instance, rng, iterations: int = 5, n_candidates=None) -> int:
    """Batch best-reinsertion local search (``h2ll`` analog).

    Per pass: one random job out per row, all insertion points of every
    row scored in a single Taillard pass, improving rows rebuilt and
    re-evaluated.  Returns the total number of accepted moves.
    """
    if iterations <= 0:
        return 0
    P, n = s.shape
    if n < 2:
        return 0
    rows = np.arange(P)
    moves = 0
    for _ in range(iterations):
        i = (rng.random(P) * n).astype(np.int64)
        jobs = s[rows, i]
        rest = _delete_positions(s, i)
        ms = insertion_makespans(instance, rest, jobs)
        pos = ms.argmin(axis=1)
        best = ms[rows, pos]
        r = np.flatnonzero(best < ct[:, -1])
        if r.size:
            s[r] = _insert_positions(rest[r], pos[r], jobs[r])
            ct[r] = batch_flowshop_ct(instance, s[r])
            moves += int(r.size)
    return moves


def _random_genomes(instance: FlowShopInstance, rng: np.random.Generator, shape) -> np.ndarray:
    pop, n = shape
    base = np.tile(np.arange(n, dtype=np.int32), (pop, 1))
    return rng.permuted(base, axis=1)


FLOWSHOP = SchedulingProblem(
    name="flowshop",
    summary="permutation flow shop, F|perm|Cmax (Taillard 1993)",
    instance_type=FlowShopInstance,
    load_instance=load_flowshop_instance,
    default_instance="fs20x5.0",
    alphabet=lambda instance: instance.njobs,
    random_genomes=_random_genomes,
    evaluate=flowshop_ct,
    population_ct=batch_flowshop_ct,
    random_move=_random_move,
    check_genome=check_permutation,
    check_ct=check_flowshop_ct,
    seed_schedules=_seed_schedules,
    as_schedule=FlowShopSchedule,
    fitness={"makespan": makespan_fitness},
    crossovers={"opx": fs_one_point, "tpx": fs_two_point, "uniform": fs_uniform},
    mutations={"move": fs_insertion_mutation, "swap": fs_swap_mutation},
    local_searches={"h2ll": fs_insertion_ls},
    recombine=fs_recombine,
    batch_fitness={"makespan": batch_makespan},
    batch_mutations={"move": fs_batch_insertion_mutation, "swap": fs_batch_swap_mutation},
    batch_local_searches={"h2ll": fs_batch_insertion_ls},
    batch_cross_masks=BATCH_CROSSOVER_MASKS,
    batch_recombine=fs_batch_recombine,
)

"""The :class:`SchedulingProblem` protocol.

Everything workload-specific in the library — genome codec, full and
delta evaluation, batch (population-matrix) kernels, feasible variation
operators and local-search move sets, seeding heuristics, instance
loading — is owned by one frozen :class:`SchedulingProblem` record.
Engines never branch on the workload: they receive operator callables
resolved *through* the problem (scalar path via
:meth:`repro.cga.config.CGAConfig.resolve`, batch path via
:func:`repro.kernels.resolve_batch_ops`), and the population/runtime
layers call the problem's codec hooks.

Shapes are universal across problems so every engine's buffers (and the
shared-memory arenas of :mod:`repro.parallel.shm` /
:mod:`repro.parallel.processes`) stay problem-agnostic:

* genome — ``(ntasks,)`` ``genome_dtype`` per individual, where
  ``instance.ntasks`` is the genome length (tasks for the ETC workload,
  jobs for permutation flow shop);
* aux/CT row — ``(nmachines,)`` float64 per individual.  The row's
  *meaning* is problem-defined (per-machine completion times for ETC;
  per-machine completion time of the final permutation job for flow
  shop) but two invariants are universal: ``ct`` is exactly
  ``evaluate(instance, s)`` whenever an individual is published, and
  ``ct.max()`` equals the default (makespan) fitness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

__all__ = ["SchedulingProblem"]


@dataclass(frozen=True)
class SchedulingProblem:
    """Declarative description of one scheduling workload.

    Attributes
    ----------
    name:
        Canonical registry key (recorded in checkpoints, telemetry
        bundles and the run history).
    summary:
        One-line human description (``repro problems`` listing).
    instance_type:
        The instance class; :func:`repro.problems.problem_of` maps an
        instance object back to its problem by ``isinstance``.
    genome_dtype:
        NumPy dtype of the genome arrays (int32 for both built-ins).
    load_instance:
        ``spec -> instance``: benchmark name, generator pattern or file
        path.  Raises ``ValueError`` listing the valid forms otherwise.
    default_instance:
        Instance spec the CLI uses when ``--instance`` is omitted.
    alphabet:
        ``instance -> int``: number of distinct gene values (machines
        for ETC, jobs for a permutation) — the allele-entropy alphabet.
    random_genomes:
        ``(instance, rng, shape) -> ndarray``: feasible random genomes
        for population init (``shape = (pop, ntasks)``).
    evaluate:
        ``(instance, s) -> ct``: full single-genome evaluation, the
        semantic reference every delta/batch path must match.
    population_ct:
        ``(instance, S) -> CT``: full batch evaluation of an
        ``(P, ntasks)`` genome matrix into ``(P, nmachines)`` rows.
    default_fitness:
        Name of the fitness whose value is ``ct.max()`` (the fast
        whole-population evaluation path).
    random_move:
        ``(s, ct, instance, rng) -> float``: apply one random feasible
        move *via the problem's delta machinery*, updating ``(s, ct)``
        in place, and return the move's predicted makespan.  The
        problem-contract suite replays thousands of these against
        :attr:`evaluate` — this is the "delta evaluation matches full
        re-evaluation" gate.
    check_genome / check_ct:
        Feasibility / CT-exactness validators (raise on violation).
    seed_schedules:
        ``(instance, config) -> list | None``: heuristic seed
        individuals planted at population init (objects with ``.s`` and
        ``.instance``).  The ETC problem returns the paper's single
        Min-min schedule; flow shop returns NEH.
    as_schedule:
        ``(instance, s) -> object``: materialize a standalone schedule
        object (``RunResult.best_schedule``).
    fitness / crossovers / mutations / local_searches:
        Scalar operator registries; :class:`~repro.cga.config.CGAConfig`
        validates its operator names against these.  Both built-ins
        register their analogs under the same canonical names
        (``tpx``/``opx``, ``move``/``swap``, ``h2ll``) so one config
        runs either workload.
    recombine:
        ``(instance, p1_s, p1_ct, p2_s, op, rng) -> (child_s,
        child_ct)``: apply crossover ``op`` and derive the child's CT
        (incremental delta for ETC, DP recompute for flow shop).
    batch_fitness / batch_mutations / batch_local_searches /
    batch_cross_masks / batch_recombine:
        The batch-kernel suite used by the vectorized and shm engines;
        all-or-nothing (``has_batch_kernels``).  ``batch_recombine`` is
        ``(instance, child_s, child_ct, p2_s, mask) -> child_s`` with
        ``mask`` the boolean take-from-parent-2 matrix produced by the
        mask kernels.
    """

    name: str
    summary: str
    instance_type: type
    load_instance: Callable
    default_instance: str
    alphabet: Callable
    random_genomes: Callable
    evaluate: Callable
    population_ct: Callable
    random_move: Callable
    check_genome: Callable
    check_ct: Callable
    seed_schedules: Callable
    as_schedule: Callable
    fitness: Mapping[str, Callable]
    crossovers: Mapping[str, Callable]
    mutations: Mapping[str, Callable]
    local_searches: Mapping[str, Callable]
    recombine: Callable
    genome_dtype: np.dtype = np.dtype(np.int32)
    default_fitness: str = "makespan"
    batch_fitness: Mapping[str, Callable] = field(default_factory=dict)
    batch_mutations: Mapping[str, Callable] = field(default_factory=dict)
    batch_local_searches: Mapping[str, Callable] = field(default_factory=dict)
    batch_cross_masks: Mapping[str, Callable] = field(default_factory=dict)
    batch_recombine: Callable | None = None

    @property
    def has_batch_kernels(self) -> bool:
        """Whether the batch engines (vectorized, shm) can run this problem."""
        return bool(self.batch_fitness) and self.batch_recombine is not None

    def operator_names(self) -> dict[str, tuple[str, ...]]:
        """Registered operator names per family (CLI listing / docs)."""
        return {
            "fitness": tuple(self.fitness),
            "crossover": tuple(self.crossovers),
            "mutation": tuple(self.mutations),
            "local_search": tuple(self.local_searches),
        }

    def owns_instance(self, instance) -> bool:
        """True when ``instance`` belongs to this workload."""
        return isinstance(instance, self.instance_type)

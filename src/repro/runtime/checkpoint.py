"""Universal checkpoint/resume (format v3) for every checkpointable engine.

Format v1 (``repro.cga.checkpoint``) snapshotted the sequential engines
only: population arrays plus one RNG state, with the config stored as a
``repr`` string.  Format v2 generalized the snapshot to *every* engine
the registry marks checkpointable; format v3 additionally stamps the
registered problem (``repro.problems``) so a resumed run rebuilds its
instance through the right workload loader:

* ``config`` is a real dictionary (validated field-by-field on
  restore, not by string comparison);
* ``rng_streams`` holds the bit-generator state of every stream the
  engine owns (one for the sequential engines, one per logical thread
  plus jitter streams for the simulator);
* ``progress`` carries the engine-specific resume payload
  (counters, history, and for the simulator the full virtual-time
  scheduler state), so a resumed run continues the identical stochastic
  trajectory *and* reports the same cumulative counters as an
  uninterrupted run;
* ``stop`` optionally embeds the run's :class:`StopCondition` so
  ``repro resume <ckpt>`` needs no further arguments.

Snapshots are taken at generation/sweep boundaries only (the engines'
natural quiescent points — see :func:`run_with_checkpoints`), and every
value is JSON: PCG64 states are plain integers and Python's float
round-trip via ``repr`` is exact, so resume is bit-exact by
construction.  v1 files still load (state-only: the trajectory resumes
exactly, the counters restart at zero) and v2 files load with the
problem defaulted to the independent workload they predate.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, fields
from pathlib import Path

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.runtime.registry import ENGINE_SPECS, EngineSpec, resolve_engine

__all__ = [
    "CHECKPOINT_VERSION",
    "spec_for",
    "config_to_dict",
    "config_from_dict",
    "capture_state",
    "restore_state",
    "save_checkpoint",
    "load_state",
    "resume_engine",
    "run_with_checkpoints",
]

CHECKPOINT_VERSION = 3

#: format versions restore_state/resume_engine still understand.
_COMPATIBLE_VERSIONS = (1, 2, 3)


def spec_for(engine) -> EngineSpec:
    """The registry spec describing ``engine``'s class."""
    cls = type(engine)
    for spec in ENGINE_SPECS.values():
        if spec.module == cls.__module__ and spec.qualname == cls.__qualname__:
            return spec
    raise ValueError(f"engine class {cls.__qualname__} is not registered")


# ---------------------------------------------------------------------------
# config (de)serialization
# ---------------------------------------------------------------------------
def config_to_dict(config: CGAConfig) -> dict:
    """``CGAConfig`` as a plain JSON-safe dictionary (obs nested)."""
    return asdict(config)


def config_from_dict(data: dict) -> CGAConfig:
    """Rebuild a :class:`CGAConfig`, validating the field set.

    Unknown or missing keys raise ``ValueError`` (a checkpoint from a
    different library version should fail loudly, not half-apply).
    """
    if not isinstance(data, dict):
        raise ValueError(f"checkpoint configuration must be a dict, got {type(data).__name__}")
    data = dict(data)
    # v2 checkpoints predate the problems layer: they are all independent
    data.setdefault("problem", "independent")
    known = {f.name for f in fields(CGAConfig)}
    unknown = sorted(set(data) - known)
    missing = sorted(known - set(data))
    if unknown or missing:
        parts = []
        if unknown:
            parts.append(f"unknown fields: {', '.join(unknown)}")
        if missing:
            parts.append(f"missing fields: {', '.join(missing)}")
        raise ValueError(f"invalid checkpoint configuration ({'; '.join(parts)})")
    obs = data.pop("obs", None)
    if obs is not None:
        from repro.obs.observer import ObsConfig

        obs = ObsConfig(**obs)
    try:
        return CGAConfig(obs=obs, **data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid checkpoint configuration: {exc}") from None


def _stop_to_dict(stop: StopCondition) -> dict:
    return asdict(stop)


def _stop_from_dict(data: dict) -> StopCondition:
    known = {f.name for f in fields(StopCondition)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"invalid checkpoint stop condition (unknown fields: {', '.join(unknown)})")
    return StopCondition(**data)


# ---------------------------------------------------------------------------
# capture / restore
# ---------------------------------------------------------------------------
def capture_state(engine, stop: StopCondition | None = None) -> dict:
    """Snapshot ``engine`` into a JSON-safe checkpoint dictionary.

    The engine contributes its stream/progress payload through its
    ``capture_state`` method; this wrapper adds the universal envelope
    (format version, registry name, config, instance, population,
    optional stop condition).
    """
    spec = spec_for(engine)
    if not spec.checkpointable:
        raise ValueError(
            f"engine {spec.name!r} is not checkpointable "
            f"(checkpointable engines: {', '.join(n for n, s in ENGINE_SPECS.items() if s.checkpointable)})"
        )
    pop = engine.pop
    state = {
        "format_version": CHECKPOINT_VERSION,
        "engine": spec.name,
        "problem": getattr(engine.config, "problem", "independent"),
        "instance": engine.instance.name,
        "config": config_to_dict(engine.config),
        "population": {
            "s": pop.s.tolist(),
            "ct": pop.ct.tolist(),
            "fitness": pop.fitness.tolist(),
        },
        "stop": _stop_to_dict(stop) if stop is not None else None,
    }
    state.update(engine.capture_state())
    return state


def _restore_population(engine, s, ct, fitness) -> None:
    pop = engine.pop
    s = np.asarray(s, dtype=pop.s.dtype)
    ct = np.asarray(ct, dtype=pop.ct.dtype)
    fitness = np.asarray(fitness, dtype=pop.fitness.dtype)
    if s.shape != pop.s.shape:
        raise ValueError(f"population shape mismatch: {s.shape} vs {pop.s.shape}")
    pop.s[:] = s
    pop.ct[:] = ct
    pop.fitness[:] = fitness


def restore_state(engine, state: dict, resume: bool = True) -> None:
    """Restore a :func:`capture_state` snapshot in place.

    The engine must have been constructed with the same instance and
    configuration; both are verified before anything is touched.  With
    ``resume=True`` the engine's next ``run`` continues the logical run
    (counters, history and — for the simulator — scheduler clocks pick
    up where the snapshot left off); ``resume=False`` restores the
    stochastic state only, v1-style.
    """
    version = state.get("format_version")
    if version == 1:
        _restore_v1(engine, state)
        return
    if version not in _COMPATIBLE_VERSIONS:
        raise ValueError(f"unsupported checkpoint version: {version!r}")
    spec = spec_for(engine)
    if state.get("engine") != spec.name:
        raise ValueError(
            f"checkpoint is for engine {state.get('engine')!r}, restoring into {spec.name!r}"
        )
    problem = state.get("problem", "independent")
    engine_problem = getattr(engine.config, "problem", "independent")
    if problem != engine_problem:
        raise ValueError(
            f"checkpoint is for problem {problem!r}, restoring into {engine_problem!r}"
        )
    if config_from_dict(state["config"]) != engine.config:
        raise ValueError(
            "checkpoint was taken under a different configuration; "
            "construct the engine with the same CGAConfig before restoring"
        )
    if state["instance"] != engine.instance.name:
        raise ValueError(
            f"checkpoint is for instance {state['instance']!r}, "
            f"engine has {engine.instance.name!r}"
        )
    pop = state["population"]
    _restore_population(engine, pop["s"], pop["ct"], pop["fitness"])
    engine.restore_state(
        {
            "rng_streams": state["rng_streams"],
            "progress": state.get("progress") if resume else None,
        }
    )


def _restore_v1(engine, state: dict) -> None:
    """Load a format-1 checkpoint (sequential engines, state-only)."""
    if state["config"] != repr(engine.config):
        raise ValueError(
            "checkpoint was taken under a different configuration; "
            "construct the engine with the same CGAConfig before restoring"
        )
    if state["instance"] != engine.instance.name:
        raise ValueError(
            f"checkpoint is for instance {state['instance']!r}, "
            f"engine has {engine.instance.name!r}"
        )
    rng = getattr(engine, "rng", None)
    if rng is None:
        raise ValueError(
            "format-1 checkpoints hold a single RNG stream and restore "
            "only into the sequential engines"
        )
    _restore_population(engine, state["s"], state["ct"], state["fitness"])
    rng.bit_generator.state = state["rng_state"]


# ---------------------------------------------------------------------------
# file I/O and resume
# ---------------------------------------------------------------------------
def save_checkpoint(engine, path: str | os.PathLike, stop: StopCondition | None = None) -> None:
    """Write :func:`capture_state` as JSON, atomically.

    The snapshot lands under a temporary name and is ``rename``\\ d into
    place, so an interrupt mid-write never corrupts the previous
    checkpoint.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(capture_state(engine, stop=stop)), encoding="utf-8")
    os.replace(tmp, path)


def load_state(path: str | os.PathLike) -> dict:
    """Read a checkpoint file back into a state dictionary."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def resume_engine(
    source: str | os.PathLike | dict,
    instance=None,
    obs=None,
    engine_kwargs: dict | None = None,
):
    """Rebuild an engine from a checkpoint; returns ``(engine, stop)``.

    ``source`` is a checkpoint path or an already-loaded state dict.
    The instance is loaded from the benchmark registry by the name
    recorded in the checkpoint unless one is passed explicitly (required
    for generated/file-based instances).  ``stop`` is the condition
    embedded at save time, or None if none was recorded.  Extra
    ``engine_kwargs`` override the snapshot's recorded engine options
    (e.g. a custom simulator cost model).
    """
    state = source if isinstance(source, dict) else load_state(source)
    version = state.get("format_version")
    if version not in _COMPATIBLE_VERSIONS:
        raise ValueError(f"unsupported checkpoint version: {version!r}")
    if version == 1:
        raise ValueError(
            "format-1 checkpoints do not record the engine/config needed to "
            "rebuild one; construct the engine yourself and call restore_state"
        )
    spec = resolve_engine(state["engine"])
    if not spec.checkpointable:
        supported = ", ".join(
            n for n, s in ENGINE_SPECS.items() if s.checkpointable
        )
        raise ValueError(
            f"cannot resume: engine {spec.name!r} does not support "
            f"checkpoint/restore (checkpointable engines: {supported}); "
            "start a fresh run instead"
        )
    config = config_from_dict(state["config"])
    if instance is None:
        from repro.problems import resolve_problem

        problem = resolve_problem(config.problem)
        name = state["instance"]
        try:
            instance = problem.load_instance(name)
        except (ValueError, OSError) as exc:
            raise ValueError(
                f"cannot rebuild checkpoint instance {name!r} for problem "
                f"{problem.name!r} ({exc}); pass the instance explicitly"
            ) from None
    elif getattr(instance, "name", None) != state["instance"]:
        raise ValueError(
            f"checkpoint is for instance {state['instance']!r}, "
            f"got {getattr(instance, 'name', None)!r}"
        )
    options = dict(state.get("engine_options") or {})
    options.update(engine_kwargs or {})
    engine = spec.create(instance, config, seed=0, obs=obs, **options)
    restore_state(engine, state)
    stop = _stop_from_dict(state["stop"]) if state.get("stop") else None
    return engine, stop


def run_with_checkpoints(
    engine,
    stop: StopCondition,
    path: str | os.PathLike,
    every_generations: int = 1,
):
    """Run ``engine`` to ``stop``, checkpointing at sweep boundaries.

    Every ``every_generations`` completed generations (for the threaded
    engine: lockstep rounds; for the simulator: block-sweep completions)
    the full state is atomically written to ``path``.  Returns the
    :class:`~repro.cga.engine.RunResult`; the file left behind is the
    last boundary snapshot, resumable with :func:`resume_engine`.
    """
    if every_generations < 1:
        raise ValueError(f"every_generations must be >= 1, got {every_generations}")
    spec = spec_for(engine)
    if not spec.checkpointable:
        raise ValueError(f"engine {spec.name!r} is not checkpointable")

    def saver(eng) -> None:
        save_checkpoint(eng, path, stop=stop)

    engine.arm_checkpoint(every_generations, saver)
    try:
        return engine.run(stop)
    finally:
        engine.arm_checkpoint(None, None)

"""Budget: the single stop-accounting object shared by every engine.

Each engine used to keep its own ``evaluations``/``generations``
integers next to hand-rolled ``stop.done(...)`` and
``max_evaluations`` over-shoot checks; :class:`Budget` owns those
counters and the two canonical checks:

* :meth:`exhausted` — the *sweep-boundary* check (any configured bound
  reached), evaluated between sweeps/generations exactly like the
  paper's "check the time after evolving the whole block";
* :meth:`cap_reached` — the cheap *mid-sweep* evaluation-cap guard the
  sequential engines use to stop on the exact evaluation, not the next
  boundary.

For the partitioned engines (threads/processes) the evaluation budget
is split into per-worker shares (:meth:`eval_share`) and every worker
runs :meth:`worker_exhausted` on its private counters after each block
sweep — workers cannot share a Python counter without defeating the
point of running in parallel, so the shared :class:`Budget` only ever
aggregates their final counts.

A budget can be *resumed*: constructing it with nonzero ``evaluations``
/ ``generations`` (from a checkpoint) makes every bound count the whole
logical run, not just the continuation.
"""

from __future__ import annotations

import math
import time

from repro.cga.config import StopCondition

__all__ = ["Budget"]


class Budget:
    """Mutable evaluation/generation/time accounting for one run."""

    __slots__ = ("stop", "evaluations", "generations", "_cap", "_t0")

    def __init__(
        self,
        stop: StopCondition,
        evaluations: int = 0,
        generations: int = 0,
    ):
        self.stop = stop
        self.evaluations = evaluations
        self.generations = generations
        self._cap = stop.max_evaluations
        self._t0 = time.perf_counter()

    def start(self) -> "Budget":
        """(Re)start the wall clock; returns self for chaining."""
        self._t0 = time.perf_counter()
        return self

    @property
    def elapsed(self) -> float:
        """Wall seconds since :meth:`start` (or construction)."""
        return time.perf_counter() - self._t0

    # -- accounting ------------------------------------------------------
    def spend(self, evaluations: int = 1) -> None:
        """Charge ``evaluations`` breeding steps to the budget."""
        self.evaluations += evaluations

    def next_generation(self) -> int:
        """Mark a completed generation; returns the new count."""
        self.generations += 1
        return self.generations

    # -- checks ----------------------------------------------------------
    def exhausted(
        self, best_fitness: float = math.inf, elapsed: float | None = None
    ) -> bool:
        """Sweep-boundary check: has any configured bound been reached?"""
        return self.stop.done(
            self.evaluations,
            self.generations,
            self.elapsed if elapsed is None else elapsed,
            best_fitness,
        )

    def cap_reached(self) -> bool:
        """Mid-sweep check: is the evaluation cap spent exactly?"""
        return self._cap is not None and self.evaluations >= self._cap

    # -- partitioned engines ---------------------------------------------
    def eval_share(self, n_workers: int) -> int | None:
        """Per-worker slice of the evaluation budget (None = unbounded).

        Mirrors the paper's split: each of the ``n_workers`` blocks gets
        an equal share, checked after full block sweeps.  A share
        already spent by a resumed run should be subtracted by the
        caller from the worker's starting counter, not from the share.
        """
        if self._cap is None:
            return None
        return max(1, self._cap // n_workers)

    def worker_exhausted(
        self, evaluations: int, generations: int, share: int | None
    ) -> bool:
        """Per-worker sweep-boundary check against this budget's bounds.

        ``evaluations``/``generations`` are the *worker's* private
        counters; wall time is read from the shared clock.
        """
        if self.stop.wall_time_s is not None and self.elapsed >= self.stop.wall_time_s:
            return True
        if share is not None and evaluations >= share:
            return True
        if (
            self.stop.max_generations is not None
            and generations >= self.stop.max_generations
        ):
            return True
        return False

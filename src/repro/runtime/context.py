"""Run setup, observability attachment and result finalization.

:func:`build_context` performs the setup stage every engine used to
duplicate: operator resolution, neighbor table, block partitioning and
sweep orders, RNG stream derivation from the seed tree, population
initialization with the problem's heuristic seeding (the paper's
Min-min for the independent workload, NEH for flow shop), and observer
resolution.  This module is the **single** engine-side seeding call
site — a new engine gets seeding, telemetry and heartbeat support by
building a context, not by copying twenty lines of constructor code.

The RNG topologies are exactly the ones the engines always used, so a
refactored engine replays bit-identical streams:

* single-stream (async/sync/vectorized): one generator drives both
  population init and evolution;
* ``workers=n`` (threads/processes): ``spawn_rngs(seed, n + 1)`` —
  stream 0 initializes the population, streams 1..n drive the workers;
* ``workers=n, jitter=True`` (simulated): ``spawn_rngs(seed, 1+2n)`` —
  init, then n genetic streams, then n cost-jitter streams, so the
  cost model never perturbs the genetics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cga.config import CGAConfig
from repro.cga.neighborhood import neighbor_table
from repro.cga.population import Population
from repro.cga.sweep import sweep_order
from repro.rng import make_rng, spawn_rngs

__all__ = [
    "RunContext",
    "build_context",
    "init_population",
    "boundary_crossings",
    "partition_ownership",
    "attach_runtime",
    "detach_runtime",
    "finish_run",
    "enable_seed_cache",
    "disable_seed_cache",
    "seed_cache_stats",
]

# ---------------------------------------------------------------------------
# optional seed-schedule cache (opt-in; used by the solve service workers)
# ---------------------------------------------------------------------------
#: process-global LRU over (problem, instance, seeding-config) -> schedules.
#: None (the default) means every init_population re-runs the heuristic,
#: exactly as before — the cache changes amortization, never trajectories,
#: because the seeding heuristics are deterministic in (instance, config).
_SEED_CACHE = None


def enable_seed_cache(capacity: int = 16):
    """Memoize :meth:`SchedulingProblem.seed_schedules` across runs.

    Long-lived processes that set up many populations on few instances
    (the ``repro serve`` engine workers) pay Min-min/NEH once per
    instance instead of once per job.  Cached schedules are returned as
    copies, so an engine mutating its population can never corrupt the
    cache.  Returns the cache (its ``stats()`` feed service metrics).
    """
    global _SEED_CACHE
    from repro.serve.cache import LRUCache  # deliberately tiny; no cycles

    if _SEED_CACHE is None or _SEED_CACHE.capacity != capacity:
        _SEED_CACHE = LRUCache(capacity)
    return _SEED_CACHE


def disable_seed_cache() -> None:
    """Drop the cache; seeding returns to compute-per-init."""
    global _SEED_CACHE
    _SEED_CACHE = None


def seed_cache_stats() -> dict | None:
    """Hit/miss counters of the active cache (None when disabled)."""
    return None if _SEED_CACHE is None else _SEED_CACHE.stats()


def _seed_schedules_for(pop: Population, instance, config: CGAConfig):
    """The problem's seed schedules, through the cache when enabled."""
    if _SEED_CACHE is None:
        return pop.problem.seed_schedules(instance, config)
    # the instance object itself is the key: both built-in instance
    # types define content-based __eq__ (full array comparison), so two
    # instances sharing a header name but differing in data can never
    # collide, and the cache's strong reference rules out id() reuse.
    # Header names are NOT content-unique and object ids recycle after
    # GC — neither is a safe key in a layer promising bit-exactness.
    key = (pop.problem.name, instance, config.seed_with_minmin)
    try:
        seeds = _SEED_CACHE.get_or_load(
            key, lambda: pop.problem.seed_schedules(instance, config)
        )
    except TypeError:  # unhashable custom instance type: compute uncached
        return pop.problem.seed_schedules(instance, config)
    if seeds is None:
        return None
    import copy

    return [copy.deepcopy(s) for s in seeds]


@dataclass
class RunContext:
    """Everything an engine's ``run`` loop needs, set up once.

    ``sweep`` is populated for single-stream engines, ``blocks`` /
    ``orders`` / ``crosses`` for partitioned ones; the RNG fields
    mirror the three stream topologies (see module docstring).
    """

    instance: object
    config: CGAConfig
    grid: object
    neighbors: np.ndarray
    ops: object
    pop: Population
    obs: object | None = None
    #: single-stream engines: the one generator (init + evolution)
    rng: np.random.Generator | None = None
    #: whole-grid sweep order (single-stream engines)
    sweep: np.ndarray | None = None
    #: partitioned engines: per-worker blocks, sweep orders and streams
    blocks: list[np.ndarray] = field(default_factory=list)
    orders: list[np.ndarray] = field(default_factory=list)
    init_rng: np.random.Generator | None = None
    worker_rngs: list[np.random.Generator] = field(default_factory=list)
    jitter_rngs: list[np.random.Generator] = field(default_factory=list)
    #: per-cell flag: does the neighborhood leave its own block?
    crosses: np.ndarray | None = None

    @property
    def boundary_fraction(self) -> float:
        """Fraction of cells whose neighborhood crosses a block edge."""
        if self.crosses is None or len(self.blocks) < 2:
            return 0.0
        return float(self.crosses.mean())


def init_population(
    instance,
    grid,
    config: CGAConfig,
    rng: np.random.Generator,
    fitness_fn: Callable,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> Population:
    """Create and initialize a population (§4.1 heuristic seeding).

    ``arrays`` supplies pre-allocated backing buffers (the process
    engine passes shared memory).  This is the only place any engine
    plants the problem's constructive-heuristic individuals (Min-min
    for the independent workload, NEH for flow shop).
    """
    if arrays is None:
        pop = Population(instance, grid)
    else:
        pop = Population(instance, grid, s=arrays[0], ct=arrays[1], fitness=arrays[2])
    seeds = _seed_schedules_for(pop, instance, config)
    pop.init_random(rng, seed_schedules=seeds, fitness_fn=fitness_fn)
    return pop


def boundary_crossings(
    neighbors: np.ndarray, blocks: Sequence[np.ndarray], size: int
) -> np.ndarray:
    """Per-cell boolean: does cell's neighborhood leave its block?"""
    block_id = np.empty(size, dtype=np.int64)
    for bid, block in enumerate(blocks):
        block_id[block] = bid
    return (block_id[neighbors] != block_id[:, None]).any(axis=1)


def partition_ownership(
    neighbors: np.ndarray, blocks: Sequence[np.ndarray], size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell block ownership and cross-block visibility.

    Returns ``(block_id, shared_read)``: ``block_id[c]`` is the block
    that owns cell ``c``; ``shared_read[c]`` is True iff some cell of a
    *different* block has ``c`` in its neighborhood — i.e. writes to
    ``c`` are observable across a block boundary and must be published
    with whatever protocol the engine uses (locks for the process
    engine, seqlock stamps for the shm engine).  Cells with
    ``shared_read`` False are private to their block and can be read
    and written with plain array ops.
    """
    block_id = np.empty(size, dtype=np.int64)
    for bid, block in enumerate(blocks):
        block_id[block] = bid
    shared_read = np.zeros(size, dtype=bool)
    foreign = block_id[neighbors] != block_id[:, None]
    shared_read[np.unique(neighbors[foreign])] = True
    return block_id, shared_read


def build_context(
    instance,
    config: CGAConfig | None = None,
    *,
    rng=None,
    seed=None,
    workers: int = 0,
    jitter: bool = False,
    pop_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    obs=None,
) -> RunContext:
    """Set up one engine run (see module docstring for the modes).

    ``workers=0`` builds a single-stream context from ``rng``;
    ``workers=n`` builds a partitioned context from the ``seed`` tree.
    The observer is resolved *after* population init so the initial
    evaluations stay out of the breeding-phase metrics.
    """
    from repro.problems import problem_of  # lazy: problems import operators

    config = config or CGAConfig()
    # the instance decides the workload: a default config on a flow-shop
    # instance must resolve flow-shop operators, not ETC ones (and a
    # config naming operators the instance's problem lacks fails with
    # the problem-aware validation error, not an AttributeError deep in
    # the ETC crossover).  Population makes the same inference.
    prob = problem_of(instance)
    if config.problem != prob.name:
        config = config.with_(problem=prob.name)
    grid = config.grid
    neighbors = neighbor_table(grid, config.neighborhood)
    ops = config.resolve()
    ctx = RunContext(
        instance=instance,
        config=config,
        grid=grid,
        neighbors=neighbors,
        ops=ops,
        pop=None,  # type: ignore[arg-type]  (assigned below)
    )
    if workers == 0:
        ctx.rng = make_rng(rng)
        ctx.sweep = sweep_order(np.arange(grid.size), config.sweep, block_id=0)
        init_rng = ctx.rng
    else:
        ctx.blocks = grid.partition_scheme(workers, config.partition)
        ctx.orders = [
            sweep_order(block, config.sweep, block_id=i)
            for i, block in enumerate(ctx.blocks)
        ]
        ctx.crosses = boundary_crossings(neighbors, ctx.blocks, grid.size)
        streams = spawn_rngs(seed, 1 + workers * (2 if jitter else 1))
        ctx.init_rng = streams[0]
        ctx.worker_rngs = streams[1 : 1 + workers]
        ctx.jitter_rngs = streams[1 + workers :]
        init_rng = ctx.init_rng
    ctx.pop = init_population(
        instance, grid, config, init_rng, ops.fitness, arrays=pop_arrays
    )
    from repro.obs.observer import resolve_observer  # cheap, no cycles

    ctx.obs = resolve_observer(config, obs)
    return ctx


# ---------------------------------------------------------------------------
# live runtime (heartbeat board + watchdog + publisher)
# ---------------------------------------------------------------------------
def attach_runtime(
    engine,
    n_workers: int,
    counts: Callable[[], tuple[int, int]],
    counters=None,
    done=None,
):
    """Attach the observer's live publisher/watchdog for one run.

    ``counts`` is a lock-free provider of ``(generation, evaluations)``
    progress; ``counters``/``done`` optionally supply shared-memory
    backing for the heartbeat board (the process engine's fork-shared
    RawArrays).  Returns the board, or None when the observer requests
    no runtime attachment (the run loop then stays untouched).
    """
    obs = engine.obs
    if obs is None or not obs.runtime_wanted:
        return None
    from repro.obs.watchdog import HeartbeatBoard

    if counters is None:
        board = HeartbeatBoard(n_workers)
    else:
        board = HeartbeatBoard(n_workers, counters=counters, done=done)

    def progress() -> dict:
        # lock-free snapshot, approximate by design (same rule as the
        # time-series sampler)
        _, best = engine.pop.best()
        generation, evaluations = counts()
        if generation is None:
            # partitioned engines: heartbeats advance once per block
            # sweep, so the slowest worker's beat count is the
            # generation (same definition as their RunResult)
            beats = board.read()
            generation = min(beats) if beats else 0
        return {
            "generation": generation,
            "evaluations": evaluations,
            "best": best,
            "heartbeats": board.read(),
            "workers_done": [bool(d) for d in board.done],
        }

    def fire_stall(event) -> None:
        if engine.hooks.on_stall is not None:
            engine.hooks.on_stall(engine, event)

    obs.start_runtime(board, progress, on_stall=fire_stall)
    return board


def detach_runtime(engine, board, mark_done: Sequence[int] = ()) -> None:
    """Stop the watchdog/publisher; ``mark_done`` exempts workers first."""
    if board is not None:
        for tid in mark_done:
            board.mark_done(tid)
    if engine.obs is not None:
        engine.obs.stop_runtime()


# ---------------------------------------------------------------------------
# result finalization
# ---------------------------------------------------------------------------
def finish_run(
    engine,
    result,
    engine_name: str,
    meta: dict | None = None,
    t_s: float | None = None,
):
    """Common run epilogue: final sample, bundle metadata, hooks.

    Samples the final time-series row (``t_s`` stamps virtual time for
    the simulator), records the result into the bundle metadata, fills
    engine/instance identity via ``setdefault`` (caller-provided meta,
    e.g. the CLI's, wins) and fires ``on_stop`` last — by then the
    telemetry bundle, if auto-finalizing, is on disk.
    """
    obs = engine.obs
    if obs is not None:
        def provider() -> dict:
            row = obs.engine_row(engine, result.generations, result.evaluations)
            if t_s is not None:
                row["virtual_t_s"] = t_s
            return row

        obs.maybe_sample(result.evaluations, provider, t_s=t_s, force=True)
        obs.record_result(result)
        obs.meta.setdefault("engine", engine_name)
        obs.meta.setdefault("instance", getattr(engine.instance, "name", None))
        obs.meta.setdefault("problem", getattr(engine.config, "problem", "independent"))
        for key, value in (meta or {}).items():
            obs.meta.setdefault(key, value)
        if obs.auto_finalize:
            obs.finalize()
    if engine.hooks.on_stop is not None:
        engine.hooks.on_stop(engine, result)
    return result

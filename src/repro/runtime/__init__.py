"""Unified engine runtime: lifecycle, registry, budget, checkpointing.

Every engine in the library — sequential, vectorized, threaded,
process-based and simulated — runs the same lifecycle:

1. **setup** — resolve the :class:`~repro.cga.config.CGAConfig` into
   concrete operators, build the neighbor table and sweep orders,
   initialize the population (Min-min seeding included) and derive the
   per-stream RNGs from the seed tree;
2. **accounting** — spend an evaluation/generation budget until the
   :class:`~repro.cga.config.StopCondition` triggers;
3. **observability** — attach the optional telemetry observer, live
   publisher and worker watchdog;
4. **finalization** — assemble a :class:`~repro.cga.engine.RunResult`,
   fire the lifecycle hooks and flush the telemetry bundle.

Historically each engine re-implemented all four stages by hand; this
package centralizes them so a cross-cutting feature (telemetry,
heartbeats, checkpointing) is wired once, not six times:

* :mod:`repro.runtime.budget` — :class:`Budget`, the single stop
  accounting object;
* :mod:`repro.runtime.context` — :class:`RunContext` setup, runtime
  attachment and result finalization helpers;
* :mod:`repro.runtime.registry` — the :class:`EngineSpec` registry,
  the single source of truth for engine names, aliases, constructors,
  parallelism class and checkpointability (consumed by the CLI, the
  experiment harnesses and the takeover study);
* :mod:`repro.runtime.checkpoint` — universal checkpoint/resume
  (format v2): generation/sweep-boundary snapshots with per-stream RNG
  state for every checkpointable engine.
"""

from repro.runtime.budget import Budget
from repro.runtime.context import (
    RunContext,
    attach_runtime,
    boundary_crossings,
    build_context,
    detach_runtime,
    finish_run,
    init_population,
)
from repro.runtime.registry import (
    ENGINE_SPECS,
    EngineSpec,
    create_engine,
    engine_aliases,
    engine_names,
    resolve_engine,
    sequential_engines,
    checkpointable_engines,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    capture_state,
    config_from_dict,
    config_to_dict,
    load_state,
    restore_state,
    resume_engine,
    run_with_checkpoints,
    save_checkpoint,
)

__all__ = [
    "Budget",
    "RunContext",
    "build_context",
    "init_population",
    "boundary_crossings",
    "attach_runtime",
    "detach_runtime",
    "finish_run",
    "EngineSpec",
    "ENGINE_SPECS",
    "engine_names",
    "engine_aliases",
    "resolve_engine",
    "create_engine",
    "sequential_engines",
    "checkpointable_engines",
    "CHECKPOINT_VERSION",
    "capture_state",
    "restore_state",
    "save_checkpoint",
    "load_state",
    "resume_engine",
    "run_with_checkpoints",
    "config_to_dict",
    "config_from_dict",
]

"""The engine registry: one source of truth for every dispatch site.

Each engine is described by an :class:`EngineSpec` (canonical name,
aliases, lazily-imported class, parallelism class, checkpointability,
seeding convention).  The CLI's ``--engine`` choices, the experiment
harnesses, ``SEQUENTIAL_ENGINES`` and the takeover study all resolve
engines *through this module*, so adding an engine is one
:func:`register_engine` call — not an if/elif ladder in six files.

Classes are imported lazily (``EngineSpec.load``), so importing the
registry costs nothing and no import cycle forms between
``repro.runtime`` and the engine packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any

__all__ = [
    "EngineSpec",
    "ENGINE_SPECS",
    "register_engine",
    "engine_names",
    "engine_aliases",
    "resolve_engine",
    "create_engine",
    "sequential_engines",
    "checkpointable_engines",
]


@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one engine implementation.

    Attributes
    ----------
    name:
        Canonical registry key (what ``RunResult`` bundles and
        checkpoints record).
    module / qualname:
        Lazy import location of the engine class.
    summary:
        One-line human description (CLI ``engines`` listing).
    aliases:
        Alternative CLI spellings resolving to this spec.
    parallelism:
        Execution substrate: ``"sequential"`` (single stream, includes
        the vectorized engine), ``"threads"``, ``"processes"`` or
        ``"simulated"``.
    checkpointable:
        Whether the engine supports ``capture_state``/``restore_state``
        (universal checkpoint format v2).  The process engine is not
        checkpointable: its workers own forked address spaces that
        cannot be quiesced into a portable snapshot.
    seed_param:
        Constructor keyword receiving the seed: ``"rng"`` for the
        single-stream engines (accepts a Generator, int or
        SeedSequence), ``"seed"`` for the multi-stream ones (spawns a
        seed tree).
    threaded:
        Whether ``config.n_threads`` maps to real workers (CLI keeps
        ``n_threads=1`` for the others).
    batch:
        Whether the engine breeds through the problem's batch-kernel
        suite (``repro.kernels.resolve_batch_ops``); such engines only
        run problems whose :class:`repro.problems.SchedulingProblem`
        publishes batch kernels.
    extra_kwargs:
        Constructor keywords beyond the common four that the engine
        accepts (used to filter pass-through options).
    """

    name: str
    module: str
    qualname: str
    summary: str = ""
    aliases: tuple[str, ...] = ()
    parallelism: str = "sequential"
    checkpointable: bool = False
    seed_param: str = "rng"
    threaded: bool = False
    batch: bool = False
    extra_kwargs: tuple[str, ...] = field(default=())

    def load(self) -> type:
        """Import and return the engine class."""
        return getattr(import_module(self.module), self.qualname)

    def create(self, instance, config=None, seed=None, obs=None, **kwargs) -> Any:
        """Construct the engine with the registry's seeding convention.

        ``kwargs`` not in :attr:`extra_kwargs` are rejected with a
        ``TypeError`` before the class is even imported, so callers get
        uniform errors regardless of the engine's signature.
        """
        unknown = sorted(set(kwargs) - set(self.extra_kwargs))
        if unknown:
            raise TypeError(
                f"engine {self.name!r} does not accept {', '.join(unknown)} "
                f"(supported extras: {', '.join(self.extra_kwargs) or 'none'})"
            )
        cls = self.load()
        kwargs[self.seed_param] = seed
        return cls(instance, config, obs=obs, **kwargs)


#: canonical name -> spec, in registration order (drives CLI listings).
ENGINE_SPECS: dict[str, EngineSpec] = {}
#: alias -> canonical name.
_ALIASES: dict[str, str] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add ``spec`` to the registry (its aliases must be unclaimed)."""
    for key in (spec.name, *spec.aliases):
        owner = _ALIASES.get(key) or (key if key in ENGINE_SPECS else None)
        if owner is not None and owner != spec.name:
            raise ValueError(f"engine name {key!r} already registered for {owner!r}")
    ENGINE_SPECS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def engine_names() -> list[str]:
    """Canonical engine names, in registration order."""
    return list(ENGINE_SPECS)


def engine_aliases() -> dict[str, str]:
    """alias -> canonical name mapping."""
    return dict(_ALIASES)


def resolve_engine(name: str) -> EngineSpec:
    """Spec for ``name`` (canonical or alias); raises with valid names."""
    canonical = _ALIASES.get(name, name)
    try:
        return ENGINE_SPECS[canonical]
    except KeyError:
        valid = ", ".join([*ENGINE_SPECS, *sorted(_ALIASES)])
        raise ValueError(f"unknown engine {name!r}; valid engines: {valid}") from None


def create_engine(name: str, instance, config=None, seed=None, obs=None, **kwargs):
    """Construct engine ``name`` (see :meth:`EngineSpec.create`)."""
    return resolve_engine(name).create(instance, config, seed=seed, obs=obs, **kwargs)


def sequential_engines() -> dict[str, type]:
    """name -> class for the sequential (single-stream) engines."""
    return {
        spec.name: spec.load()
        for spec in ENGINE_SPECS.values()
        if spec.parallelism == "sequential"
    }


def checkpointable_engines() -> tuple[str, ...]:
    """Canonical names of every checkpointable engine."""
    return tuple(s.name for s in ENGINE_SPECS.values() if s.checkpointable)


# ---------------------------------------------------------------------------
# The built-in engines.  ``pacga-*`` aliases spell out that the threaded,
# process and simulated engines are the paper's PA-CGA on its three
# substrates.
# ---------------------------------------------------------------------------
register_engine(
    EngineSpec(
        name="async",
        module="repro.cga.engine",
        qualname="AsyncCGA",
        summary="canonical asynchronous CGA (Algorithm 1, fixed line sweep)",
        checkpointable=True,
        seed_param="rng",
        extra_kwargs=("record_history", "on_generation"),
    )
)
register_engine(
    EngineSpec(
        name="sync",
        module="repro.cga.engine",
        qualname="SyncCGA",
        summary="synchronous CGA (auxiliary population, one swap per generation)",
        checkpointable=True,
        seed_param="rng",
        extra_kwargs=("record_history", "on_generation"),
    )
)
register_engine(
    EngineSpec(
        name="vectorized",
        module="repro.cga.vectorized",
        qualname="VectorizedSyncCGA",
        summary="synchronous CGA over whole-population NumPy batch kernels",
        checkpointable=True,
        seed_param="rng",
        batch=True,
        extra_kwargs=("record_history", "on_generation"),
    )
)
register_engine(
    EngineSpec(
        name="sim",
        module="repro.parallel.simengine",
        qualname="SimulatedPACGA",
        summary="PA-CGA under a deterministic virtual-time scheduler (Fig. 4)",
        aliases=("pacga-sim",),
        parallelism="simulated",
        checkpointable=True,
        seed_param="seed",
        threaded=True,
        extra_kwargs=("cost_model", "history_stride", "contention"),
    )
)
register_engine(
    EngineSpec(
        name="threads",
        module="repro.parallel.threads",
        qualname="ThreadedPACGA",
        summary="PA-CGA on OS threads with per-individual RW locks (§3.2)",
        aliases=("pacga-threads",),
        parallelism="threads",
        checkpointable=True,
        seed_param="seed",
        threaded=True,
        extra_kwargs=("hooks", "lockstep"),
    )
)
register_engine(
    EngineSpec(
        name="shm",
        module="repro.parallel.shm",
        qualname="ShmBlockPACGA",
        summary="block-parallel PA-CGA: forked workers, batch kernels, "
        "seqlock boundaries over POSIX shared memory",
        aliases=("pacga-shm",),
        parallelism="processes",
        checkpointable=True,
        seed_param="seed",
        threaded=True,
        batch=True,
        extra_kwargs=("hooks", "lockstep", "stall_kill_s"),
    )
)
register_engine(
    EngineSpec(
        name="processes",
        module="repro.parallel.processes",
        qualname="ProcessPACGA",
        summary="PA-CGA on forked workers over a shared-memory population",
        aliases=("pacga-processes",),
        parallelism="processes",
        checkpointable=False,
        seed_param="seed",
        threaded=True,
        extra_kwargs=("hooks",),
    )
)

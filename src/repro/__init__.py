"""repro — Parallel Asynchronous Cellular Genetic Algorithm for grid scheduling.

A from-scratch reproduction of Pinel, Dorronsoro & Bouvry,
"A New Parallel Asynchronous Cellular Genetic Algorithm for Scheduling
in Grids" (2010): the PA-CGA metaheuristic, the H2LL local search, the
ETC benchmark substrate, literature baselines, and harnesses that
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import load_benchmark, CGAConfig, StopCondition, SimulatedPACGA

    instance = load_benchmark("u_i_hihi.0")
    engine = SimulatedPACGA(instance, CGAConfig(n_threads=3), seed=42)
    result = engine.run(StopCondition(virtual_time=0.05))
    print(result.best_fitness)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.etc import (
    Consistency,
    ETCMatrix,
    instance_names,
    load_benchmark,
    make_instance,
)
from repro.scheduling import DeltaSchedule, Schedule, flowtime, makespan
from repro.heuristics import HEURISTICS, min_min
from repro.cga import AsyncCGA, CGAConfig, RunResult, StopCondition, SyncCGA, VectorizedSyncCGA
from repro.parallel import (
    CostModel,
    ProcessPACGA,
    ShmBlockPACGA,
    SimulatedPACGA,
    ThreadedPACGA,
    XEON_E5440,
)
from repro.baselines import CMALTH, StruggleGA
from repro.cga.hooks import EngineHooks
from repro.obs import Observer, ObsConfig

__version__ = "1.0.0"

__all__ = [
    "Consistency",
    "ETCMatrix",
    "instance_names",
    "load_benchmark",
    "make_instance",
    "Schedule",
    "DeltaSchedule",
    "makespan",
    "flowtime",
    "HEURISTICS",
    "min_min",
    "CGAConfig",
    "StopCondition",
    "AsyncCGA",
    "SyncCGA",
    "VectorizedSyncCGA",
    "RunResult",
    "ThreadedPACGA",
    "ProcessPACGA",
    "ShmBlockPACGA",
    "SimulatedPACGA",
    "CostModel",
    "XEON_E5440",
    "StruggleGA",
    "CMALTH",
    "EngineHooks",
    "Observer",
    "ObsConfig",
    "__version__",
]

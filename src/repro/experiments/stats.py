"""Statistics matching the paper's reporting.

The paper reports mean makespans over independent runs (Table 2) and
notched box plots (Fig. 5) where non-overlapping notches indicate a
median difference at ~95 % confidence; the notch half-width is the
standard ``1.57 · IQR / sqrt(n)`` (McGill, Tukey & Larsen 1978).  For
pairwise operator comparisons we add the Mann-Whitney U test, the
modern non-parametric check for the same question.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "SummaryStats",
    "summarize",
    "mann_whitney_u",
    "notches_overlap",
    "bootstrap_ci",
    "wilcoxon_signed_rank",
    "holm_bonferroni",
]


@dataclass(frozen=True)
class SummaryStats:
    """Summary of one sample of run outcomes (lower = better)."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    #: notched-box interval for the median (Fig. 5 semantics)
    notch_lo: float
    notch_hi: float
    #: bootstrap 95 % CI for the mean (Table 2 semantics)
    ci95_lo: float
    ci95_hi: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1


def summarize(values: Sequence[float], ci_resamples: int = 2000, seed: int = 0) -> SummaryStats:
    """Compute the full summary of a sample."""
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not np.all(np.isfinite(x)):
        raise ValueError("sample contains non-finite values")
    q1, med, q3 = np.percentile(x, [25, 50, 75])
    half_notch = 1.57 * (q3 - q1) / math.sqrt(x.size)
    lo, hi = bootstrap_ci(x, resamples=ci_resamples, seed=seed)
    return SummaryStats(
        n=int(x.size),
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        minimum=float(x.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(x.max()),
        notch_lo=float(med - half_notch),
        notch_hi=float(med + half_notch),
        ci95_lo=lo,
        ci95_hi=hi,
    )


def bootstrap_ci(
    values: np.ndarray, resamples: int = 2000, seed: int = 0, alpha: float = 0.05
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 1:
        return float(x[0]), float(x[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(resamples, x.size))
    means = x[idx].mean(axis=1)
    lo, hi = np.percentile(means, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return float(lo), float(hi)


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test; returns (statistic, p-value).

    Degenerate identical samples return p = 1.0 instead of raising, so
    harness loops never crash on a tie.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.all(a == a[0]) and np.all(b == b[0]) and a[0] == b[0]:
        return float(a.size * b.size / 2), 1.0
    stat, p = sps.mannwhitneyu(a, b, alternative="two-sided")
    return float(stat), float(p)


def wilcoxon_signed_rank(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Paired two-sided Wilcoxon signed-rank test; returns (stat, p).

    The right test for per-instance paired comparisons (e.g. the same
    12 instances under two operators).  All-zero differences return
    p = 1.0 instead of raising.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("paired samples must be non-empty and equal length")
    diffs = a - b
    if np.all(diffs == 0):
        return 0.0, 1.0
    stat, p = sps.wilcoxon(a, b, alternative="two-sided")
    return float(stat), float(p)


def holm_bonferroni(p_values: Sequence[float], alpha: float = 0.05) -> list[bool]:
    """Holm-Bonferroni step-down correction for a family of tests.

    Returns, per hypothesis, whether it is rejected (significant) at
    family-wise error rate ``alpha`` — the correction a 12-instance
    benchmark family needs before claiming per-instance significance.
    """
    p = np.asarray(list(p_values), dtype=np.float64)
    if p.size == 0:
        return []
    if np.any((p < 0) | (p > 1)):
        raise ValueError("p-values must be in [0, 1]")
    order = np.argsort(p)
    m = p.size
    rejected = np.zeros(m, dtype=bool)
    for rank, idx in enumerate(order):
        threshold = alpha / (m - rank)
        if p[idx] <= threshold:
            rejected[idx] = True
        else:
            break  # step-down stops at the first acceptance
    return rejected.tolist()


def notches_overlap(a: SummaryStats, b: SummaryStats) -> bool:
    """True when the notch intervals overlap.

    Non-overlap is the paper's "with 95 % confidence the true medians
    differ" criterion (§4.2, Fig. 5 discussion).
    """
    return not (a.notch_hi < b.notch_lo or b.notch_hi < a.notch_lo)

"""Takeover-time study (selection pressure; Alba & Dorronsoro [1]).

The classical way to characterize a cellular GA's selection pressure:
plant a single *best* individual in an otherwise uniform population,
disable variation (no crossover effect — parents are clones — no
mutation, no local search), and measure how the best genotype's copies
spread per generation under selection + replacement alone.  Small
neighborhoods yield slow takeover (low pressure, more exploration) —
the quantitative backbone of the paper's §3.1 narrative.

Implemented directly on the engine machinery so the measured curve is
the pressure of *this* implementation, not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.etc.model import ETCMatrix

__all__ = ["TakeoverResult", "takeover_experiment"]


@dataclass
class TakeoverResult:
    """Proportion of best-genotype copies per generation."""

    neighborhood: str
    update: str
    #: proportion curve, index = generation (0 = initial population)
    proportions: list[float] = field(default_factory=list)

    @property
    def takeover_generation(self) -> int | None:
        """First generation where the best genotype fills the population."""
        for g, p in enumerate(self.proportions):
            if p >= 1.0:
                return g
        return None

    def generations_to(self, fraction: float) -> int | None:
        """First generation reaching ``fraction`` occupancy."""
        for g, p in enumerate(self.proportions):
            if p >= fraction:
                return g
        return None


def _takeover_instance(ntasks: int = 8, nmachines: int = 2) -> ETCMatrix:
    """A tiny instance where genotype all-zeros is uniquely optimal."""
    etc = np.ones((ntasks, nmachines))
    etc[:, 1:] = 10.0  # machine 0 is best for every task
    return ETCMatrix(etc, name="takeover")


def takeover_experiment(
    neighborhood: str = "l5",
    update: str = "async",
    grid_rows: int = 16,
    grid_cols: int = 16,
    max_generations: int = 100,
    seed: int = 0,
) -> TakeoverResult:
    """Measure the takeover curve of one (neighborhood, update) setting.

    The population starts with every individual on the *worst* uniform
    genotype except one planted optimum; selection is the paper's
    best-2, replacement replace-if-better, variation disabled
    (``p_comb`` keeps parents cloned since both parents are identical
    or the offspring equals a parent — we simply set probabilities to
    zero).
    """
    from repro.runtime.registry import checkpointable_engines, resolve_engine

    try:
        spec = resolve_engine(update)
    except ValueError:
        spec = None
    if spec is None or not spec.checkpointable:
        raise ValueError(
            f"update must be one of {sorted(checkpointable_engines())}, got {update!r}"
        )
    inst = _takeover_instance()
    config = CGAConfig(
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        neighborhood=neighborhood,
        p_comb=0.0,  # offspring = clone of the best selected parent
        p_mut=0.0,
        local_search=None,
        ls_iterations=0,
        replacement="if-better",
        seed_with_minmin=False,
    )
    extras = {"record_history": False} if "record_history" in spec.extra_kwargs else {}
    engine = spec.create(inst, config, seed=seed, **extras)

    # uniform worst genotype everywhere, one optimum in the center
    worst = np.full(inst.ntasks, inst.nmachines - 1, dtype=np.int32)
    best = np.zeros(inst.ntasks, dtype=np.int32)
    engine.pop.s[:] = worst
    center = engine.grid.size // 2
    engine.pop.s[center] = best
    engine.pop.evaluate_all()

    best_fit = float(engine.pop.fitness[center])
    result = TakeoverResult(neighborhood=neighborhood, update=update)

    def proportion() -> float:
        return float((engine.pop.fitness == best_fit).mean())

    result.proportions.append(proportion())
    for _ in range(max_generations):
        engine.run(StopCondition(max_generations=1))
        result.proportions.append(proportion())
        if result.proportions[-1] >= 1.0:
            break
    return result

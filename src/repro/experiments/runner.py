"""Multi-run experiment execution.

The paper averages over 100 independent runs; :func:`run_many` executes
``n_runs`` seeded replicas of any engine factory and aggregates the
outcomes.  Seeds come from the experiment seed tree
(:func:`repro.rng.seed_for_run`), so run ``i`` of an experiment is the
same regardless of how many runs surround it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cga.engine import RunResult
from repro.experiments.stats import SummaryStats, summarize
from repro.rng import seed_for_run

__all__ = ["MultiRunResult", "run_many", "engine_factory", "resolve_instance"]

#: factory(seed_sequence) → RunResult; the seed is a SeedSequence so the
#: factory can spawn per-thread streams from it.
EngineFactory = Callable[[np.random.SeedSequence], RunResult]


def resolve_instance(instance, config=None):
    """Materialize a string instance spec through the problem registry.

    Non-string instances pass through untouched.  Strings resolve with
    the loader of ``config.problem`` (the independent workload when no
    config is given), so the experiment harnesses run any registered
    problem by pairing an instance spec with a config naming it.
    """
    if not isinstance(instance, str):
        return instance
    from repro.problems import resolve_problem

    name = getattr(config, "problem", "independent") if config is not None else "independent"
    return resolve_problem(name).load_instance(instance)


def engine_factory(engine, instance, config, stop, **engine_kwargs) -> EngineFactory:
    """A seeded :data:`EngineFactory` resolved through the engine registry.

    ``engine`` is any canonical name or alias from
    :mod:`repro.runtime.registry`; each invocation constructs a fresh
    engine seeded with the run's ``SeedSequence`` (the registry applies
    the engine's seeding convention) and runs it to ``stop``.
    """
    from repro.runtime.registry import create_engine

    def factory(seed: np.random.SeedSequence) -> RunResult:
        return create_engine(engine, instance, config, seed=seed, **engine_kwargs).run(
            stop
        )

    return factory


@dataclass
class MultiRunResult:
    """Aggregate of ``n_runs`` independent runs of one configuration."""

    label: str
    results: list[RunResult]

    @property
    def n_runs(self) -> int:
        """Number of completed runs."""
        return len(self.results)

    @property
    def best_fitnesses(self) -> np.ndarray:
        """Final best makespan of every run."""
        return np.array([r.best_fitness for r in self.results])

    @property
    def evaluations(self) -> np.ndarray:
        """Total evaluations of every run (Fig. 4's raw measure)."""
        return np.array([r.evaluations for r in self.results], dtype=np.int64)

    def fitness_stats(self) -> SummaryStats:
        """Summary of the final best makespans."""
        return summarize(self.best_fitnesses)

    def mean_evaluations(self) -> float:
        """Mean total evaluations (eq. 5 numerator)."""
        return float(self.evaluations.mean())

    def best_overall(self) -> RunResult:
        """The single best run."""
        return min(self.results, key=lambda r: r.best_fitness)


def run_many(
    factory: EngineFactory,
    n_runs: int,
    master_seed: int,
    label: str = "",
) -> MultiRunResult:
    """Run ``n_runs`` independent seeded replicas of ``factory``."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    results = [factory(seed_for_run(master_seed, i)) for i in range(n_runs)]
    return MultiRunResult(label=label, results=results)

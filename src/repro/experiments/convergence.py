"""Figure 6 — evolution of the mean population makespan per thread count.

The paper plots, for 1–4 threads on ``u_c_hihi.0``, the population-mean
makespan (averaged over independent runs) against generations within a
fixed wall-time budget, observing that one thread evolves fewer
generations and is worse at every generation, four threads start fast
but stall, and three threads end best.  The simulator's history rows
carry exactly (generation, evaluations, best, mean), so this harness
only has to align runs on a common generation grid and average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.etc.model import ETCMatrix
from repro.experiments.report import ascii_series
from repro.experiments.runner import resolve_instance
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.parallel.simengine import SimulatedPACGA
from repro.rng import DEFAULT_SEED, seed_for_run

__all__ = ["ConvergenceResult", "convergence_experiment"]


@dataclass
class ConvergenceResult:
    """Averaged convergence curves per thread count."""

    instance: str
    virtual_time: float
    n_runs: int
    #: common generation grid (x-axis)
    generations: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: n_threads → mean-makespan curve on ``generations``
    curves: dict[int, np.ndarray] = field(default_factory=dict)
    #: n_threads → mean number of generations completed in the budget
    generations_reached: dict[int, float] = field(default_factory=dict)
    #: n_threads → mean final population-mean makespan
    final_mean: dict[int, float] = field(default_factory=dict)

    def best_thread_count(self) -> int:
        """Thread count with the lowest final mean makespan."""
        return min(self.final_mean, key=self.final_mean.get)

    def sparkline(self, n_threads: int) -> str:
        """Terminal-friendly rendering of one curve."""
        return ascii_series(self.curves[n_threads].tolist())


def convergence_experiment(
    instance: str | ETCMatrix = "u_c_hihi.0",
    thread_counts: tuple[int, ...] = (1, 2, 3, 4),
    virtual_time: float = 0.05,
    n_runs: int = 5,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = XEON_E5440,
    grid_points: int = 64,
    base_config: CGAConfig | None = None,
    obs_out: str | None = None,
) -> ConvergenceResult:
    """Regenerate Figure 6.

    Every run records the population-mean makespan at each block
    completion; runs are linearly interpolated onto a ``grid_points``
    generation grid spanning the *shortest* trace (so every curve is an
    average of all its runs at every plotted point).

    With ``obs_out`` set, the first run of every thread count writes a
    telemetry bundle to ``{obs_out}/n{threads}``.
    """
    base = base_config or CGAConfig()
    inst = resolve_instance(instance, base)
    stop = StopCondition(virtual_time=virtual_time)
    result = ConvergenceResult(
        instance=inst.name, virtual_time=virtual_time, n_runs=n_runs
    )

    traces: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    max_common_gen = np.inf
    for n in thread_counts:
        config = base.with_(n_threads=n)
        runs = []
        gens_reached = []
        for r in range(n_runs):
            obs = None
            if obs_out is not None and r == 0:
                from pathlib import Path

                from repro.obs import Observer

                obs = Observer(
                    out=Path(obs_out) / f"n{n}",
                    sample_every_evals=None,
                    sample_every_s=virtual_time / 50,
                )
                obs.auto_finalize = True
            sim = SimulatedPACGA(
                inst,
                config,
                seed=seed_for_run(seed, r),
                cost_model=cost_model,
                obs=obs,
            )
            res = sim.run(stop)
            hist = np.array(res.history, dtype=np.float64)  # (rows, 4)
            runs.append((hist[:, 0], hist[:, 3]))  # generation, mean makespan
            gens_reached.append(hist[-1, 0])
        traces[n] = runs
        result.generations_reached[n] = float(np.mean(gens_reached))
        max_common_gen = min(max_common_gen, min(float(g[-1]) for g, _ in runs))

    grid = np.linspace(0.0, max_common_gen, grid_points)
    result.generations = grid
    for n in thread_counts:
        curves = np.vstack([np.interp(grid, g, m) for g, m in traces[n]])
        curve = curves.mean(axis=0)
        result.curves[n] = curve
        # final quality at the *full* budget (not the common grid end)
        finals = [float(m[-1]) for _, m in traces[n]]
        result.final_mean[n] = float(np.mean(finals))
    return result

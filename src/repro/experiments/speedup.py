"""Figure 4 — speedup of PA-CGA with threads and local-search depth.

The paper fixes the wall time and measures the *mean number of
evaluations* over independent runs, defining speedup as
``#evaluations(n) / #evaluations(1)`` (eq. 5) and plotting it as a
percentage.  This harness reruns that protocol on the virtual-time
simulator: same population, same operators, modeled Xeon E5440 timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.cga.config import CGAConfig, StopCondition
from repro.etc.model import ETCMatrix
from repro.experiments.report import ascii_table
from repro.experiments.runner import resolve_instance, run_many
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.parallel.simengine import SimulatedPACGA
from repro.rng import DEFAULT_SEED

__all__ = ["SpeedupResult", "speedup_experiment"]


@dataclass
class SpeedupResult:
    """Mean evaluation counts per (ls_iterations, n_threads) cell."""

    instance: str
    virtual_time: float
    n_runs: int
    mean_evaluations: dict[tuple[int, int], float] = field(default_factory=dict)
    boundary_fractions: dict[int, float] = field(default_factory=dict)

    def speedup_percent(self, ls_iterations: int, n_threads: int) -> float:
        """Fig. 4's y-axis: evaluations relative to 1 thread, in %."""
        base = self.mean_evaluations[(ls_iterations, 1)]
        return 100.0 * self.mean_evaluations[(ls_iterations, n_threads)] / base

    def series(self, ls_iterations: int) -> list[tuple[int, float]]:
        """One Fig. 4 line: [(n_threads, speedup %), ...]."""
        threads = sorted({n for (it, n) in self.mean_evaluations if it == ls_iterations})
        return [(n, self.speedup_percent(ls_iterations, n)) for n in threads]

    def table(self) -> str:
        """Render the figure as a table (rows: LS depth, cols: threads)."""
        iters = sorted({it for (it, _) in self.mean_evaluations})
        threads = sorted({n for (_, n) in self.mean_evaluations})
        headers = ["ls_iterations"] + [f"{n} thread{'s' if n > 1 else ''}" for n in threads]
        rows = []
        for it in iters:
            rows.append(
                [str(it)] + [f"{self.speedup_percent(it, n):.1f}%" for n in threads]
            )
        return ascii_table(headers, rows)


def speedup_experiment(
    instance: str | ETCMatrix = "u_c_hihi.0",
    thread_counts: tuple[int, ...] = (1, 2, 3, 4),
    ls_iterations: tuple[int, ...] = (0, 1, 5, 10),
    virtual_time: float = 0.05,
    n_runs: int = 5,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = XEON_E5440,
    base_config: CGAConfig | None = None,
    obs_out: str | None = None,
) -> SpeedupResult:
    """Regenerate Figure 4.

    ``virtual_time`` is modeled seconds (the paper used 90 real ones;
    only ratios matter, so the default keeps runs short).

    With ``obs_out`` set, the *first* run of every (ls depth, threads)
    cell writes a full telemetry bundle to
    ``{obs_out}/iter{it}_n{n}`` — virtual-time trace spans per logical
    thread plus the convergence time series.
    """
    base = base_config or CGAConfig()
    inst = resolve_instance(instance, base)
    result = SpeedupResult(
        instance=inst.name, virtual_time=virtual_time, n_runs=n_runs
    )
    stop = StopCondition(virtual_time=virtual_time)
    for it in ls_iterations:
        for n in thread_counts:
            config = base.with_(n_threads=n, ls_iterations=it)
            first_run = [True]

            def factory(ss, _config=config, _it=it, _n=n, _first=first_run):
                obs = None
                if obs_out is not None and _first[0]:
                    _first[0] = False
                    from pathlib import Path

                    from repro.obs import Observer

                    obs = Observer(
                        out=Path(obs_out) / f"iter{_it}_n{_n}",
                        sample_every_evals=None,
                        sample_every_s=virtual_time / 50,
                    )
                    obs.auto_finalize = True
                sim = SimulatedPACGA(
                    inst,
                    _config,
                    seed=ss,
                    cost_model=cost_model,
                    history_stride=10**9,
                    obs=obs,
                )
                result.boundary_fractions.setdefault(_n, sim.boundary_fraction)
                return sim.run(stop)

            runs = run_many(factory, n_runs, seed, label=f"iter={it},n={n}")
            result.mean_evaluations[(it, n)] = runs.mean_evaluations()
    return result

"""Table 2 — PA-CGA versus the literature baselines.

The paper compares mean makespans against the Struggle GA [19] and
cMA+LTH [20] (values quoted from those papers) and reports PA-CGA at
two budgets: 90 s, and 10 s ≈ 90 s ÷ 9 to compensate for the baseline
papers' slower AMD K6 machine (calibrated with the TSCP chess
benchmark).  Here every algorithm is rerun under this library:

* PA-CGA (3 threads, tpx/10) on the virtual-time simulator with budget
  ``V`` and ``V / machine_ratio``;
* Struggle GA and cMA+LTH with the evaluation budget PA-CGA consumed at
  ``V``, making the comparison evaluation-fair on identical instances
  (the budget substitution is documented in DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.cma_lth import CMALTH
from repro.baselines.struggle_ga import StruggleGA
from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import AsyncCGA
from repro.etc.registry import instance_names, load_benchmark
from repro.experiments.reference import PAPER_TABLE2
from repro.experiments.report import ascii_table, format_float
from repro.experiments.runner import run_many
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.parallel.simengine import SimulatedPACGA
from repro.rng import DEFAULT_SEED

__all__ = ["ComparisonResult", "comparison_experiment", "ALGORITHMS"]

#: Column order of Table 2.
ALGORITHMS = ("struggle-ga", "cma+lth", "pa-cga-10s", "pa-cga-90s")

#: The paper's measured cross-machine performance ratio (TSCP 1.7.3).
MACHINE_RATIO = 9.0


@dataclass
class ComparisonResult:
    """Mean makespans per (instance, algorithm), plus the paper's row."""

    n_runs: int
    virtual_time: float
    means: dict[tuple[str, str], float] = field(default_factory=dict)
    samples: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    def instances(self) -> list[str]:
        """Instance names present, in insertion order."""
        seen: list[str] = []
        for i, _ in self.means:
            if i not in seen:
                seen.append(i)
        return seen

    def winner(self, instance: str) -> str:
        """Algorithm with the lowest measured mean makespan."""
        return min(ALGORITHMS, key=lambda a: self.means[(instance, a)])

    def agrees_with_paper(self, instance: str) -> bool:
        """Does the measured winner match the paper's bold entry?"""
        return self.winner(instance) == PAPER_TABLE2[instance].best_algorithm()

    def table(self, include_paper: bool = True) -> str:
        """Render the measured Table 2 (winner marked with ``*``)."""
        headers = ["instance"] + list(ALGORITHMS) + ["winner"]
        if include_paper:
            headers += ["paper winner"]
        rows = []
        for inst in self.instances():
            win = self.winner(inst)
            cells = [inst]
            for alg in ALGORITHMS:
                mark = "*" if alg == win else ""
                cells.append(format_float(self.means[(inst, alg)]) + mark)
            cells.append(win)
            if include_paper:
                cells.append(PAPER_TABLE2[inst].best_algorithm())
            rows.append(cells)
        return ascii_table(headers, rows)


def comparison_experiment(
    instances: list[str] | None = None,
    virtual_time: float = 0.05,
    n_runs: int = 5,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = XEON_E5440,
    machine_ratio: float = MACHINE_RATIO,
    protocol: str = "evals",
) -> ComparisonResult:
    """Regenerate Table 2 at a reduced budget.

    Two budgeting protocols:

    * ``protocol="evals"`` (deterministic, used by the unit tests):
      PA-CGA runs on the virtual-time simulator for ``virtual_time``
      modeled seconds (the 10 s column gets ``virtual_time /
      machine_ratio``); both baselines then receive PA-CGA-90's mean
      evaluation count as their budget.
    * ``protocol="time"`` (the paper's protocol, used by the bench):
      every algorithm gets the *same wall-clock budget* on this
      machine — ``virtual_time`` real seconds for the 90 s column,
      divided by ``machine_ratio`` for the 10 s column.  PA-CGA runs as
      the canonical asynchronous CGA (PA-CGA with one thread — the only
      honest wall-clock variant under the GIL; see DESIGN.md §4.2).
    """
    if protocol not in ("evals", "time"):
        raise ValueError(f"protocol must be 'evals' or 'time', got {protocol!r}")
    names = instances if instances is not None else instance_names()
    result = ComparisonResult(n_runs=n_runs, virtual_time=virtual_time)
    pa_config = CGAConfig(n_threads=3, crossover="tpx", ls_iterations=10)
    pa_wall_config = pa_config.with_(n_threads=1)

    for name in names:
        inst = load_benchmark(name)

        if protocol == "evals":

            def pa_factory(ss, budget):
                sim = SimulatedPACGA(
                    inst, pa_config, seed=ss, cost_model=cost_model, history_stride=10**9
                )
                return sim.run(StopCondition(virtual_time=budget))

            pa_90 = run_many(
                lambda ss: pa_factory(ss, virtual_time), n_runs, seed, label=f"{name}:pa90"
            )
            pa_10 = run_many(
                lambda ss: pa_factory(ss, virtual_time / machine_ratio),
                n_runs,
                seed,
                label=f"{name}:pa10",
            )
            baseline_stop_90 = StopCondition(
                max_evaluations=max(1, int(pa_90.mean_evaluations()))
            )
        else:

            def pa_factory(ss, budget):
                eng = AsyncCGA(
                    inst, pa_wall_config, rng=np.random.default_rng(ss),
                    record_history=False,
                )
                return eng.run(StopCondition(wall_time_s=budget))

            pa_90 = run_many(
                lambda ss: pa_factory(ss, virtual_time), n_runs, seed, label=f"{name}:pa90"
            )
            pa_10 = run_many(
                lambda ss: pa_factory(ss, virtual_time / machine_ratio),
                n_runs,
                seed,
                label=f"{name}:pa10",
            )
            baseline_stop_90 = StopCondition(wall_time_s=virtual_time)

        struggle = run_many(
            lambda ss: StruggleGA(inst, rng=np.random.default_rng(ss)).run(
                baseline_stop_90
            ),
            n_runs,
            seed,
            label=f"{name}:struggle",
        )
        cma = run_many(
            lambda ss: CMALTH(inst, rng=np.random.default_rng(ss)).run(baseline_stop_90),
            n_runs,
            seed,
            label=f"{name}:cma",
        )

        for alg, runs in (
            ("struggle-ga", struggle),
            ("cma+lth", cma),
            ("pa-cga-10s", pa_10),
            ("pa-cga-90s", pa_90),
        ):
            result.samples[(name, alg)] = runs.best_fitnesses
            result.means[(name, alg)] = float(runs.best_fitnesses.mean())
    return result

"""Sensitivity of the Fig. 4 reproduction to the cost-model calibration.

The speedup figure is regenerated on a *fitted* cost model (DESIGN.md
§4.2), so an obvious objection is: do the paper's qualitative claims
survive only at the fitted constants?  This harness perturbs each
model parameter over a multiplicative range and re-evaluates the
closed-form speedup predictions, reporting for every perturbation
whether each Fig. 4 claim still holds:

* C1 — 0 LS iterations: monotone slowdown with threads;
* C2 — 10 LS iterations: positive speedup at 2 and 3 threads;
* C3 — 10 LS iterations: no meaningful gain from the 4th thread;
* C4 — deeper local search never hurts parallel efficiency.

Claims that hold across wide parameter ranges are properties of the
*mechanism*, not of the calibration — which is the reproduction's
actual argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cga.grid import Grid2D
from repro.cga.neighborhood import neighbor_table
from repro.experiments.report import ascii_table
from repro.parallel.costmodel import XEON_E5440, CostModel

__all__ = ["SensitivityResult", "sensitivity_analysis", "claims_hold"]

#: parameters perturbed by the analysis.
PARAMETERS = ("t_breed", "t_ls_iter", "t_lock", "t_boundary", "cache_alpha", "cache_beta")


def _boundary_fractions() -> dict[int, float]:
    grid = Grid2D(16, 16)
    tbl = neighbor_table(grid, "l5")
    return {n: grid.boundary_fraction(n, tbl) for n in (1, 2, 3, 4)}


def claims_hold(model: CostModel, boundary: dict[int, float] | None = None) -> dict[str, bool]:
    """Evaluate the four Fig. 4 claims on a model (closed form)."""
    bf = boundary or _boundary_fractions()

    def speedup(n: int, iters: float) -> float:
        return model.predicted_speedup(n, iters, bf[n])

    s0 = [speedup(n, 0) for n in (1, 2, 3, 4)]
    s10 = [speedup(n, 10) for n in (1, 2, 3, 4)]
    c1 = s0[1] < 1.0 and s0[2] < s0[1] and s0[3] < s0[2]
    c2 = s10[1] > 1.0 and s10[2] > s10[1]
    c3 = s10[3] <= s10[2] * 1.05
    c4 = all(
        speedup(n, hi) >= speedup(n, lo) - 1e-12
        for n in (2, 3, 4)
        for lo, hi in ((0, 1), (1, 5), (5, 10))
    )
    return {"C1_slowdown": c1, "C2_speedup": c2, "C3_plateau": c3, "C4_ls_helps": c4}


@dataclass
class SensitivityResult:
    """Claim survival per (parameter, multiplier)."""

    base_model: CostModel
    multipliers: tuple[float, ...]
    #: (parameter, multiplier) → {claim: bool}
    outcomes: dict[tuple[str, float], dict[str, bool]] = field(default_factory=dict)

    def survival_rate(self, claim: str) -> float:
        """Fraction of perturbations under which ``claim`` holds."""
        hits = [o[claim] for o in self.outcomes.values()]
        return sum(hits) / len(hits)

    def fragile_settings(self) -> list[tuple[str, float, str]]:
        """(parameter, multiplier, claim) triples where a claim breaks."""
        out = []
        for (param, mult), claims in sorted(self.outcomes.items()):
            for claim, ok in claims.items():
                if not ok:
                    out.append((param, mult, claim))
        return out

    def table(self) -> str:
        """Render claim survival per parameter sweep."""
        claims = list(next(iter(self.outcomes.values())))
        rows = []
        for param in PARAMETERS:
            for mult in self.multipliers:
                o = self.outcomes[(param, mult)]
                rows.append(
                    [f"{param} x{mult:g}"] + ["ok" if o[c] else "BREAKS" for c in claims]
                )
        return ascii_table(["perturbation"] + claims, rows)


def sensitivity_analysis(
    base: CostModel = XEON_E5440,
    multipliers: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
) -> SensitivityResult:
    """Perturb each parameter independently and re-check the claims."""
    if not multipliers:
        raise ValueError("need at least one multiplier")
    if any(m <= 0 for m in multipliers):
        raise ValueError("multipliers must be positive")
    boundary = _boundary_fractions()
    result = SensitivityResult(base_model=base, multipliers=tuple(multipliers))
    for param in PARAMETERS:
        for mult in multipliers:
            model = replace(base, **{param: getattr(base, param) * mult})
            result.outcomes[(param, mult)] = claims_hold(model, boundary)
    return result

"""Experiment harnesses reproducing the paper's evaluation (§4).

One module per paper artifact:

* :mod:`repro.experiments.speedup` — Figure 4 (evaluations vs threads);
* :mod:`repro.experiments.operators_study` — Figure 5 (opx/tpx × 5/10);
* :mod:`repro.experiments.comparison` — Table 2 (vs literature);
* :mod:`repro.experiments.convergence` — Figure 6 (makespan vs gens);

plus the shared machinery: multi-run execution (:mod:`runner`),
statistics matching the paper's notched box plots (:mod:`stats`),
paper-reported reference values (:mod:`reference`) and plain-text
reporting (:mod:`report`).
"""

from repro.experiments.stats import SummaryStats, summarize, mann_whitney_u, notches_overlap
from repro.experiments.runner import MultiRunResult, run_many
from repro.experiments.reference import PAPER_TABLE2, Table2Row
from repro.experiments.report import ascii_table, format_float, write_csv
from repro.experiments.speedup import SpeedupResult, speedup_experiment
from repro.experiments.operators_study import OperatorsResult, operators_experiment
from repro.experiments.comparison import ComparisonResult, comparison_experiment
from repro.experiments.convergence import ConvergenceResult, convergence_experiment
from repro.experiments.quality import QualityResult, QualityRow, quality_experiment
from repro.experiments.takeover import TakeoverResult, takeover_experiment
from repro.experiments.cache import cached_run_many, clear_cache, experiment_key
from repro.experiments.campaign import CampaignReport, run_campaign
from repro.experiments.dynamic_study import DynamicStudyResult, dynamic_study
from repro.experiments.sensitivity import SensitivityResult, sensitivity_analysis

__all__ = [
    "SummaryStats",
    "summarize",
    "mann_whitney_u",
    "notches_overlap",
    "MultiRunResult",
    "run_many",
    "PAPER_TABLE2",
    "Table2Row",
    "ascii_table",
    "format_float",
    "write_csv",
    "SpeedupResult",
    "speedup_experiment",
    "OperatorsResult",
    "operators_experiment",
    "ComparisonResult",
    "comparison_experiment",
    "ConvergenceResult",
    "convergence_experiment",
    "QualityResult",
    "QualityRow",
    "quality_experiment",
    "TakeoverResult",
    "takeover_experiment",
    "cached_run_many",
    "clear_cache",
    "experiment_key",
    "CampaignReport",
    "run_campaign",
    "DynamicStudyResult",
    "dynamic_study",
    "SensitivityResult",
    "sensitivity_analysis",
]

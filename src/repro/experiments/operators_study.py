"""Figure 5 — recombination operators × local-search iterations.

Four variants (opx/5, tpx/5, opx/10, tpx/10) on each benchmark
instance, 3 threads, independent runs; the paper draws notched box
plots and concludes that tpx/10 dominates opx/5 with statistical
significance on all instances.  This harness collects the same samples
and computes notch intervals plus Mann-Whitney p-values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.etc.registry import instance_names, load_benchmark
from repro.experiments.report import ascii_table, format_float
from repro.experiments.runner import run_many
from repro.experiments.stats import SummaryStats, mann_whitney_u, notches_overlap, summarize
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.parallel.simengine import SimulatedPACGA
from repro.rng import DEFAULT_SEED

__all__ = ["OperatorsResult", "operators_experiment", "DEFAULT_VARIANTS"]

#: The paper's four Fig. 5 variants: (crossover, ls_iterations).
DEFAULT_VARIANTS: tuple[tuple[str, int], ...] = (
    ("opx", 5),
    ("tpx", 5),
    ("opx", 10),
    ("tpx", 10),
)


def variant_label(crossover: str, ls_iterations: int) -> str:
    """Fig. 5's x-tick label, e.g. ``tpx/10``."""
    return f"{crossover}/{ls_iterations}"


@dataclass
class OperatorsResult:
    """Samples and summaries per (instance, variant)."""

    n_runs: int
    virtual_time: float
    samples: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    def stats(self, instance: str, variant: str) -> SummaryStats:
        """Summary of one box of the figure."""
        return summarize(self.samples[(instance, variant)])

    def variants(self) -> list[str]:
        """Variant labels present, in insertion order."""
        seen: list[str] = []
        for _, v in self.samples:
            if v not in seen:
                seen.append(v)
        return seen

    def instances(self) -> list[str]:
        """Instance names present, in insertion order."""
        seen: list[str] = []
        for i, _ in self.samples:
            if i not in seen:
                seen.append(i)
        return seen

    def best_variant(self, instance: str) -> str:
        """Variant with the lowest mean makespan on ``instance``."""
        return min(
            self.variants(), key=lambda v: float(self.samples[(instance, v)].mean())
        )

    def significantly_better(self, instance: str, a: str, b: str) -> bool:
        """True when variant ``a`` beats ``b`` with non-overlapping notches.

        The paper's criterion: medians differ at ~95 % confidence and
        ``a``'s median is lower.
        """
        sa, sb = self.stats(instance, a), self.stats(instance, b)
        return sa.median < sb.median and not notches_overlap(sa, sb)

    def p_value(self, instance: str, a: str, b: str) -> float:
        """Two-sided Mann-Whitney p-value between two variants."""
        return mann_whitney_u(
            self.samples[(instance, a)], self.samples[(instance, b)]
        )[1]

    def family_significance(self, a: str, b: str, alpha: float = 0.05) -> dict:
        """Family-level comparison of two variants across all instances.

        Returns the paired Wilcoxon p-value over per-instance means (the
        right test for "is a better than b on this benchmark family"),
        plus Holm-Bonferroni-corrected per-instance Mann-Whitney
        verdicts — the modern version of the paper's per-instance notch
        reading.
        """
        from repro.experiments.stats import holm_bonferroni, wilcoxon_signed_rank

        instances = self.instances()
        means_a = [float(self.samples[(i, a)].mean()) for i in instances]
        means_b = [float(self.samples[(i, b)].mean()) for i in instances]
        _, family_p = wilcoxon_signed_rank(means_a, means_b)
        per_instance_p = [self.p_value(i, a, b) for i in instances]
        rejected = holm_bonferroni(per_instance_p, alpha=alpha)
        return {
            "family_p": family_p,
            "a_better_on": sum(x < y for x, y in zip(means_a, means_b)),
            "instances": instances,
            "per_instance_p": per_instance_p,
            "significant": rejected,
        }

    def table(self) -> str:
        """Mean makespan per instance × variant (the figure as numbers)."""
        variants = self.variants()
        headers = ["instance"] + variants + ["best"]
        rows = []
        for inst in self.instances():
            means = {v: float(self.samples[(inst, v)].mean()) for v in variants}
            best = min(means, key=means.get)
            rows.append([inst] + [format_float(means[v]) for v in variants] + [best])
        return ascii_table(headers, rows)


def operators_experiment(
    instances: list[str] | None = None,
    variants: tuple[tuple[str, int], ...] = DEFAULT_VARIANTS,
    n_threads: int = 3,
    virtual_time: float = 0.05,
    n_runs: int = 10,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = XEON_E5440,
) -> OperatorsResult:
    """Regenerate Figure 5's samples.

    Defaults follow the paper (3 threads, all 12 instances, four
    variants) at reduced budget/run counts; pass ``n_runs=100`` and a
    larger ``virtual_time`` for paper scale.
    """
    names = instances if instances is not None else instance_names()
    result = OperatorsResult(n_runs=n_runs, virtual_time=virtual_time)
    stop = StopCondition(virtual_time=virtual_time)
    for name in names:
        inst = load_benchmark(name)
        for crossover, iters in variants:
            config = CGAConfig(
                n_threads=n_threads, crossover=crossover, ls_iterations=iters
            )

            def factory(ss, _config=config):
                sim = SimulatedPACGA(
                    inst, _config, seed=ss, cost_model=cost_model, history_stride=10**9
                )
                return sim.run(stop)

            label = variant_label(crossover, iters)
            runs = run_many(factory, n_runs, seed, label=f"{name}:{label}")
            result.samples[(name, label)] = runs.best_fitnesses
    return result

"""Solution quality against the LP lower bound.

The paper reports only relative comparisons between metaheuristics;
this harness adds an absolute yardstick: the R‖Cmax LP-relaxation
bound (``repro.scheduling.bounds``).  For each instance it reports the
Min-min seed, PA-CGA's result, the bound, and the optimality gap —
which is how a modern evaluation would contextualize Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cga.config import CGAConfig, StopCondition
from repro.etc.registry import instance_names, load_benchmark
from repro.experiments.report import ascii_table, format_float
from repro.experiments.runner import engine_factory
from repro.heuristics.minmin import min_min
from repro.rng import DEFAULT_SEED
from repro.scheduling.bounds import lp_lower_bound

__all__ = ["QualityRow", "QualityResult", "quality_experiment"]


@dataclass(frozen=True)
class QualityRow:
    """Per-instance quality summary."""

    instance: str
    lp_bound: float
    minmin: float
    pa_cga: float

    @property
    def minmin_gap(self) -> float:
        """Min-min's relative gap above the LP bound."""
        return self.minmin / self.lp_bound - 1.0

    @property
    def pa_cga_gap(self) -> float:
        """PA-CGA's relative gap above the LP bound."""
        return self.pa_cga / self.lp_bound - 1.0


@dataclass
class QualityResult:
    """All rows of the quality study."""

    budget_evaluations: int
    rows: list[QualityRow] = field(default_factory=list)

    def mean_gap(self) -> float:
        """Mean PA-CGA optimality gap across instances."""
        return sum(r.pa_cga_gap for r in self.rows) / len(self.rows)

    def table(self) -> str:
        """Render the study as the usual text table."""
        return ascii_table(
            ["instance", "LP bound", "min-min", "pa-cga", "min-min gap", "pa-cga gap"],
            [
                [
                    r.instance,
                    format_float(r.lp_bound),
                    format_float(r.minmin),
                    format_float(r.pa_cga),
                    f"{100 * r.minmin_gap:.2f}%",
                    f"{100 * r.pa_cga_gap:.2f}%",
                ]
                for r in self.rows
            ],
        )


def quality_experiment(
    instances: list[str] | None = None,
    max_evaluations: int = 10_000,
    seed: int = DEFAULT_SEED,
    config: CGAConfig | None = None,
) -> QualityResult:
    """Measure PA-CGA's optimality gap on the benchmark instances."""
    names = instances if instances is not None else instance_names()
    cfg = config or CGAConfig(n_threads=3, crossover="tpx", ls_iterations=10)
    result = QualityResult(budget_evaluations=max_evaluations)
    stop = StopCondition(max_evaluations=max_evaluations)
    for name in names:
        inst = load_benchmark(name)
        factory = engine_factory("sim", inst, cfg, stop, history_stride=10**9)
        run = factory(seed)
        result.rows.append(
            QualityRow(
                instance=name,
                lp_bound=lp_lower_bound(inst),
                minmin=min_min(inst).makespan(),
                pa_cga=run.best_fitness,
            )
        )
    return result

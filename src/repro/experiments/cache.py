"""On-disk caching for multi-run experiments.

Paper-scale sweeps (100 runs × 16 cells) are expensive; this cache
memoizes individual runs as JSON (via :mod:`repro.util.persist`) keyed
by a content hash of the experiment identity, so an interrupted or
re-parameterized campaign only recomputes what changed.

The cache key must capture *everything* that determines a run: callers
pass the configuration's repr, the instance name and the budget in
``key_parts``.  Runs are seeded from the same seed tree as
:func:`repro.experiments.runner.run_many`, so cached and fresh runs are
bit-identical.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.cga.engine import RunResult
from repro.experiments.runner import MultiRunResult
from repro.rng import seed_for_run
from repro.util.persist import load_result, save_result

__all__ = ["experiment_key", "cached_run_many", "clear_cache"]


def experiment_key(*key_parts: object) -> str:
    """Stable hex digest identifying an experiment configuration."""
    hasher = hashlib.sha256()
    for part in key_parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()[:24]


def cached_run_many(
    factory: Callable[[np.random.SeedSequence], RunResult],
    n_runs: int,
    master_seed: int,
    cache_dir: str | os.PathLike,
    key_parts: Sequence[object],
    label: str = "",
) -> MultiRunResult:
    """Like :func:`run_many`, but memoized per run under ``cache_dir``.

    Run ``i`` lives at ``cache_dir/<key>/run_<i>.json``; unreadable or
    corrupt entries are silently recomputed and rewritten.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    key = experiment_key(master_seed, *key_parts)
    bucket = Path(cache_dir) / key
    bucket.mkdir(parents=True, exist_ok=True)
    results: list[RunResult] = []
    for i in range(n_runs):
        path = bucket / f"run_{i}.json"
        result: RunResult | None = None
        if path.exists():
            try:
                result = load_result(path)
            except (ValueError, KeyError, OSError):
                result = None  # corrupt entry: recompute below
        if result is None:
            result = factory(seed_for_run(master_seed, i))
            save_result(result, path)
        results.append(result)
    return MultiRunResult(label=label or key, results=results)


def clear_cache(cache_dir: str | os.PathLike) -> int:
    """Delete every cached run under ``cache_dir``; returns #files removed."""
    root = Path(cache_dir)
    if not root.exists():
        return 0
    removed = 0
    for path in sorted(root.rglob("run_*.json")):
        path.unlink()
        removed += 1
    for bucket in sorted(root.glob("*/")):
        try:
            bucket.rmdir()
        except OSError:
            pass  # non-empty (foreign files): leave it
    return removed

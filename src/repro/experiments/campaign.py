"""One-call reproduction campaign.

``run_campaign`` regenerates every paper artifact (Table 1, Figures
4–6, Table 2, plus the quality study) into a directory of text/CSV
files — the library-level equivalent of ``pytest benchmarks/
--benchmark-only``, usable from scripts, notebooks or the CLI
(``python -m repro`` is wired to the individual harnesses; this module
chains them with one shared scale knob).

``scale = 1.0`` matches the bench defaults (minutes);
``scale ≈ 180`` with ``n_runs = 100`` approaches the paper's budgets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.cga.config import CGAConfig
from repro.experiments.comparison import comparison_experiment
from repro.experiments.convergence import convergence_experiment
from repro.experiments.operators_study import operators_experiment
from repro.experiments.quality import quality_experiment
from repro.experiments.report import write_csv
from repro.experiments.speedup import speedup_experiment
from repro.rng import DEFAULT_SEED

__all__ = ["CampaignReport", "run_campaign"]


@dataclass
class CampaignReport:
    """Artifacts produced by one campaign."""

    out_dir: Path
    artifacts: dict[str, Path] = field(default_factory=dict)
    summaries: dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        """Short human-readable index of what was produced."""
        lines = [f"campaign artifacts in {self.out_dir}:"]
        for name, path in sorted(self.artifacts.items()):
            lines.append(f"  {name:14s} {path.name}")
        return "\n".join(lines)


def _emit(report: CampaignReport, name: str, text: str) -> None:
    path = report.out_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    report.artifacts[name] = path
    report.summaries[name] = text


def run_campaign(
    out_dir: str | os.PathLike,
    scale: float = 1.0,
    n_runs: int = 2,
    seed: int = DEFAULT_SEED,
    telemetry: bool = False,
) -> CampaignReport:
    """Regenerate every paper artifact at ``scale`` × bench budgets.

    With ``telemetry=True``, the speedup and convergence harnesses also
    write per-cell observability bundles under ``{out_dir}/telemetry/``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    report = CampaignReport(out_dir=out)
    obs_root = out / "telemetry" if telemetry else None

    # Table 1 — the configuration itself
    _emit(report, "table1", CGAConfig(n_threads=3).describe())

    # Figure 4 — speedup
    fig4 = speedup_experiment(
        virtual_time=0.5 * scale,
        n_runs=n_runs,
        seed=seed,
        obs_out=str(obs_root / "fig4") if obs_root else None,
    )
    _emit(report, "fig4", fig4.table())
    write_csv(
        out / "fig4.csv",
        ["ls_iterations", "threads", "mean_evaluations", "speedup_percent"],
        [
            (it, n, fig4.mean_evaluations[(it, n)], fig4.speedup_percent(it, n))
            for (it, n) in sorted(fig4.mean_evaluations)
        ],
    )
    report.artifacts["fig4_csv"] = out / "fig4.csv"

    # Figure 5 — operators
    fig5 = operators_experiment(
        virtual_time=0.3 * scale, n_runs=max(3, n_runs), seed=seed
    )
    family = fig5.family_significance("tpx/10", "opx/5")
    _emit(
        report,
        "fig5",
        fig5.table()
        + f"\n\ntpx/10 vs opx/5: family Wilcoxon p={family['family_p']:.4g}, "
        f"better on {family['a_better_on']}/{len(family['instances'])} instances",
    )

    # Table 2 — comparison (deterministic evals protocol for campaigns)
    table2 = comparison_experiment(
        virtual_time=0.4 * scale, n_runs=n_runs, seed=seed, protocol="evals"
    )
    _emit(report, "table2", table2.table(include_paper=True))

    # Figure 6 — convergence
    fig6 = convergence_experiment(
        virtual_time=0.5 * scale,
        n_runs=max(3, n_runs),
        seed=seed,
        obs_out=str(obs_root / "fig6") if obs_root else None,
    )
    fig6_lines = [
        f"{n} thread(s): final={fig6.final_mean[n]:,.0f} "
        f"gens={fig6.generations_reached[n]:.0f}  {fig6.sparkline(n)}"
        for n in sorted(fig6.curves)
    ]
    _emit(report, "fig6", "\n".join(fig6_lines))

    # E2 — quality vs LP bound
    quality = quality_experiment(
        max_evaluations=int(8000 * scale), seed=seed
    )
    _emit(
        report,
        "quality",
        quality.table() + f"\n\nmean PA-CGA gap above LP: {100 * quality.mean_gap():.2f}%",
    )

    if obs_root is not None and obs_root.exists():
        report.artifacts["telemetry"] = obs_root
    _emit(report, "index", report.summary())
    return report

"""Values reported by the paper, for side-by-side comparison.

``PAPER_TABLE2`` transcribes Table 2 (mean makespan over independent
runs): Struggle GA [19], cMA+LTH [20], PA-CGA at 10 s and PA-CGA at
90 s.  ``FIG4_EXPECTATIONS`` and ``FIG6_EXPECTATIONS`` encode the
*qualitative* claims of the figures, which is what a reproduction on
regenerated instances and simulated hardware can check (DESIGN.md §4).

Note: the published ``u_s_hilo.0`` Struggle-GA value (983334.6) is an
order of magnitude above every other algorithm on that instance and is
almost certainly a typo for ~98333 in the original; we transcribe it
verbatim and flag it in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Table2Row", "PAPER_TABLE2", "FIG4_EXPECTATIONS", "FIG6_EXPECTATIONS"]


@dataclass(frozen=True)
class Table2Row:
    """One instance row of Table 2 (mean makespans; lower is better)."""

    instance: str
    struggle_ga: float
    cma_lth: float
    pa_cga_10s: float
    pa_cga_90s: float

    def best_algorithm(self) -> str:
        """Name of the winning column in the paper."""
        values = {
            "struggle-ga": self.struggle_ga,
            "cma+lth": self.cma_lth,
            "pa-cga-10s": self.pa_cga_10s,
            "pa-cga-90s": self.pa_cga_90s,
        }
        return min(values, key=values.get)


#: Table 2 of the paper, verbatim.
PAPER_TABLE2: dict[str, Table2Row] = {
    row.instance: row
    for row in [
        Table2Row("u_c_hihi.0", 7752349.4, 7554119.4, 7518600.7, 7437591.3),
        Table2Row("u_c_hilo.0", 155571.48, 154057.6, 154963.6, 154392.8),
        Table2Row("u_c_lohi.0", 250550.9, 247421.3, 245012.9, 242061.8),
        Table2Row("u_c_lolo.0", 5240.1, 5184.8, 5261.4, 5247.9),
        Table2Row("u_s_hihi.0", 4371324.5, 4337494.6, 4277497.3, 4229018.4),
        Table2Row("u_s_hilo.0", 983334.6, 97426.2, 97841.6, 97424.8),
        Table2Row("u_s_lohi.0", 127762.5, 128216.1, 126397.9, 125579.3),
        Table2Row("u_s_lolo.0", 3539.4, 3488.3, 3535.0, 3525.6),
        Table2Row("u_i_hihi.0", 3080025.8, 3054137.7, 3030250.8, 3011581.3),
        Table2Row("u_i_hilo.0", 76307.9, 75005.5, 74752.8, 74476.8),
        Table2Row("u_i_lohi.0", 107294.2, 106158.7, 104987.8, 104490.1),
        Table2Row("u_i_lolo.0", 2610.2, 2597.0, 2605.5, 2602.5),
    ]
}

#: Qualitative shape of Fig. 4 (speedup %, 1 thread = 100):
#: per LS depth, whether speedup at 2–4 threads is below/above 100 and
#: whether 3→4 threads plateaus.
FIG4_EXPECTATIONS = {
    0: {"direction": "slowdown", "note": "sync-dominated: evals decrease with threads"},
    1: {"direction": "flat", "note": "computation roughly balances synchronization"},
    5: {"direction": "speedup-plateau-3", "note": "positive speedup, no gain 3→4"},
    10: {"direction": "speedup-plateau-3", "note": "largest speedup, no gain 3→4"},
}

#: Qualitative shape of Fig. 6 (u_c_hihi.0, mean population makespan):
FIG6_EXPECTATIONS = {
    "one_thread_fewest_generations": True,
    "one_thread_worst_at_any_generation": True,
    "three_threads_best_final": True,
    "four_threads_fast_start_worse_finish": True,
}

"""Extension study — rescheduling policies in a dynamic grid (§2.1).

The paper evaluates on static batches, but its problem description is
dynamic.  This harness generates an ensemble of randomized grid
timelines (Poisson-ish batch arrivals, occasional machine churn) and
compares rescheduling policies end to end: the throwaway-cheap MCT,
Min-min, and a PA-CGA-based rescheduler, reporting makespan, mean
flowtime and migration counts over the ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.events import BatchArrival, MachineJoin, MachineLeave
from repro.dynamic.simulator import (
    DynamicGridSimulator,
    Rescheduler,
    greedy_rescheduler,
    pacga_rescheduler,
)
from repro.etc.model import ETCMatrix
from repro.experiments.report import ascii_table
from repro.heuristics.minmin import min_min
from repro.rng import DEFAULT_SEED, seed_for_run

__all__ = ["DynamicStudyResult", "dynamic_study", "random_timeline", "minmin_rescheduler"]


def minmin_rescheduler(instance: ETCMatrix, rng: np.random.Generator):
    """Min-min as a rescheduling policy."""
    return min_min(instance, rng)


def random_timeline(
    rng: np.random.Generator,
    n_batches: int = 5,
    tasks_per_batch: tuple[int, int] = (20, 60),
    horizon: float = 400.0,
    churn: bool = True,
    n_initial_machines: int = 6,
) -> tuple[list[float], list]:
    """One randomized grid day: (initial_speeds, events)."""
    speeds = rng.uniform(5.0, 40.0, size=n_initial_machines).tolist()
    times = np.sort(rng.uniform(0.0, horizon, size=n_batches))
    events: list = []
    for t in times:
        k = int(rng.integers(tasks_per_batch[0], tasks_per_batch[1] + 1))
        events.append(
            BatchArrival(time=float(t), workloads=tuple(rng.uniform(100, 3000, size=k)))
        )
    if churn:
        # one failure and one reinforcement somewhere mid-horizon
        t_leave = float(rng.uniform(0.3, 0.6) * horizon)
        victim = int(rng.integers(0, n_initial_machines))
        events.append(MachineLeave(time=t_leave, machine_id=victim))
        t_join = float(rng.uniform(0.6, 0.9) * horizon)
        events.append(MachineJoin(time=t_join, speed=float(rng.uniform(20.0, 60.0))))
    return speeds, events


@dataclass
class DynamicStudyResult:
    """Ensemble means per policy."""

    n_timelines: int
    makespan: dict[str, float] = field(default_factory=dict)
    flowtime: dict[str, float] = field(default_factory=dict)
    migrations: dict[str, float] = field(default_factory=dict)

    def best_policy(self) -> str:
        """Policy with the lowest mean makespan."""
        return min(self.makespan, key=self.makespan.get)

    def table(self) -> str:
        """Render the study."""
        rows = [
            [
                name,
                f"{self.makespan[name]:,.1f}",
                f"{self.flowtime[name]:,.1f}",
                f"{self.migrations[name]:.1f}",
            ]
            for name in self.makespan
        ]
        return ascii_table(
            ["policy", "mean makespan", "mean flowtime", "mean migrations"], rows
        )


def dynamic_study(
    policies: dict[str, Rescheduler] | None = None,
    n_timelines: int = 5,
    seed: int = DEFAULT_SEED,
    pacga_evals: int = 1500,
) -> DynamicStudyResult:
    """Compare rescheduling policies over a randomized timeline ensemble."""
    if n_timelines < 1:
        raise ValueError(f"n_timelines must be >= 1, got {n_timelines}")
    if policies is None:
        policies = {
            "mct": greedy_rescheduler,
            "min-min": minmin_rescheduler,
            "pa-cga": pacga_rescheduler(max_evaluations=pacga_evals),
        }
    result = DynamicStudyResult(n_timelines=n_timelines)
    acc = {name: {"mk": [], "ft": [], "mig": []} for name in policies}
    for i in range(n_timelines):
        timeline_rng = np.random.default_rng(seed_for_run(seed, i))
        speeds, events = random_timeline(timeline_rng)
        for name, policy in policies.items():
            sim = DynamicGridSimulator(list(speeds), policy, seed=seed_for_run(seed, i))
            stats = sim.run(list(events))
            acc[name]["mk"].append(stats.makespan)
            acc[name]["ft"].append(stats.mean_flowtime)
            acc[name]["mig"].append(stats.migrations)
    for name, data in acc.items():
        result.makespan[name] = float(np.mean(data["mk"]))
        result.flowtime[name] = float(np.mean(data["ft"]))
        result.migrations[name] = float(np.mean(data["mig"]))
    return result

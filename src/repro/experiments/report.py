"""Plain-text reporting: ASCII tables, CSV export, sparkline plots.

Benchmarks print the same rows the paper's tables report; these helpers
keep that formatting in one place.
"""

from __future__ import annotations

import csv
import math
import os
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_float", "ascii_table", "write_csv", "ascii_series", "ascii_chart"]


def format_float(value: float, sig: int = 6) -> str:
    """Format like the paper's tables: fixed for small, plain for large."""
    if value == 0:
        return "0"
    if not math.isfinite(value):
        return str(value)
    magnitude = math.floor(math.log10(abs(value)))
    decimals = max(0, sig - 1 - magnitude)
    return f"{value:.{min(decimals, 6)}f}"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path: str | os.PathLike, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Write rows to a CSV file (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))


def ascii_chart(
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multiple numeric series as one terminal line chart.

    Each series gets a marker character (``1``–``9`` then letters);
    overlapping points show the later series.  All series are plotted
    on a shared y-range; x positions are index-proportional (series may
    have different lengths).  Good enough to eyeball Fig. 6-style
    convergence plots in a terminal or a log file.
    """
    if not series:
        return "(no data)"
    if width < 8 or height < 3:
        raise ValueError("chart needs width >= 8 and height >= 3")
    cleaned = {k: [float(v) for v in vals] for k, vals in series.items() if len(vals)}
    if not cleaned:
        return "(no data)"
    lo = min(min(v) for v in cleaned.values())
    hi = max(max(v) for v in cleaned.values())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "123456789abcdefghijklmnopqrstuvwxyz"
    legend = []
    for si, (name, vals) in enumerate(cleaned.items()):
        mark = markers[si % len(markers)]
        legend.append(f"{mark}={name}")
        n = len(vals)
        for col in range(width):
            # index-proportional sampling of the series onto the canvas
            idx = min(n - 1, int(col * n / width))
            y = (vals[idx] - lo) / (hi - lo)
            row = height - 1 - min(height - 1, int(y * (height - 1) + 0.5))
            grid[row][col] = mark
    lines = []
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        prefix = f"{y_val:>12.4g} |" if r in (0, height // 2, height - 1) else " " * 12 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 13 + "-" * width)
    footer = "  ".join(legend)
    if x_label:
        footer += f"   (x: {x_label})"
    if y_label:
        lines.insert(0, f"{y_label}")
    lines.append(" " * 13 + footer)
    return "\n".join(lines)


_BARS = " ▁▂▃▄▅▆▇█"


def ascii_series(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline (for bench logs)."""
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        # downsample by averaging buckets
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BARS[1] * len(vals)
    scale = (len(_BARS) - 2) / (hi - lo)
    return "".join(_BARS[1 + int((v - lo) * scale)] for v in vals)

"""Cellular neighborhoods on the toroidal grid.

The paper uses **L5** (linear 5, a.k.a. Von Neumann): the four nearest
cells plus the evolved individual itself — "chosen to reduce concurrent
memory access" (§4.1).  The other classical shapes (C9/Moore, L9, C13)
are provided for the neighborhood ablation (DESIGN.md A4).

Neighbor tables are precomputed once per (grid, shape): a
``(pop, k)`` int array whose row ``i`` lists the neighborhood of cell
``i`` (self first), so the hot loop does zero modular arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.cga.grid import Grid2D

__all__ = ["NEIGHBORHOODS", "neighbor_offsets", "neighbor_table"]

#: name → list of (drow, dcol) offsets, self (0, 0) first.
NEIGHBORHOODS: dict[str, list[tuple[int, int]]] = {
    # Von Neumann / linear 5 — the paper's choice
    "l5": [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)],
    # Moore / compact 9
    "c9": [(0, 0), (-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)],
    # linear 9: distance-2 cross
    "l9": [(0, 0), (-2, 0), (-1, 0), (1, 0), (2, 0), (0, -2), (0, -1), (0, 1), (0, 2)],
    # compact 13: C9 plus the distance-2 cross tips
    "c13": [
        (0, 0),
        (-1, -1), (-1, 0), (-1, 1),
        (0, -1), (0, 1),
        (1, -1), (1, 0), (1, 1),
        (-2, 0), (2, 0), (0, -2), (0, 2),
    ],
}


def neighbor_offsets(name: str) -> list[tuple[int, int]]:
    """Offsets of a named neighborhood (self first)."""
    try:
        return list(NEIGHBORHOODS[name])
    except KeyError:
        raise KeyError(
            f"unknown neighborhood {name!r}; known: {', '.join(NEIGHBORHOODS)}"
        ) from None


def neighbor_table(grid: Grid2D, name: str = "l5") -> np.ndarray:
    """Precompute the ``(grid.size, k)`` toroidal neighbor-index table.

    Row ``i`` holds the population indices of cell ``i``'s neighborhood,
    with ``table[i, 0] == i`` (the individual itself — L5 includes it,
    paper §4.1).
    """
    offsets = neighbor_offsets(name)
    idx = np.arange(grid.size)
    rows, cols = grid.coords(idx)
    table = np.empty((grid.size, len(offsets)), dtype=np.int64)
    for j, (dr, dc) in enumerate(offsets):
        table[:, j] = grid.index(rows + dr, cols + dc)
    if not np.array_equal(table[:, 0], idx):
        raise AssertionError("neighborhood must list self first")
    return table

"""Flat-array population store.

The population is three parallel NumPy arrays (HPC guide: views, not
objects, in the hot loop):

* ``s``   — ``(pop, ntasks)`` int32 assignment vectors,
* ``ct``  — ``(pop, nmachines)`` float64 completion times,
* ``fitness`` — ``(pop,)`` float64 makespans.

This mirrors the paper's shared-memory layout: the parallel engines map
exactly these buffers into shared memory, and per-individual access is
what the read-write locks protect.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cga.grid import Grid2D

__all__ = ["Population"]


class Population:
    """Population of schedules on a cellular grid.

    Parameters
    ----------
    instance:
        The problem instance shared by every individual (any registered
        :mod:`repro.problems` workload; ``instance.ntasks`` is the
        genome length and ``instance.nmachines`` the CT-row width).
    grid:
        The toroidal layout (its ``size`` is the population size).
    s, ct, fitness:
        Optional pre-allocated backing arrays (the process engine passes
        shared-memory views); freshly allocated when omitted.
    """

    __slots__ = ("instance", "problem", "grid", "s", "ct", "fitness")

    def __init__(
        self,
        instance,
        grid: Grid2D,
        s: np.ndarray | None = None,
        ct: np.ndarray | None = None,
        fitness: np.ndarray | None = None,
    ):
        from repro.problems import problem_of  # lazy: problems import operators

        self.instance = instance
        self.problem = problem_of(instance)
        self.grid = grid
        n = grid.size
        self.s = self._adopt(s, (n, instance.ntasks), self.problem.genome_dtype)
        self.ct = self._adopt(ct, (n, instance.nmachines), np.float64)
        self.fitness = self._adopt(fitness, (n,), np.float64)

    @staticmethod
    def _adopt(arr: np.ndarray | None, shape: tuple[int, ...], dtype) -> np.ndarray:
        if arr is None:
            return np.zeros(shape, dtype=dtype)
        if arr.shape != shape or arr.dtype != dtype:
            raise ValueError(f"backing array must be {shape} {dtype}, got {arr.shape} {arr.dtype}")
        return arr

    @property
    def size(self) -> int:
        """Number of individuals."""
        return self.grid.size

    # ------------------------------------------------------------------
    # initialization (§4.1: random except one Min-min individual)
    # ------------------------------------------------------------------
    def init_random(
        self,
        rng: np.random.Generator,
        seed_schedules: list | None = None,
        seed_positions: list[int] | None = None,
        fitness_fn: Callable | None = None,
    ) -> None:
        """Randomize the population, optionally planting seed schedules.

        ``seed_schedules[i]`` is written at ``seed_positions[i]``
        (default: positions 0, 1, …).  The paper plants exactly one
        Min-min individual.  ``fitness_fn`` overrides the makespan
        fitness (see :mod:`repro.cga.fitness`).
        """
        inst = self.instance
        self.s[:] = self.problem.random_genomes(inst, rng, self.s.shape)
        if seed_schedules:
            positions = seed_positions or list(range(len(seed_schedules)))
            if len(positions) != len(seed_schedules):
                raise ValueError("seed_positions length must match seed_schedules")
            for pos, sched in zip(positions, seed_schedules):
                if sched.instance is not inst and sched.instance != inst:
                    raise ValueError("seed schedule belongs to a different instance")
                self.s[pos] = sched.s
        self.evaluate_all(fitness_fn)

    def evaluate_all(self, fitness_fn: Callable | None = None) -> None:
        """Recompute every CT row and fitness from the genomes.

        Delegates to the problem's batch evaluation kernel (for the
        independent workload one flattened scatter-add; for flow shop
        the population DP sweep), so initial evaluation is a single
        pass.  The default fitness (``None`` or the registry's
        makespan) stays on the vectorized ``ct.max`` path; custom
        fitness functions are applied per individual.
        """
        inst = self.instance
        n = self.size
        self.ct[:] = self.problem.population_ct(inst, self.s)
        from repro.cga.fitness import makespan_fitness

        if fitness_fn is None or fitness_fn is makespan_fitness:
            self.fitness[:] = self.ct.max(axis=1)
        else:
            for i in range(n):
                self.fitness[i] = fitness_fn(self.s[i], self.ct[i], inst)

    # ------------------------------------------------------------------
    # per-individual access
    # ------------------------------------------------------------------
    def read_individual(self, idx: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Snapshot (copy) of one individual: (s, ct, fitness).

        Copies because the caller may hold the data across other
        threads' writes; the engines wrap this in a read lock.
        """
        return self.s[idx].copy(), self.ct[idx].copy(), float(self.fitness[idx])

    def write_individual(self, idx: int, s: np.ndarray, ct: np.ndarray, fitness: float) -> None:
        """Overwrite one individual (engines wrap this in a write lock)."""
        self.s[idx] = s
        self.ct[idx] = ct
        self.fitness[idx] = fitness

    def as_schedule(self, idx: int):
        """Materialize individual ``idx`` as a standalone schedule."""
        return self.problem.as_schedule(self.instance, self.s[idx])

    def best(self) -> tuple[int, float]:
        """(index, fitness) of the current best individual."""
        i = int(self.fitness.argmin())
        return i, float(self.fitness[i])

    def mean_fitness(self) -> float:
        """Population mean makespan (Fig. 6's y-axis)."""
        return float(self.fitness.mean())

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self, idx: int | None = None, fitness_fn: Callable | None = None) -> None:
        """Validate assignment ranges, CT caches and cached fitness.

        ``fitness_fn`` must match the one the engine optimizes (default:
        makespan).
        """
        indices = range(self.size) if idx is None else [idx]
        for i in indices:
            self.problem.check_genome(self.instance, self.s[i])
            self.problem.check_ct(self.instance, self.s[i], self.ct[i])
            if fitness_fn is None:
                expected = float(self.ct[i].max())
            else:
                expected = float(fitness_fn(self.s[i], self.ct[i], self.instance))
            if not np.isclose(self.fitness[i], expected, rtol=1e-9, atol=1e-6):
                raise AssertionError(
                    f"individual {i}: cached fitness {self.fitness[i]} != expected {expected}"
                )

    def clone(self) -> "Population":
        """Deep copy (used by the synchronous engine's auxiliary pop)."""
        out = Population(self.instance, self.grid)
        out.s[:] = self.s
        out.ct[:] = self.ct
        out.fitness[:] = self.fitness
        return out

"""Data-parallel synchronous CGA: one generation = ~a dozen array ops.

:class:`VectorizedSyncCGA` breeds the *whole* population at once with
the batch kernels of :mod:`repro.kernels` instead of calling
``evolve_individual`` ``pop_size`` times per generation.  Semantically
it is :class:`repro.cga.engine.SyncCGA` — every child is bred against
the frozen parent generation and the population swaps once per
generation — but all randomness is drawn in per-generation blocks, so
a run is statistically (not bitwise) equivalent to the scalar engine
with the same seed.

Because a generation is a single batch, stop conditions are checked at
generation granularity: an evaluation budget that is not a multiple of
the population size is overshot by at most ``pop_size - 1``
evaluations (the scalar engines stop mid-sweep instead).

Not every scalar operator has a batch kernel; configurations using one
that does not (e.g. ``rank`` selection or the ``random-move`` local
search) raise ``ValueError`` at construction, never silently fall back
to a slow path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import _EngineBase, RunResult
from repro.obs.dynamics import record_batch_attribution
from repro.runtime.budget import Budget
from repro.kernels import resolve_batch_ops

__all__ = ["VectorizedSyncCGA"]


class VectorizedSyncCGA(_EngineBase):
    """Synchronous CGA over whole-population NumPy kernels.

    Accepts the same construction arguments as the scalar engines; the
    operator *names* in the config are resolved against the batch
    registries in :mod:`repro.kernels` (raising ``ValueError`` for
    operators without a batch kernel).
    """

    engine_name = "vectorized"

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        rng: np.random.Generator | int | None = None,
        record_history: bool = True,
        on_generation=None,
        obs=None,
    ):
        super().__init__(instance, config, rng, record_history, on_generation, obs)
        bops = resolve_batch_ops(self.config, problem=self.pop.problem)
        self._select = bops.select
        self._fitness = bops.fitness
        self._mutate = bops.mutate
        self._local_search = bops.local_search
        self._accept = bops.accept
        self._cross_mask = bops.cross_mask
        self._recombine = bops.recombine

    def run(self, stop: StopCondition) -> RunResult:
        """Evolve whole generations until ``stop`` triggers."""
        pop, cfg, rng = self.pop, self.config, self.rng
        inst = self.instance
        P = pop.size
        nt = inst.ntasks
        rows = np.arange(P)
        neighbors = self.neighbors
        resume = self._consume_resume()
        history: list[tuple[int, int, float, float]] = (
            resume["history"] if resume else []
        )
        budget = self._budget = Budget(
            stop,
            evaluations=resume["evaluations"] if resume else 0,
            generations=resume["generations"] if resume else 0,
        )
        self._history = history
        # phase-timing instrumentation: rec is None on the uninstrumented
        # path, so the guards below compile to a cheap identity check per
        # *generation* (a batch of pop_size breeding steps)
        obs = self.obs
        rec = obs.recorder("main") if obs is not None else None
        tracer = obs.thread_tracer(0, "vectorized") if obs is not None else None
        perf = time.perf_counter
        budget.start()
        if resume is None:
            self._snapshot(0, 0, history)
        while True:
            _, best = pop.best()
            if budget.exhausted(best):
                break
            gen_start = perf()
            # -- selection: gather every neighborhood's fitness at once ----
            fit_nb = pop.fitness[neighbors]  # (P, k)
            a, b = self._select(fit_nb, rng)
            p1 = neighbors[rows, a]
            p2 = neighbors[rows, b]
            if rec is not None:
                t = perf()
                rec.observe("phase.select_us", (t - gen_start) * 1e6)
            # -- recombination: inheritance mask + problem CT derivation ----
            child_s = pop.s[p1]  # fancy indexing copies the parent rows
            child_ct = pop.ct[p1]
            comb = rng.random(P) < cfg.p_comb
            mask = self._cross_mask(P, nt, rng, comb)
            if comb.any():
                child_s = self._recombine(inst, child_s, child_ct, pop.s[p2], mask)
            if rec is not None:
                rec.observe("phase.crossover_us", (perf() - t) * 1e6)
                t = perf()
            # -- mutation and local search, in place on the children -------
            mut = rng.random(P) < cfg.p_mut
            self._mutate(child_s, child_ct, inst, rng, mut)
            if rec is not None:
                rec.observe("phase.mutate_us", (perf() - t) * 1e6)
                t = perf()
            ls_rows = np.empty(0, dtype=np.int64)
            if self._local_search is not None and cfg.ls_iterations > 0:
                ls_rows = np.flatnonzero(rng.random(P) < cfg.p_ls)
                if ls_rows.size == P:
                    moves = self._local_search(
                        child_s, child_ct, inst, rng, cfg.ls_iterations, cfg.ls_candidates
                    )
                elif ls_rows.size:
                    sub_s = child_s[ls_rows]
                    sub_ct = child_ct[ls_rows]
                    moves = self._local_search(
                        sub_s, sub_ct, inst, rng, cfg.ls_iterations, cfg.ls_candidates
                    )
                    child_s[ls_rows] = sub_s
                    child_ct[ls_rows] = sub_ct
                else:
                    moves = 0
                if rec is not None:
                    rec.observe("phase.ls_us", (perf() - t) * 1e6)
                    rec.inc("ls.calls", int(ls_rows.size))
                    rec.inc("ls.moves_accepted", int(moves))
                    rec.inc("ls.moves_tried", int(ls_rows.size) * cfg.ls_iterations)
                    t = perf()
            # -- evaluation + synchronous elitist replacement --------------
            child_fit = self._fitness(child_s, child_ct, inst)
            if rec is not None:
                rec.observe("phase.fitness_us", (perf() - t) * 1e6)
            accept = self._accept(child_fit, pop.fitness)
            if rec is not None:
                # before the copyto writes below, while pop.fitness still
                # holds the incumbents the replacement rule compared
                ls_mask = np.zeros(P, dtype=bool)
                ls_mask[ls_rows] = True
                record_batch_attribution(
                    rec.counters,
                    accept,
                    child_fit,
                    pop.fitness,
                    crossover=comb,
                    mutation=mut,
                    ls=ls_mask if ls_rows.size else None,
                )
            np.copyto(pop.s, child_s, where=accept[:, None])
            np.copyto(pop.ct, child_ct, where=accept[:, None])
            np.copyto(pop.fitness, child_fit, where=accept)
            budget.spend(P)
            generation = budget.next_generation()
            if rec is not None:
                rec.inc("breeding.evaluations", P)
                rec.inc("breeding.steps", P)
                rec.inc("breeding.replacements", int(accept.sum()))
                rec.inc("sweeps")
                if tracer is not None:
                    tracer.complete(
                        "generation",
                        gen_start - obs.epoch,
                        perf() - gen_start,
                        {"generation": generation},
                    )
            self._snapshot(generation, budget.evaluations, history)
            self._maybe_checkpoint(generation)
        return self._result(
            budget.evaluations, budget.generations, budget.elapsed, history
        )

    def resync_drift(self) -> float:
        """Recompute every CT row from S; return the largest drift.

        The population-wide analogue of :meth:`Schedule.resync` — the
        incremental-update invariant check used by the tests.
        """
        fresh = self.pop.problem.population_ct(self.instance, self.pop.s)
        drift = float(np.abs(fresh - self.pop.ct).max(initial=0.0))
        self.pop.ct[:] = fresh
        self.pop.fitness[:] = self._fitness(self.pop.s, self.pop.ct, self.instance)
        return drift

"""Mutation operators, in-place on (S, CT).

The paper's mutation "moves one randomly chosen task to a randomly
chosen machine" with probability 1.0 (Table 1).  ``swap`` and
``rebalance`` are classical alternatives provided for ablations; all
keep CT exact with O(1) updates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["move_mutation", "swap_mutation", "rebalance_mutation", "MUTATIONS"]

Mutation = Callable[[np.ndarray, np.ndarray, ETCMatrix, np.random.Generator], None]


def move_mutation(
    s: np.ndarray, ct: np.ndarray, instance: ETCMatrix, rng: np.random.Generator
) -> None:
    """Move one random task to one random machine (the paper's operator)."""
    t = int(rng.integers(0, instance.ntasks))
    m = int(rng.integers(0, instance.nmachines))
    old = int(s[t])
    if old == m:
        return
    etc_t = instance.etc_t
    ct[old] -= etc_t[old, t]
    ct[m] += etc_t[m, t]
    s[t] = m


def swap_mutation(
    s: np.ndarray, ct: np.ndarray, instance: ETCMatrix, rng: np.random.Generator
) -> None:
    """Exchange the machines of two random tasks."""
    if instance.ntasks < 2:
        return
    ta, tb = rng.choice(instance.ntasks, size=2, replace=False)
    ma, mb = int(s[ta]), int(s[tb])
    if ma == mb:
        return
    etc_t = instance.etc_t
    ct[ma] += etc_t[ma, tb] - etc_t[ma, ta]
    ct[mb] += etc_t[mb, ta] - etc_t[mb, tb]
    s[ta], s[tb] = mb, ma


def rebalance_mutation(
    s: np.ndarray, ct: np.ndarray, instance: ETCMatrix, rng: np.random.Generator
) -> None:
    """Move a random task *off the most loaded machine* to a random one.

    A makespan-aware mutation halfway between ``move`` and H2LL,
    included for the operator ablation.
    """
    worst = int(ct.argmax())
    tasks = np.flatnonzero(s == worst)
    if tasks.size == 0:
        return
    t = int(tasks[rng.integers(0, tasks.size)])
    m = int(rng.integers(0, instance.nmachines))
    if m == worst:
        return
    etc_t = instance.etc_t
    ct[worst] -= etc_t[worst, t]
    ct[m] += etc_t[m, t]
    s[t] = m


#: registry used by :class:`repro.cga.config.CGAConfig`.
MUTATIONS: dict[str, Mutation] = {
    "move": move_mutation,
    "swap": swap_mutation,
    "rebalance": rebalance_mutation,
}

"""Checkpoint / resume — compatibility façade over ``repro.runtime``.

Historically this module snapshotted the sequential engines only
(format v1: population arrays + one RNG state, config stored as a
``repr`` string).  The implementation now lives in
:mod:`repro.runtime.checkpoint`, which writes format v2 (real config
dict, per-stream RNG states, resumable progress) for *every*
checkpointable engine; v1 files still load.

This façade keeps the original call signatures and the original
*semantics*: :func:`restore_engine` / :func:`load_checkpoint` restore
the stochastic state (population + RNG streams) but leave the
evaluation/generation counters at zero, so an engine restored here and
run for ``k`` more generations behaves exactly like the historical API.
Use :func:`repro.runtime.checkpoint.resume_engine` for full resume
(continued counters, identical cumulative ``RunResult``).
"""

from __future__ import annotations

import os

from repro.runtime.checkpoint import (
    capture_state,
    load_state,
    restore_state,
)
from repro.runtime.checkpoint import (
    save_checkpoint as _save_checkpoint,
)

__all__ = ["engine_state", "restore_engine", "save_checkpoint", "load_checkpoint"]


def engine_state(engine) -> dict:
    """Capture an engine's full stochastic state (checkpoint format v2)."""
    return capture_state(engine)


def restore_engine(engine, state: dict) -> None:
    """Restore a state captured by :func:`engine_state` in place.

    The engine must have been constructed with the same instance and
    configuration; both are verified before anything is touched.
    Progress counters are *not* resumed (historical semantics — the next
    ``run`` counts from zero).
    """
    restore_state(engine, state, resume=False)


def save_checkpoint(engine, path: str | os.PathLike) -> None:
    """Write the engine state as JSON (creating parent directories)."""
    _save_checkpoint(engine, path)


def load_checkpoint(engine, path: str | os.PathLike) -> None:
    """Restore an engine from a file written by :func:`save_checkpoint`."""
    restore_engine(engine, load_state(path))

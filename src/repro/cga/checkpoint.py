"""Checkpoint / resume for the sequential engines.

Paper-scale runs (90 s × 100 runs × 16 cells) are long; checkpointing
lets a campaign survive interruption *bit-exactly*: the population
arrays and the engine's RNG state are captured, and a resumed run
continues the identical stochastic trajectory (verified by the test
suite against an uninterrupted run).

Scope: :class:`AsyncCGA` / :class:`SyncCGA` (and any engine exposing
``pop`` and a single ``rng``).  The parallel engines interleave many
streams mid-sweep; checkpoint them at run() boundaries by persisting
their ``RunResult`` instead (``repro.util.persist``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

__all__ = ["engine_state", "restore_engine", "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def engine_state(engine) -> dict:
    """Capture a sequential engine's full stochastic state."""
    pop = engine.pop
    return {
        "format_version": _FORMAT_VERSION,
        "config": repr(engine.config),
        "instance": engine.instance.name,
        "s": pop.s.tolist(),
        "ct": pop.ct.tolist(),
        "fitness": pop.fitness.tolist(),
        "rng_state": engine.rng.bit_generator.state,
    }


def restore_engine(engine, state: dict) -> None:
    """Restore a state captured by :func:`engine_state` in place.

    The engine must have been constructed with the same instance and
    configuration; both are verified before anything is touched.
    """
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version: {version!r}")
    if state["config"] != repr(engine.config):
        raise ValueError(
            "checkpoint was taken under a different configuration; "
            "construct the engine with the same CGAConfig before restoring"
        )
    if state["instance"] != engine.instance.name:
        raise ValueError(
            f"checkpoint is for instance {state['instance']!r}, "
            f"engine has {engine.instance.name!r}"
        )
    pop = engine.pop
    s = np.asarray(state["s"], dtype=pop.s.dtype)
    ct = np.asarray(state["ct"], dtype=pop.ct.dtype)
    fitness = np.asarray(state["fitness"], dtype=pop.fitness.dtype)
    if s.shape != pop.s.shape:
        raise ValueError(f"population shape mismatch: {s.shape} vs {pop.s.shape}")
    pop.s[:] = s
    pop.ct[:] = ct
    pop.fitness[:] = fitness
    engine.rng.bit_generator.state = state["rng_state"]


def save_checkpoint(engine, path: str | os.PathLike) -> None:
    """Write the engine state as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(engine_state(engine)), encoding="utf-8")


def load_checkpoint(engine, path: str | os.PathLike) -> None:
    """Restore an engine from a file written by :func:`save_checkpoint`."""
    state = json.loads(Path(path).read_text(encoding="utf-8"))
    restore_engine(engine, state)

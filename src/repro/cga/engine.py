"""Sequential cellular GA engines and the shared breeding step.

``evolve_individual`` implements lines 3–9 of Algorithm 3 — it is the
single code path reused by *every* engine in the library (sequential,
threaded, process-based, simulated), so the parallel variants differ
only in scheduling and synchronization, never in genetics.

:class:`AsyncCGA` is the canonical asynchronous CGA of Algorithm 1
(fixed line-sweep, immediate replacement); the paper notes that PA-CGA
with one thread *is* this algorithm.  :class:`SyncCGA` is the
synchronous variant (offspring written to an auxiliary population,
swapped once per generation), used by the async-vs-sync ablation.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.crossover import child_with_ct
from repro.cga.hooks import EngineHooks, as_hooks
from repro.cga.population import Population
from repro.runtime.budget import Budget
from repro.runtime.context import (
    attach_runtime,
    build_context,
    detach_runtime,
    finish_run,
)

__all__ = [
    "EvolutionOps",
    "EngineHooks",
    "NullLocks",
    "RunResult",
    "evolve_individual",
    "AsyncCGA",
    "SyncCGA",
]


@dataclass(frozen=True)
class EvolutionOps:
    """Concrete operator bundle produced by :meth:`CGAConfig.resolve`."""

    fitness: Callable
    select: Callable
    crossover: Callable
    p_comb: float
    mutate: Callable
    p_mut: float
    local_search: Callable | None
    p_ls: float
    ls_iterations: int
    ls_candidates: int | None
    replace: Callable
    #: problem hook applying ``crossover`` and deriving the child's CT;
    #: defaults to the independent-task delta rule so hand-built bundles
    #: keep their historical behavior.
    recombine: Callable = child_with_ct


class NullLocks:
    """No-op lock manager: the sequential engines' synchronization.

    The thread engine substitutes a real per-individual RW-lock manager
    with the same two-method protocol.
    """

    def read(self, idx: int):
        """Context manager guarding a read of individual ``idx``."""
        return nullcontext()

    def write(self, idx: int):
        """Context manager guarding a write of individual ``idx``."""
        return nullcontext()


_NULL_LOCKS = NullLocks()


def evolve_individual(
    pop: Population,
    idx: int,
    neighbors: np.ndarray,
    ops: EvolutionOps,
    rng: np.random.Generator,
    locks: NullLocks = _NULL_LOCKS,
) -> bool:
    """One breeding step for cell ``idx`` (Algorithm 3, lines 3–9).

    Selection reads neighbor fitnesses, recombination reads the two
    parents, replacement writes the current cell — each access goes
    through ``locks`` so concurrent engines stay safe.  Returns True
    when the offspring replaced the incumbent.
    """
    inst = pop.instance
    unlocked = locks is _NULL_LOCKS
    # -- selection: snapshot neighbor fitnesses under read locks --------
    if unlocked:
        fit = pop.fitness[neighbors]
    else:
        fit = np.empty(neighbors.shape[0])
        for j, n in enumerate(neighbors):
            with locks.read(int(n)):
                fit[j] = pop.fitness[n]
    a, b = ops.select(fit, rng)
    p1, p2 = int(neighbors[a]), int(neighbors[b])

    # -- recombination: copy parents under read locks --------------------
    if unlocked:
        p1_s = pop.s[p1].copy()
        p1_ct = pop.ct[p1].copy()
    else:
        with locks.read(p1):
            p1_s = pop.s[p1].copy()
            p1_ct = pop.ct[p1].copy()
    if rng.random() < ops.p_comb:
        if unlocked:
            p2_s = pop.s[p2]  # read-only use inside child_with_ct
        else:
            with locks.read(p2):
                p2_s = pop.s[p2].copy()
        child_s, child_ct = ops.recombine(inst, p1_s, p1_ct, p2_s, ops.crossover, rng)
    else:
        child_s, child_ct = p1_s, p1_ct

    # -- mutation, local search, evaluation (lock-free: private data) ----
    if rng.random() < ops.p_mut:
        ops.mutate(child_s, child_ct, inst, rng)
    if ops.local_search is not None and ops.ls_iterations > 0 and rng.random() < ops.p_ls:
        ops.local_search(
            child_s, child_ct, inst, rng, ops.ls_iterations, ops.ls_candidates
        )
    child_fit = float(ops.fitness(child_s, child_ct, inst))

    # -- replacement under a write lock ----------------------------------
    if unlocked:
        if ops.replace(child_fit, float(pop.fitness[idx])):
            pop.write_individual(idx, child_s, child_ct, child_fit)
            return True
        return False
    with locks.write(idx):
        if ops.replace(child_fit, float(pop.fitness[idx])):
            pop.write_individual(idx, child_s, child_ct, child_fit)
            return True
    return False


@dataclass
class RunResult:
    """Outcome of one engine run."""

    best_fitness: float
    best_assignment: np.ndarray
    evaluations: int
    generations: int
    elapsed_s: float
    #: per-generation trace rows ``(generation, evaluations, best, mean)``
    history: list[tuple[int, int, float, float]] = field(default_factory=list)
    #: extra engine-specific measurements (threads, contention, …)
    extra: dict = field(default_factory=dict)

    def best_schedule(self, instance):
        """Materialize the best-found schedule (problem-appropriate type)."""
        from repro.problems import problem_of

        return problem_of(instance).as_schedule(instance, self.best_assignment)


class _EngineBase:
    """Shared setup for the sequential engines.

    Setup (operator resolution, population init, RNG, observer) is the
    runtime's :func:`~repro.runtime.context.build_context`; the engine
    keeps its historical attribute surface (``instance``, ``config``,
    ``rng``, ``grid``, ``neighbors``, ``ops``, ``sweep``, ``pop``,
    ``obs``) so callers and subclasses are unaffected.
    """

    #: canonical registry name (overridden per engine class).
    engine_name = ""

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        rng: np.random.Generator | int | None = None,
        record_history: bool = True,
        on_generation: Callable | EngineHooks | None = None,
        obs=None,
    ):
        ctx = build_context(instance, config, rng=rng, obs=obs)
        self.instance = instance
        self.config = ctx.config
        self.rng = ctx.rng
        self.record_history = record_history
        #: lifecycle hooks (``on_generation``, ``on_improvement``,
        #: ``on_stop``); a bare callable is accepted for backward
        #: compatibility and becomes the ``on_generation`` slot.
        self.hooks = as_hooks(on_generation)
        self.grid = ctx.grid
        self.neighbors = ctx.neighbors
        self.ops = ctx.ops
        self.sweep = ctx.sweep
        self.pop = ctx.pop
        self._best_seen = math.inf
        self._ckpt: tuple[int, Callable] | None = None
        self._resume: dict | None = None
        self.obs = ctx.obs
        self._obs_hooks: EngineHooks | None = None
        if self.obs is not None:
            from repro.obs.instrument import instrumented_ops

            self.ops = instrumented_ops(self.ops, self.obs.recorder("main"))
            self._obs_hooks = self.obs.engine_hooks()

    def _start_runtime(self):
        """Attach the observer's live publisher/watchdog for this run.

        The sequential engines are their own single "worker": the
        heartbeat advances once per generation, so a generation loop
        stuck inside one breeding step (a hung fitness function, a
        livelocked local search) is flagged by the watchdog's monitor
        thread.  Returns the heartbeat board, or None when the observer
        requests no runtime attachment (then the loop stays untouched).
        """
        self._live_state = {"generation": 0, "evaluations": 0}
        return attach_runtime(
            self,
            1,
            lambda: (self._live_state["generation"], self._live_state["evaluations"]),
        )

    def _stop_runtime(self, board) -> None:
        detach_runtime(self, board, mark_done=(0,))

    # -- checkpoint protocol (runtime.checkpoint) ------------------------
    def arm_checkpoint(self, every: int | None, saver: Callable | None) -> None:
        """Install (or clear) a generation-boundary checkpoint callback."""
        self._ckpt = None if saver is None else (every, saver)

    def _maybe_checkpoint(self, generation: int) -> None:
        if self._ckpt is not None and generation % self._ckpt[0] == 0:
            self._ckpt[1](self)

    def capture_state(self) -> dict:
        """Engine-specific checkpoint payload (single-stream engines)."""
        budget = getattr(self, "_budget", None)
        return {
            "rng_streams": {"main": self.rng.bit_generator.state},
            "progress": {
                "evaluations": budget.evaluations if budget is not None else 0,
                "generations": budget.generations if budget is not None else 0,
                "history": [list(row) for row in getattr(self, "_history", [])],
                "best_seen": None if math.isinf(self._best_seen) else self._best_seen,
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a :meth:`capture_state` payload; next ``run`` resumes it."""
        self.rng.bit_generator.state = payload["rng_streams"]["main"]
        progress = payload.get("progress")
        if progress and (progress.get("generations") or progress.get("history")):
            self._resume = {
                "evaluations": int(progress.get("evaluations", 0)),
                "generations": int(progress.get("generations", 0)),
                "history": [tuple(row) for row in progress.get("history", [])],
                "best_seen": progress.get("best_seen"),
            }
        else:
            self._resume = None

    def _consume_resume(self) -> dict | None:
        """Pop the pending resume payload and apply its best-seen mark."""
        resume, self._resume = self._resume, None
        if resume is not None:
            best = resume.get("best_seen")
            self._best_seen = math.inf if best is None else best
        return resume

    @property
    def on_generation(self) -> Callable | None:
        """Back-compat view of ``hooks.on_generation`` (bare attribute API)."""
        return self.hooks.on_generation

    @on_generation.setter
    def on_generation(self, fn: Callable | None) -> None:
        self.hooks.on_generation = fn

    def _snapshot(self, generation: int, evaluations: int, history: list) -> None:
        hooks, obs_hooks = self.hooks, self._obs_hooks
        best = None
        if self.record_history:
            _, best = self.pop.best()
            history.append((generation, evaluations, best, self.pop.mean_fitness()))
        track_best = hooks.on_improvement is not None or obs_hooks is not None
        if track_best:
            if best is None:
                _, best = self.pop.best()
            if best < self._best_seen:
                improved = generation > 0  # the initial snapshot only seeds
                self._best_seen = best
                if improved:
                    if hooks.on_improvement is not None:
                        hooks.on_improvement(self, generation, evaluations, best)
                    if obs_hooks is not None and obs_hooks.on_improvement is not None:
                        obs_hooks.on_improvement(self, generation, evaluations, best)
        if generation > 0:
            if hooks.on_generation is not None:
                hooks.on_generation(self, generation, evaluations)
            if obs_hooks is not None and obs_hooks.on_generation is not None:
                obs_hooks.on_generation(self, generation, evaluations)

    def _result(self, evaluations, generations, elapsed, history, **extra) -> RunResult:
        best_idx, best_fit = self.pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=self.pop.s[best_idx].copy(),
            evaluations=evaluations,
            generations=generations,
            elapsed_s=elapsed,
            history=history,
            extra=extra,
        )
        return finish_run(self, result, engine_name=self.engine_name)


class AsyncCGA(_EngineBase):
    """Canonical asynchronous CGA (Algorithm 1) with fixed line sweep.

    Offspring replace their cell immediately, so later cells in the same
    sweep already see them — the faster-converging update scheme the
    paper builds on.
    """

    engine_name = "async"

    def run(self, stop: StopCondition) -> RunResult:
        """Evolve until ``stop`` triggers; returns the run trace."""
        pop, ops, rng = self.pop, self.ops, self.rng
        sweep = [int(i) for i in self.sweep]
        resume = self._consume_resume()
        history: list[tuple[int, int, float, float]] = (
            resume["history"] if resume else []
        )
        budget = self._budget = Budget(
            stop,
            evaluations=resume["evaluations"] if resume else 0,
            generations=resume["generations"] if resume else 0,
        )
        self._history = history
        board = self._start_runtime()
        budget.start()
        if resume is None:
            self._snapshot(0, 0, history)
        try:
            while True:
                _, best = pop.best()
                if budget.exhausted(best):
                    break
                for idx in sweep:
                    evolve_individual(pop, idx, self.neighbors[idx], ops, rng)
                    budget.spend()
                    if budget.cap_reached():
                        break
                generation = budget.next_generation()
                if board is not None:
                    board.beat(0)
                    self._live_state["generation"] = generation
                    self._live_state["evaluations"] = budget.evaluations
                self._snapshot(generation, budget.evaluations, history)
                self._maybe_checkpoint(generation)
        finally:
            self._stop_runtime(board)
        return self._result(
            budget.evaluations, budget.generations, budget.elapsed, history
        )


class SyncCGA(_EngineBase):
    """Synchronous CGA: one auxiliary population per generation.

    All offspring are bred against the *previous* generation and the
    whole population is swapped at once — slower convergence, provided
    for the async/sync ablation (DESIGN.md A3).
    """

    engine_name = "sync"

    def run(self, stop: StopCondition) -> RunResult:
        """Evolve until ``stop`` triggers; returns the run trace."""
        pop, ops, rng = self.pop, self.ops, self.rng
        resume = self._consume_resume()
        history: list[tuple[int, int, float, float]] = (
            resume["history"] if resume else []
        )
        budget = self._budget = Budget(
            stop,
            evaluations=resume["evaluations"] if resume else 0,
            generations=resume["generations"] if resume else 0,
        )
        self._history = history
        budget.start()
        if resume is None:
            self._snapshot(0, 0, history)
        while True:
            _, best = pop.best()
            if budget.exhausted(best):
                break
            aux = pop.clone()
            for idx in range(pop.size):
                # breed against the frozen parent generation (pop), write
                # into aux so no offspring is visible this generation
                evolve_individual(
                    _SyncView(pop, aux), idx, self.neighbors[idx], ops, rng
                )
                budget.spend()
                if budget.cap_reached():
                    break
            pop.s[:] = aux.s
            pop.ct[:] = aux.ct
            pop.fitness[:] = aux.fitness
            generation = budget.next_generation()
            self._snapshot(generation, budget.evaluations, history)
            self._maybe_checkpoint(generation)
        return self._result(
            budget.evaluations, budget.generations, budget.elapsed, history
        )


class _SyncView:
    """Read-from-parents / write-to-aux adapter for the sync engine.

    Duck-types the small slice of :class:`Population` that
    ``evolve_individual`` touches: reads (``s``, ``ct``, ``fitness``)
    come from the frozen parent population; ``write_individual`` goes to
    the auxiliary one.  Replacement still compares against the parent's
    fitness, the classical synchronous rule.
    """

    __slots__ = ("_parents", "_aux")

    def __init__(self, parents: Population, aux: Population):
        self._parents = parents
        self._aux = aux

    @property
    def instance(self):
        return self._parents.instance

    @property
    def s(self):
        return self._parents.s

    @property
    def ct(self):
        return self._parents.ct

    @property
    def fitness(self):
        return self._parents.fitness

    def write_individual(self, idx: int, s, ct, fitness: float) -> None:
        self._aux.write_individual(idx, s, ct, fitness)

"""Algorithm configuration (Table 1 of the paper) and stop conditions.

:class:`CGAConfig` captures every knob of Table 1 with the paper's
values as defaults; ``resolve()`` turns the string-keyed choices into
the concrete operator callables used by all engines (sequential,
threaded, process-based and simulated), so one config object fully
determines a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import ObsConfig

from repro.cga.grid import Grid2D
from repro.cga.neighborhood import NEIGHBORHOODS
from repro.cga.replacement import REPLACEMENTS
from repro.cga.selection import SELECTIONS

__all__ = ["CGAConfig", "StopCondition"]


@dataclass(frozen=True)
class StopCondition:
    """Termination criterion — any bound triggers the stop.

    The paper stops on wall-clock time (90 s / 10 s); deterministic
    experiments here prefer evaluation budgets, and the virtual-time
    simulator uses ``virtual_time`` seconds of *modeled* time.
    """

    max_evaluations: int | None = None
    max_generations: int | None = None
    wall_time_s: float | None = None
    virtual_time: float | None = None
    target_fitness: float | None = None

    def __post_init__(self) -> None:
        bounds = (
            self.max_evaluations,
            self.max_generations,
            self.wall_time_s,
            self.virtual_time,
            self.target_fitness,
        )
        if all(b is None for b in bounds):
            raise ValueError("StopCondition needs at least one bound")
        for name in ("max_evaluations", "max_generations"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")
        for name in ("wall_time_s", "virtual_time"):
            v = getattr(self, name)
            if v is not None and (v <= 0 or not math.isfinite(v)):
                raise ValueError(f"{name} must be positive and finite, got {v}")

    def done(
        self,
        evaluations: int = 0,
        generations: int = 0,
        elapsed: float = 0.0,
        best_fitness: float = math.inf,
    ) -> bool:
        """True when any configured bound has been reached."""
        if self.max_evaluations is not None and evaluations >= self.max_evaluations:
            return True
        if self.max_generations is not None and generations >= self.max_generations:
            return True
        if self.wall_time_s is not None and elapsed >= self.wall_time_s:
            return True
        if self.target_fitness is not None and best_fitness <= self.target_fitness:
            return True
        return False


@dataclass(frozen=True)
class CGAConfig:
    """Full PA-CGA parameterization; defaults reproduce Table 1.

    ``n_threads`` is the number of population blocks / logical threads;
    1 makes every engine degenerate to the canonical asynchronous CGA
    of Algorithm 1 (the paper notes this explicitly in §4.2).
    """

    grid_rows: int = 16
    grid_cols: int = 16
    neighborhood: str = "l5"
    selection: str = "best2"
    crossover: str = "tpx"
    p_comb: float = 1.0
    mutation: str = "move"
    p_mut: float = 1.0
    local_search: str | None = "h2ll"
    p_ls: float = 1.0          # the paper's p_ser
    ls_iterations: int = 10    # Table 1: iter ∈ {5, 10}; Fig. 5 picks 10
    ls_candidates: int | None = None  # None → nmachines // 2 (Algorithm 4)
    replacement: str = "if-better"
    fitness: str = "makespan"  # eq. 1: the paper optimizes makespan only
    seed_with_minmin: bool = True
    n_threads: int = 1
    sweep: str = "line"  # §3.2: fixed line sweep per block
    partition: str = "runs"  # §3.2: contiguous row-major runs
    #: registered workload (see :mod:`repro.problems`); operator names
    #: above are validated against — and resolved from — this problem's
    #: registries, so one config shape drives every workload.
    problem: str = "independent"
    #: optional declarative telemetry settings; engines materialize it
    #: into a live ``repro.obs.Observer`` and auto-finalize the bundle
    #: on stop.  None (default) means no instrumentation at all.
    obs: "ObsConfig | None" = None

    def __post_init__(self) -> None:
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise ValueError("grid must be at least 1x1")
        for name in ("p_comb", "p_mut", "p_ls"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.ls_iterations < 0:
            raise ValueError(f"ls_iterations must be >= 0, got {self.ls_iterations}")
        if self.n_threads < 1 or self.n_threads > self.grid_rows * self.grid_cols:
            raise ValueError(f"n_threads must be in [1, pop], got {self.n_threads}")
        if self.neighborhood not in NEIGHBORHOODS:
            raise ValueError(f"unknown neighborhood {self.neighborhood!r}")
        if self.selection not in SELECTIONS:
            raise ValueError(f"unknown selection {self.selection!r}")
        if self.replacement not in REPLACEMENTS:
            raise ValueError(f"unknown replacement {self.replacement!r}")
        from repro.cga.sweep import SWEEP_POLICIES

        if self.sweep not in SWEEP_POLICIES:
            raise ValueError(f"unknown sweep policy {self.sweep!r}")
        if self.partition not in ("runs", "rows", "tiles"):
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        # workload-specific names validate against the problem's registries
        # (lazy import: repro.problems imports the operator modules)
        from repro.problems import resolve_problem

        problem = resolve_problem(self.problem)
        if self.crossover not in problem.crossovers:
            raise ValueError(
                f"unknown crossover {self.crossover!r} for problem {self.problem!r}; "
                f"known: {', '.join(problem.crossovers)}"
            )
        if self.mutation not in problem.mutations:
            raise ValueError(
                f"unknown mutation {self.mutation!r} for problem {self.problem!r}; "
                f"known: {', '.join(problem.mutations)}"
            )
        if self.local_search is not None and self.local_search not in problem.local_searches:
            raise ValueError(
                f"unknown local search {self.local_search!r} for problem {self.problem!r}; "
                f"known: {', '.join(problem.local_searches)}"
            )
        if self.fitness not in problem.fitness:
            raise ValueError(
                f"unknown fitness {self.fitness!r} for problem {self.problem!r}; "
                f"known: {', '.join(problem.fitness)}"
            )

    @property
    def grid(self) -> Grid2D:
        """The toroidal grid implied by the config."""
        return Grid2D(self.grid_rows, self.grid_cols)

    @property
    def population_size(self) -> int:
        """Number of individuals (Table 1: 16 × 16 = 256)."""
        return self.grid_rows * self.grid_cols

    def with_(self, **changes: Any) -> "CGAConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)

    def resolve(self) -> "EvolutionOps":
        """Bind the named operator choices to concrete callables."""
        from repro.cga.engine import EvolutionOps  # local import: engine imports config
        from repro.problems import resolve_problem

        problem = resolve_problem(self.problem)
        return EvolutionOps(
            fitness=problem.fitness[self.fitness],
            select=SELECTIONS[self.selection],
            crossover=problem.crossovers[self.crossover],
            p_comb=self.p_comb,
            mutate=problem.mutations[self.mutation],
            p_mut=self.p_mut,
            local_search=(
                problem.local_searches[self.local_search]
                if self.local_search is not None
                else None
            ),
            p_ls=self.p_ls,
            ls_iterations=self.ls_iterations,
            ls_candidates=self.ls_candidates,
            replace=REPLACEMENTS[self.replacement],
            recombine=problem.recombine,
        )

    def describe(self) -> str:
        """Human-readable Table 1-style summary."""
        ls = f"{self.local_search}, p_ls={self.p_ls}, iter={self.ls_iterations}" if self.local_search else "none"
        rows = [
            ("Population", f"{self.grid_rows}x{self.grid_cols}"),
            ("Population initialization", "Min-min (1 ind)" if self.seed_with_minmin else "random"),
            ("Cell update policy", f"fixed {self.sweep} sweep per block"),
            ("Neighborhood", self.neighborhood),
            ("Selection", self.selection),
            ("Recombination", f"{self.crossover}, p_comb={self.p_comb}"),
            ("Mutation", f"{self.mutation}, p_mut={self.p_mut}"),
            ("Local search", ls),
            ("Replacement", self.replacement),
            ("Number of threads", str(self.n_threads)),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)

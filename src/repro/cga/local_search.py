"""Local search operators — H2LL (Algorithm 4) and ablation variants.

**H2LL** ("highest to N least loaded"): per iteration, pick a random
task on the most loaded machine (whose completion time *is* the
makespan) and move it to whichever of the N least-loaded candidate
machines yields the smallest new completion time, provided that new
completion time stays below the current makespan.  The paper
parameterizes the number of passes (``iter`` ∈ {5, 10} in Table 1) and
uses the transposed ETC matrix for the candidate scan (§3.3).

``N`` is ``nmachines // 2`` by default — Algorithm 4's loop over the
"first half" of the machines sorted by ascending completion time.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["h2ll", "h2ll_steepest", "random_move_ls", "LOCAL_SEARCHES"]

LocalSearch = Callable[[np.ndarray, np.ndarray, ETCMatrix, np.random.Generator, int], int]


def _publish(stats: dict | None, tried: int, accepted: int) -> None:
    """Fold one call's move counts into an observability counter dict.

    ``stats`` is a plain counter mapping (e.g. a
    ``repro.obs.MetricRecorder.counters`` dict owned by the calling
    thread); ``None`` — the default everywhere — skips all bookkeeping,
    keeping the uninstrumented path allocation-free.
    """
    if stats is None:
        return
    stats["ls.moves_tried"] = stats.get("ls.moves_tried", 0.0) + tried
    stats["ls.moves_accepted"] = stats.get("ls.moves_accepted", 0.0) + accepted


def h2ll(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    iterations: int = 5,
    n_candidates: int | None = None,
    stats: dict | None = None,
) -> int:
    """Run ``iterations`` H2LL passes in place; return #moves applied.

    Each pass is O(m log m) for the machine sort plus O(ntasks) to list
    the loaded machine's tasks and O(N) for the candidate scan — no
    full re-evaluation anywhere (§3.3).  ``stats`` (optional) receives
    exact ``ls.moves_tried`` / ``ls.moves_accepted`` counter updates.
    """
    if iterations <= 0:
        return 0
    etc = instance.etc  # one task's row over all machines is contiguous
    nm = instance.nmachines
    ncand = n_candidates if n_candidates is not None else max(1, nm // 2)
    ncand = min(ncand, nm - 1) or 1
    moves = 0
    tried = 0
    # the per-machine scalar work is faster on Python floats than on
    # 16-element ndarrays (profiled: numpy call overhead dominated)
    ct_l = ct.tolist()
    picks = rng.random(iterations)  # one pre-drawn uniform per pass
    for it in range(iterations):
        order = sorted(range(nm), key=ct_l.__getitem__)  # ascending load
        worst = order[-1]
        tasks = (s == worst).nonzero()[0]  # flatnonzero minus wrappers
        if tasks.size == 0:
            break  # ready times alone define the makespan; nothing to move
        tried += 1
        task = int(tasks[int(picks[it] * tasks.size)])
        row = etc[task].tolist()  # ETC of `task` on every machine
        best_score = ct_l[worst]  # the makespan (Algorithm 4 line 4)
        best_mac = -1
        for mac in order[:ncand]:
            new_score = ct_l[mac] + row[mac]
            if new_score < best_score:
                best_mac = mac
                best_score = new_score
        if best_mac >= 0:
            ct_l[worst] -= row[worst]
            ct_l[best_mac] = best_score
            s[task] = best_mac
            moves += 1
    if moves:
        ct[:] = ct_l
    _publish(stats, tried, moves)
    return moves


def h2ll_steepest(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    iterations: int = 5,
    n_candidates: int | None = None,
    stats: dict | None = None,
) -> int:
    """Ablation variant: examine *every* task on the loaded machine.

    Instead of a random task, choose the (task, candidate) pair that
    minimizes the new completion time.  Stronger per pass but
    O(#tasks-on-machine × N) — the ablation bench quantifies whether
    the paper's cheap randomized choice is the better trade.
    """
    if iterations <= 0:
        return 0
    etc_t = instance.etc_t
    ncand = n_candidates if n_candidates is not None else max(1, instance.nmachines // 2)
    ncand = min(ncand, instance.nmachines - 1) or 1
    moves = 0
    tried = 0
    for _ in range(iterations):
        order = np.argsort(ct, kind="stable")
        worst = int(order[-1])
        tasks = np.flatnonzero(s == worst)
        if tasks.size == 0:
            break
        tried += 1
        candidates = order[:ncand]
        # (|tasks|, N) matrix of resulting completion times
        scores = ct[candidates][None, :] + etc_t[np.ix_(candidates, tasks)].T
        flat = int(scores.argmin())
        ti, ki = divmod(flat, candidates.size)
        if scores[ti, ki] < float(ct[worst]):
            task = int(tasks[ti])
            best_mac = int(candidates[ki])
            ct[worst] -= etc_t[worst, task]
            ct[best_mac] += etc_t[best_mac, task]
            s[task] = best_mac
            moves += 1
        else:
            break  # steepest descent reached a local optimum
    _publish(stats, tried, moves)
    return moves


def random_move_ls(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    iterations: int = 5,
    n_candidates: int | None = None,
    stats: dict | None = None,
) -> int:
    """Baseline LS: random task → random machine, keep if makespan improves.

    The weakest sensible hill-climber; isolates how much of H2LL's value
    comes from targeting the most loaded machine.
    """
    if iterations <= 0:
        return 0
    etc_t = instance.etc_t
    nm = instance.nmachines
    moves = 0
    tried = 0

    # top-3 (value, machine) pairs, descending: the "max of the rest"
    # excluding the two machines touched by a move is always among the
    # top 3, so the inner loop needs no np.delete allocation — the old
    # formulation allocated an (nm-2,) copy per iteration.
    def top3() -> list[tuple[float, int]]:
        if nm <= 3:
            order = np.argsort(ct)[::-1]
        else:
            part = np.argpartition(ct, nm - 3)[nm - 3:]
            order = part[np.argsort(ct[part])[::-1]]
        return [(float(ct[i]), int(i)) for i in order[:3]]

    peak = top3()
    for _ in range(iterations):
        t = int(rng.integers(0, instance.ntasks))
        m = int(rng.integers(0, nm))
        old = int(s[t])
        if old == m:
            continue
        tried += 1
        before = peak[0][0]  # the current makespan
        new_src = float(ct[old] - etc_t[old, t])
        new_dst = float(ct[m] + etc_t[m, t])
        rest = 0.0  # ready-time-free floor, as np.delete(...).max(initial=0.0)
        for value, machine in peak:
            if machine != old and machine != m:
                rest = value
                break
        after = max(rest, new_src, new_dst)
        if after < before:
            ct[old] = new_src
            ct[m] = new_dst
            s[t] = m
            moves += 1
            peak = top3()  # only accepted moves change ct
    _publish(stats, tried, moves)
    return moves


#: registry used by :class:`repro.cga.config.CGAConfig`.
LOCAL_SEARCHES: dict[str, LocalSearch] = {
    "h2ll": h2ll,
    "h2ll-steepest": h2ll_steepest,
    "random-move": random_move_ls,
}

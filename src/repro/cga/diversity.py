"""Population diversity metrics.

The whole point of cellular GAs is the exploration/exploitation balance
obtained by keeping the population diverse for longer (§3.1, [1],
[13]).  These metrics make that claim measurable:

* **genotypic diversity** — mean pairwise Hamming distance between
  assignment vectors, estimated over sampled pairs (exact all-pairs is
  O(pop² · ntasks));
* **allele entropy** — mean per-gene Shannon entropy of the machine
  choice, normalized to [0, 1];
* **phenotypic spread** — coefficient of variation of the fitnesses.

Used by the diversity ablation bench and available to any engine
through :class:`repro.cga.population.Population`.
"""

from __future__ import annotations

import numpy as np

from repro.cga.population import Population

__all__ = ["hamming_diversity", "allele_entropy", "fitness_spread", "diversity_report"]


def hamming_diversity(
    pop: Population, rng: np.random.Generator | None = None, n_pairs: int = 512
) -> float:
    """Mean normalized Hamming distance over sampled individual pairs.

    1.0 means every sampled pair disagrees on every task; 0.0 means the
    population has collapsed to one genotype.
    """
    n = pop.size
    if n < 2:
        return 0.0
    gen = rng or np.random.default_rng(0)
    a = gen.integers(0, n, size=n_pairs)
    b = gen.integers(0, n, size=n_pairs)
    distinct = a != b
    if not distinct.any():
        return 0.0
    a, b = a[distinct], b[distinct]
    return float((pop.s[a] != pop.s[b]).mean())


def allele_entropy(pop: Population) -> float:
    """Mean per-gene Shannon entropy of machine choices, in [0, 1].

    For each task, the distribution of machines across the population
    is measured; entropy is normalized by ``log(nmachines)``.
    """
    nmachines = pop.instance.nmachines
    if nmachines < 2:
        return 0.0
    n = pop.size
    ntasks = pop.instance.ntasks
    # bincount over (task, machine) codes — equivalent to np.add.at on a
    # (ntasks, nmachines) table but an order of magnitude faster, which
    # matters because the obs sampler calls this on every tick
    codes = pop.s + np.arange(ntasks, dtype=pop.s.dtype) * nmachines
    counts = np.bincount(codes.ravel(), minlength=ntasks * nmachines).reshape(
        ntasks, nmachines
    )
    probs = counts / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, -probs * np.log(probs), 0.0)
    entropy = terms.sum(axis=1) / np.log(nmachines)
    return float(entropy.mean())


def fitness_spread(pop: Population) -> float:
    """Coefficient of variation of the population fitnesses."""
    mean = float(pop.fitness.mean())
    if mean == 0:
        return 0.0
    return float(pop.fitness.std() / mean)


def diversity_report(pop: Population, rng: np.random.Generator | None = None) -> dict:
    """All three metrics in one dict (for logging/benches)."""
    return {
        "hamming": hamming_diversity(pop, rng),
        "entropy": allele_entropy(pop),
        "fitness_cv": fitness_spread(pop),
    }

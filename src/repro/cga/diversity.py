"""Population diversity metrics.

The whole point of cellular GAs is the exploration/exploitation balance
obtained by keeping the population diverse for longer (§3.1, [1],
[13]).  These metrics make that claim measurable:

* **genotypic diversity** — mean pairwise Hamming distance between
  assignment vectors, estimated over sampled pairs (exact all-pairs is
  O(pop² · ntasks));
* **allele entropy** — mean per-gene Shannon entropy of the machine
  choice, normalized to [0, 1];
* **phenotypic spread** — coefficient of variation of the fitnesses.

Used by the diversity ablation bench and available to any engine
through :class:`repro.cga.population.Population`.
"""

from __future__ import annotations

import numpy as np

from repro.cga.population import Population

__all__ = ["hamming_diversity", "allele_entropy", "fitness_spread", "diversity_report"]


def hamming_diversity(
    pop: Population, rng: np.random.Generator | None = None, n_pairs: int = 512
) -> float:
    """Mean normalized Hamming distance over sampled individual pairs.

    1.0 means every sampled pair disagrees on every task; 0.0 means the
    population has collapsed to one genotype.
    """
    n = pop.size
    if n < 2:
        return 0.0
    gen = rng or np.random.default_rng(0)
    a = gen.integers(0, n, size=n_pairs)
    b = gen.integers(0, n, size=n_pairs)
    distinct = a != b
    if not distinct.any():
        return 0.0
    a, b = a[distinct], b[distinct]
    return float((pop.s[a] != pop.s[b]).mean())


def allele_entropy(pop: Population) -> float:
    """Mean per-gene Shannon entropy of gene choices, in [0, 1].

    For each gene position, the distribution of values across the
    population is measured; entropy is normalized by the log of the
    problem's gene alphabet (machines for the independent workload,
    jobs for a permutation).
    """
    alphabet = pop.problem.alphabet(pop.instance)
    if alphabet < 2:
        return 0.0
    n = pop.size
    ntasks = pop.instance.ntasks
    # bincount over (position, value) codes — equivalent to np.add.at on
    # a (ntasks, alphabet) table but an order of magnitude faster, which
    # matters because the obs sampler calls this on every tick
    codes = pop.s + np.arange(ntasks, dtype=pop.s.dtype) * alphabet
    counts = np.bincount(codes.ravel(), minlength=ntasks * alphabet).reshape(
        ntasks, alphabet
    )
    probs = counts / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, -probs * np.log(probs), 0.0)
    entropy = terms.sum(axis=1) / np.log(alphabet)
    return float(entropy.mean())


def fitness_spread(pop: Population) -> float:
    """Coefficient of variation of the population fitnesses."""
    mean = float(pop.fitness.mean())
    if mean == 0:
        return 0.0
    return float(pop.fitness.std() / mean)


def diversity_report(pop: Population, rng: np.random.Generator | None = None) -> dict:
    """All three metrics in one dict (for logging/benches)."""
    return {
        "hamming": hamming_diversity(pop, rng),
        "entropy": allele_entropy(pop),
        "fitness_cv": fitness_spread(pop),
    }

"""Recombination operators with incremental completion-time updates.

The paper evaluates one-point (opx) and two-point (tpx) crossover
(§4.1, Fig. 5).  For the (S, CT) representation of §3.3 a child that
starts from parent 1 and inherits a segment from parent 2 only changes
CT where the two parents disagree, so the update cost is
O(segment length), not O(ntasks) — ``child_with_ct`` implements that
delta rule once for all operators.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["one_point", "two_point", "uniform", "child_with_ct", "CROSSOVERS"]

Crossover = Callable[[np.ndarray, np.ndarray, np.random.Generator], np.ndarray]


def one_point(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One-point crossover (opx): prefix from p1, suffix from p2.

    The cut point is drawn in ``[1, n-1]`` so both parents always
    contribute at least one gene.
    """
    n = p1.shape[0]
    if n < 2:
        return p1.copy()
    cut = int(rng.integers(1, n))
    child = p1.copy()
    child[cut:] = p2[cut:]
    return child


def two_point(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Two-point crossover (tpx): p2's genes inside a random window.

    Draws two cut positions and copies the half-open window between
    them from p2 (equal cuts yield an empty window, i.e. a p1 clone).
    """
    n = p1.shape[0]
    if n < 2:
        return p1.copy()
    cuts = rng.integers(0, n + 1, size=2)
    a, b = (int(cuts[0]), int(cuts[1])) if cuts[0] <= cuts[1] else (int(cuts[1]), int(cuts[0]))
    child = p1.copy()
    child[a:b] = p2[a:b]
    return child


def uniform(p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Uniform crossover: each gene from either parent with p = 1/2."""
    mask = rng.random(p1.shape[0]) < 0.5
    child = p1.copy()
    child[mask] = p2[mask]
    return child


def child_with_ct(
    instance: ETCMatrix,
    p1_s: np.ndarray,
    p1_ct: np.ndarray,
    p2_s: np.ndarray,
    op: Crossover,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a crossover and derive the child's CT from parent 1's.

    Returns ``(child_s, child_ct)`` with ``child_ct`` updated only at
    the genes where the child differs from parent 1 (§3.3's "add or
    remove the ETC of a task on a machine").
    """
    child = op(p1_s, p2_s, rng)
    ct = p1_ct.copy()
    changed = np.flatnonzero(child != p1_s)
    if changed.size:
        old = p1_s[changed]
        new = child[changed]
        etc = instance.etc
        np.subtract.at(ct, old, etc[changed, old])
        np.add.at(ct, new, etc[changed, new])
    return child, ct


#: registry used by :class:`repro.cga.config.CGAConfig`.
CROSSOVERS: dict[str, Crossover] = {
    "opx": one_point,
    "tpx": two_point,
    "uniform": uniform,
}

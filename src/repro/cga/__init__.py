"""Cellular genetic algorithm core (paper §3).

The population lives on a 2-D toroidal grid; individuals interact only
with their neighborhood (L5 by default).  This package provides the
grid geometry and block partitioning (§3.2), the variation operators
with incremental completion-time updates (§3.3), the H2LL local search
(Algorithm 4), and the sequential engines: the canonical asynchronous
CGA (Algorithm 1 — identical to PA-CGA with one thread) and the
synchronous variant.  The parallel engines live in ``repro.parallel``.
"""

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.grid import Grid2D
from repro.cga.neighborhood import NEIGHBORHOODS, neighbor_table
from repro.cga.population import Population
from repro.cga.engine import AsyncCGA, SyncCGA, EvolutionOps, RunResult, evolve_individual
from repro.cga.hooks import EngineHooks, as_hooks
from repro.cga.vectorized import VectorizedSyncCGA
from repro.cga.local_search import h2ll

from repro.runtime.registry import sequential_engines as _sequential_engines

#: name -> sequential engine class, derived from the runtime engine
#: registry (:mod:`repro.runtime.registry`) — the single source of truth
#: also behind the CLI and the experiment harnesses.
SEQUENTIAL_ENGINES = _sequential_engines()

__all__ = [
    "CGAConfig",
    "StopCondition",
    "Grid2D",
    "NEIGHBORHOODS",
    "neighbor_table",
    "Population",
    "AsyncCGA",
    "SyncCGA",
    "VectorizedSyncCGA",
    "SEQUENTIAL_ENGINES",
    "EvolutionOps",
    "RunResult",
    "evolve_individual",
    "h2ll",
    "EngineHooks",
    "as_hooks",
]

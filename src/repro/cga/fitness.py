"""Fitness functions.

The paper optimizes makespan only (eq. 1); the surrounding literature
(Xhafa et al. 2008, the cMA+LTH study) also reports a weighted
combination of makespan and mean flowtime.  Both are provided as
pluggable fitness functions so every engine can optimize either —
the paper's configuration stays the default.

A fitness function maps ``(s, ct, instance) -> float`` (lower is
better).  Makespan needs only the cached completion times (O(m));
flowtime needs the per-machine task lists (O(n log n)), which is why
the paper's pure-makespan setting is also the fastest.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["makespan_fitness", "weighted_fitness", "FITNESS", "resolve_fitness"]

FitnessFn = Callable[[np.ndarray, np.ndarray, ETCMatrix], float]

#: weight of makespan in the weighted objective (Xhafa et al. use 0.75).
DEFAULT_LAMBDA = 0.75


def makespan_fitness(s: np.ndarray, ct: np.ndarray, instance: ETCMatrix) -> float:
    """The paper's fitness: the maximum completion time (eq. 3)."""
    return float(ct.max())


def _mean_flowtime(s: np.ndarray, instance: ETCMatrix) -> float:
    """Mean task finishing time with SPT order within each machine.

    Delegates to the one vectorized implementation
    (:func:`repro.scheduling.objectives.flowtime`: lexsort + segmented
    cumulative sum) and divides by the task count to keep the weighted
    objective's two terms on comparable scales.
    """
    from repro.scheduling.objectives import flowtime

    return flowtime(instance, s) / instance.ntasks


def weighted_fitness(
    s: np.ndarray, ct: np.ndarray, instance: ETCMatrix, lam: float = DEFAULT_LAMBDA
) -> float:
    """Weighted makespan + mean flowtime (the cMA+LTH study's objective).

    ``lam`` weights makespan; mean flowtime (rather than total) keeps
    the two terms on comparable scales.
    """
    return lam * float(ct.max()) + (1.0 - lam) * _mean_flowtime(s, instance)


#: registry used by :class:`repro.cga.config.CGAConfig`.
FITNESS: dict[str, FitnessFn] = {
    "makespan": makespan_fitness,
    "makespan+flowtime": weighted_fitness,
}


def resolve_fitness(name: str) -> FitnessFn:
    """Look up a fitness function by registry name."""
    try:
        return FITNESS[name]
    except KeyError:
        raise KeyError(f"unknown fitness {name!r}; known: {', '.join(FITNESS)}") from None

"""Fitness functions.

The paper optimizes makespan only (eq. 1); the surrounding literature
(Xhafa et al. 2008, the cMA+LTH study) also reports a weighted
combination of makespan and mean flowtime.  Both are provided as
pluggable fitness functions so every engine can optimize either —
the paper's configuration stays the default.

A fitness function maps ``(s, ct, instance) -> float`` (lower is
better).  Makespan needs only the cached completion times (O(m));
flowtime needs the per-machine task lists (O(n log n)), which is why
the paper's pure-makespan setting is also the fastest.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["makespan_fitness", "weighted_fitness", "FITNESS", "resolve_fitness"]

FitnessFn = Callable[[np.ndarray, np.ndarray, ETCMatrix], float]

#: weight of makespan in the weighted objective (Xhafa et al. use 0.75).
DEFAULT_LAMBDA = 0.75


def makespan_fitness(s: np.ndarray, ct: np.ndarray, instance: ETCMatrix) -> float:
    """The paper's fitness: the maximum completion time (eq. 3)."""
    return float(ct.max())


def _mean_flowtime(s: np.ndarray, instance: ETCMatrix) -> float:
    """Mean task finishing time with SPT order within each machine.

    One lexsort by (machine, time) groups every machine's tasks as a
    contiguous ascending segment; a segmented cumulative sum then yields
    all per-machine SPT flowtimes in a single pass (the per-machine
    Python loop this replaces dominated the makespan+flowtime profile).
    For segment ``[p0, p1)`` the flowtime is ``sum(cs[p0:p1]) -
    len * cs[p0 - 1]`` plus the ready-time term, with ``cs`` the global
    prefix sum of the sorted times.
    """
    nt = instance.ntasks
    v = instance.etc[np.arange(nt), s]  # ETC of each task on its machine
    order = np.lexsort((v, s))
    sv = v[order]
    sm = s[order]
    cs = np.cumsum(sv)
    starts = np.flatnonzero(np.r_[True, sm[1:] != sm[:-1]])
    counts = np.diff(np.append(starts, nt))
    before = np.concatenate(([0.0], cs))[starts]  # prefix sum before each segment
    total = (
        cs.sum()
        - float((counts * before).sum())
        + float((counts * instance.ready_times[sm[starts]]).sum())
    )
    return float(total) / nt


def weighted_fitness(
    s: np.ndarray, ct: np.ndarray, instance: ETCMatrix, lam: float = DEFAULT_LAMBDA
) -> float:
    """Weighted makespan + mean flowtime (the cMA+LTH study's objective).

    ``lam`` weights makespan; mean flowtime (rather than total) keeps
    the two terms on comparable scales.
    """
    return lam * float(ct.max()) + (1.0 - lam) * _mean_flowtime(s, instance)


#: registry used by :class:`repro.cga.config.CGAConfig`.
FITNESS: dict[str, FitnessFn] = {
    "makespan": makespan_fitness,
    "makespan+flowtime": weighted_fitness,
}


def resolve_fitness(name: str) -> FitnessFn:
    """Look up a fitness function by registry name."""
    try:
        return FITNESS[name]
    except KeyError:
        raise KeyError(f"unknown fitness {name!r}; known: {', '.join(FITNESS)}") from None

"""Parent selection within a neighborhood.

The paper selects "the 2 best neighbors" as parents (Table 1).  All
selectors receive the fitness values of the neighborhood cells (self
first, lower = better since fitness is makespan) and return the two
*local* positions of the chosen parents, best first.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "best_two",
    "binary_tournament_pair",
    "random_pair",
    "linear_rank_pair",
    "center_plus_best",
    "roulette_pair",
    "SELECTIONS",
]

Selector = Callable[[np.ndarray, np.random.Generator], tuple[int, int]]


def best_two(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """The two fittest neighborhood members (the paper's operator).

    Deterministic given the fitness values; ties broken by position,
    matching a stable sort of the C implementation.
    """
    if fitness.size < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    order = np.argsort(fitness, kind="stable")
    return int(order[0]), int(order[1])


def binary_tournament_pair(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """Two independent binary tournaments (classical cGA selector)."""
    if fitness.size < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    picks = []
    for _ in range(2):
        a, b = rng.integers(0, fitness.size, size=2)
        picks.append(int(a if fitness[a] <= fitness[b] else b))
    return picks[0], picks[1]


def random_pair(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """Two distinct uniformly random members (selection-pressure floor)."""
    if fitness.size < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    a, b = rng.choice(fitness.size, size=2, replace=False)
    return int(a), int(b)


def linear_rank_pair(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """Linear-ranking selection: probability decreases linearly with rank."""
    n = fitness.size
    if n < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    order = np.argsort(fitness, kind="stable")
    weights = np.arange(n, 0, -1, dtype=np.float64)  # best rank gets weight n
    probs = weights / weights.sum()
    a, b = rng.choice(n, size=2, replace=False, p=probs)
    return int(order[a]), int(order[b])


def center_plus_best(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """The evolved individual itself plus its best *other* neighbor.

    A classical cGA selector (Alba & Dorronsoro [1]): keeps the center
    in every mating, so offspring are always local refinements.
    Position 0 is the center by the neighbor-table convention.
    """
    if fitness.size < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    others = 1 + int(np.argmin(fitness[1:]))
    if fitness[others] <= fitness[0]:
        return others, 0  # best first
    return 0, others


def roulette_pair(fitness: np.ndarray, rng: np.random.Generator) -> tuple[int, int]:
    """Fitness-proportional selection for minimization.

    Weights are inverse ranks (robust to the huge magnitude spread of
    makespans; raw inverse-fitness would be numerically dominated by
    near-ties).
    """
    n = fitness.size
    if n < 2:
        raise ValueError("need a neighborhood of at least 2 to select parents")
    order = np.argsort(fitness, kind="stable")
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64)  # best rank heaviest
    probs = weights / weights.sum()
    a, b = rng.choice(n, size=2, replace=False, p=probs)
    return int(order[a]), int(order[b])


#: registry used by :class:`repro.cga.config.CGAConfig`.
SELECTIONS: dict[str, Selector] = {
    "best2": best_two,
    "tournament": binary_tournament_pair,
    "random": random_pair,
    "rank": linear_rank_pair,
    "center+best": center_plus_best,
    "roulette": roulette_pair,
}

"""Engine lifecycle hooks.

Historically the sequential engines exposed a single undocumented
``on_generation`` callable; this module formalizes it as a small,
mutable protocol object with three slots:

* ``on_generation(engine, generation, evaluations)`` — after every
  completed generation (never for the initial snapshot);
* ``on_improvement(engine, generation, evaluations, best)`` — whenever
  the population best strictly improves between snapshots;
* ``on_stop(engine, result)`` — once, with the final
  :class:`~repro.cga.engine.RunResult`, before ``run`` returns;
* ``on_stall(engine, event)`` — from the observability watchdog, with a
  :class:`~repro.obs.watchdog.StallEvent`, when a worker's heartbeat
  has not advanced within the configured deadline.  Fired from the
  watchdog's monitor thread, never from the stalled worker itself.

Backward compatibility: everywhere a hooks object is accepted, a bare
callable still works and is treated as ``EngineHooks(on_generation=f)``
— :func:`as_hooks` performs that normalization.  The observability
layer (:mod:`repro.obs`) attaches through exactly this protocol.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["EngineHooks", "as_hooks"]


class EngineHooks:
    """Mutable bundle of the engine lifecycle callbacks."""

    __slots__ = ("on_generation", "on_improvement", "on_stop", "on_stall")

    def __init__(
        self,
        on_generation: Callable | None = None,
        on_improvement: Callable | None = None,
        on_stop: Callable | None = None,
        on_stall: Callable | None = None,
    ):
        self.on_generation = on_generation
        self.on_improvement = on_improvement
        self.on_stop = on_stop
        self.on_stall = on_stall

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        set_ = [s for s in self.__slots__ if getattr(self, s) is not None]
        return f"EngineHooks({', '.join(set_) or 'empty'})"


def as_hooks(hook: "EngineHooks | Callable | None") -> EngineHooks:
    """Normalize a bare ``on_generation`` callable into :class:`EngineHooks`.

    ``None`` yields an empty hooks object, an existing hooks object is
    returned as-is (not copied — engines may mutate it via the
    ``engine.on_generation`` compatibility property).
    """
    if hook is None:
        return EngineHooks()
    if isinstance(hook, EngineHooks):
        return hook
    if callable(hook):
        return EngineHooks(on_generation=hook)
    raise TypeError(
        f"expected EngineHooks, callable or None, got {type(hook).__name__}"
    )

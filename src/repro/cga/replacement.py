"""Replacement policies.

The paper's policy is *replace if better* (Table 1): the offspring
overwrites the current individual only when its makespan is strictly
smaller.  The alternatives are provided for the async/sync and
baseline studies (the Struggle GA uses its own similarity-based rule,
implemented in ``repro.baselines.struggle_ga``).
"""

from __future__ import annotations

from typing import Callable


__all__ = ["replace_if_better", "replace_if_not_worse", "replace_always", "REPLACEMENTS"]

Replacement = Callable[[float, float], bool]


def replace_if_better(offspring_fitness: float, current_fitness: float) -> bool:
    """Accept only strict improvements (elitist; the paper's rule)."""
    return offspring_fitness < current_fitness


def replace_if_not_worse(offspring_fitness: float, current_fitness: float) -> bool:
    """Accept ties too — more genetic drift, classical in cGAs."""
    return offspring_fitness <= current_fitness


def replace_always(offspring_fitness: float, current_fitness: float) -> bool:
    """Unconditional generational replacement (no elitism)."""
    return True


#: registry used by :class:`repro.cga.config.CGAConfig`.
REPLACEMENTS: dict[str, Replacement] = {
    "if-better": replace_if_better,
    "if-not-worse": replace_if_not_worse,
    "always": replace_always,
}

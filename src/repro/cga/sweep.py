"""Cell visitation (sweep) policies.

The paper uses a *fixed line sweep* in every block and reports having
"experimented different sweep orders for different blocks, in hope of
limiting memory contention", without finding a significant improvement
(§3.2).  These policies make that experiment repeatable:

* ``line``    — the paper's policy: row-major block order;
* ``reverse`` — line sweep backwards;
* ``shuffle`` — a fixed pseudo-random permutation per block (fixed
  means: determined by the block id, not by the run seed, so the policy
  is part of the algorithm definition, exactly as in the paper).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SWEEP_POLICIES", "sweep_order"]

#: policies accepted by :class:`repro.cga.config.CGAConfig`.
SWEEP_POLICIES = ("line", "reverse", "shuffle")

#: fixed root so shuffled orders are reproducible across runs and hosts.
_SHUFFLE_ROOT = 0xB10C


def sweep_order(block: np.ndarray, policy: str, block_id: int = 0) -> np.ndarray:
    """Visit order for the cells of one block under ``policy``."""
    if policy == "line":
        return np.asarray(block).copy()
    if policy == "reverse":
        return np.asarray(block)[::-1].copy()
    if policy == "shuffle":
        rng = np.random.default_rng(
            np.random.SeedSequence(_SHUFFLE_ROOT, spawn_key=(block_id,))
        )
        return rng.permutation(np.asarray(block))
    raise ValueError(f"unknown sweep policy {policy!r}; known: {', '.join(SWEEP_POLICIES)}")

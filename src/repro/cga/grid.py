"""Toroidal grid geometry and block partitioning (paper §3.1–3.2).

The population is arranged on a 2-D toroidal mesh; individuals are
numbered row-major ("the successor of an individual is its right
neighbor; we move to the next row when we reach the end of a row").
PA-CGA partitions this row-major sequence into ``#threads`` contiguous
blocks of near-equal size, one per thread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid2D"]


@dataclass(frozen=True)
class Grid2D:
    """A ``rows × cols`` toroidal grid of individuals."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        """Number of cells (population size)."""
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # index <-> coordinate
    # ------------------------------------------------------------------
    def coords(self, index: int | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-major index → (row, col)."""
        return np.divmod(index, self.cols)

    def index(self, row: int | np.ndarray, col: int | np.ndarray) -> np.ndarray:
        """(row, col) → row-major index, with toroidal wrap-around."""
        return (np.mod(row, self.rows)) * self.cols + np.mod(col, self.cols)

    def manhattan(self, a: int, b: int) -> int:
        """Toroidal Manhattan distance between two cells.

        Neighborhoods are "the closest individuals measured in Manhattan
        distance" (§3.1); the wrap-around makes every cell equivalent.
        """
        ra, ca = divmod(a, self.cols)
        rb, cb = divmod(b, self.cols)
        dr = abs(ra - rb)
        dc = abs(ca - cb)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    # ------------------------------------------------------------------
    # block partitioning (§3.2)
    # ------------------------------------------------------------------
    def partition(self, n_blocks: int) -> list[np.ndarray]:
        """Split the row-major order into ``n_blocks`` contiguous blocks.

        Sizes differ by at most one (the paper uses "a similar number of
        individuals" per block).  Returns one index array per block, in
        sweep order.
        """
        if not 1 <= n_blocks <= self.size:
            raise ValueError(
                f"n_blocks must be in [1, {self.size}], got {n_blocks}"
            )
        bounds = np.linspace(0, self.size, n_blocks + 1).astype(np.int64)
        return [np.arange(bounds[i], bounds[i + 1]) for i in range(n_blocks)]

    def partition_rows(self, n_blocks: int) -> list[np.ndarray]:
        """Split into blocks of whole rows (Fig. 2's picture).

        Requires ``n_blocks <= rows``; blocks get ``rows / n_blocks``
        rows each (±1).  Identical to :meth:`partition` when the cell
        count divides evenly by whole rows, but never splits a row.
        """
        if not 1 <= n_blocks <= self.rows:
            raise ValueError(f"n_blocks must be in [1, rows={self.rows}], got {n_blocks}")
        bounds = np.linspace(0, self.rows, n_blocks + 1).astype(np.int64)
        return [
            np.arange(bounds[i] * self.cols, bounds[i + 1] * self.cols)
            for i in range(n_blocks)
        ]

    def partition_tiles(self, n_blocks: int) -> list[np.ndarray]:
        """Split into a near-square grid of rectangular tiles.

        Tiles minimize perimeter-to-area ratio, i.e. cross-block
        neighborhood traffic, which matters as thread counts grow (the
        scaling direction of the paper's future work).  ``n_blocks``
        must factor as ``a × b`` with ``a <= rows`` and ``b <= cols``;
        the most square such factorization is chosen.
        """
        if not 1 <= n_blocks <= self.size:
            raise ValueError(f"n_blocks must be in [1, {self.size}], got {n_blocks}")
        best: tuple[int, int] | None = None
        for a in range(1, n_blocks + 1):
            if n_blocks % a:
                continue
            b = n_blocks // a
            if a <= self.rows and b <= self.cols:
                if best is None or abs(a - b) < abs(best[0] - best[1]):
                    best = (a, b)
        if best is None:
            raise ValueError(
                f"{n_blocks} blocks do not tile a {self.rows}x{self.cols} grid"
            )
        tile_rows, tile_cols = best
        row_bounds = np.linspace(0, self.rows, tile_rows + 1).astype(np.int64)
        col_bounds = np.linspace(0, self.cols, tile_cols + 1).astype(np.int64)
        blocks = []
        for i in range(tile_rows):
            for j in range(tile_cols):
                rows = np.arange(row_bounds[i], row_bounds[i + 1])
                cols = np.arange(col_bounds[j], col_bounds[j + 1])
                blocks.append((rows[:, None] * self.cols + cols[None, :]).ravel())
        return blocks

    def partition_scheme(self, n_blocks: int, scheme: str = "runs") -> list[np.ndarray]:
        """Dispatch on a named partition scheme.

        ``runs`` — contiguous row-major runs (the paper's partition);
        ``rows`` — whole-row blocks; ``tiles`` — rectangular tiles.
        """
        if scheme == "runs":
            return self.partition(n_blocks)
        if scheme == "rows":
            return self.partition_rows(n_blocks)
        if scheme == "tiles":
            return self.partition_tiles(n_blocks)
        raise ValueError(f"unknown partition scheme {scheme!r}; known: runs, rows, tiles")

    def boundary_fraction_of(self, blocks: list[np.ndarray], neighbor_tbl: np.ndarray) -> float:
        """Boundary fraction for an explicit block list."""
        if len(blocks) == 1:
            return 0.0
        block_id = np.empty(self.size, dtype=np.int64)
        for bid, block in enumerate(blocks):
            block_id[block] = bid
        neigh_block = block_id[neighbor_tbl]
        crosses = (neigh_block != block_id[:, None]).any(axis=1)
        return float(crosses.mean())

    def block_of(self, n_blocks: int, index: int) -> int:
        """Which block of a ``partition(n_blocks)`` a cell belongs to."""
        bounds = np.linspace(0, self.size, n_blocks + 1).astype(np.int64)
        return int(np.searchsorted(bounds, index, side="right") - 1)

    def boundary_fraction(self, n_blocks: int, neighbor_tbl: np.ndarray) -> float:
        """Fraction of individuals whose neighborhood leaves their block.

        This drives the synchronization cost in the paper's Fig. 4
        analysis ("a smaller block means that more individuals are on
        the boundary of the block").  Computed exactly from the actual
        neighbor table rather than estimated.
        """
        if n_blocks == 1:
            return 0.0
        bounds = np.linspace(0, self.size, n_blocks + 1).astype(np.int64)
        block_id = np.searchsorted(bounds, np.arange(self.size), side="right") - 1
        neigh_block = block_id[neighbor_tbl]  # (pop, k)
        crosses = (neigh_block != block_id[:, None]).any(axis=1)
        return float(crosses.mean())

    def __repr__(self) -> str:
        return f"Grid2D({self.rows}x{self.cols})"

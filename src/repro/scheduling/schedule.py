"""The (S, CT) schedule representation of §3.3.

The paper's key implementation idea is that completion times are *part
of the representation* and every operator updates them incrementally —
evaluation then reduces to a max over machines, and the update cost of
moving one task is O(1) instead of O(ntasks).  :class:`Schedule` is the
single-solution API used by heuristics, local search and the baselines;
the cellular GA engines operate on flat population arrays (see
``repro.cga.population``) with the same update discipline.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["compute_completion_times", "Schedule"]


def compute_completion_times(instance: ETCMatrix, assignment: np.ndarray) -> np.ndarray:
    """Completion time of every machine under ``assignment`` (eq. 2).

    ``completion[m] = ready[m] + sum of ETC[t][m] over tasks t with
    S[t] = m``.  Vectorized with ``np.add.at`` (unbuffered scatter-add).
    """
    assignment = np.asarray(assignment)
    ct = instance.ready_times.copy()
    np.add.at(ct, assignment, instance.etc[np.arange(instance.ntasks), assignment])
    return ct


class Schedule:
    """A mutable schedule: assignment vector + cached completion times.

    Parameters
    ----------
    instance:
        The ETC instance being scheduled.
    assignment:
        Initial ``(ntasks,)`` integer vector, ``assignment[t] = m``.
        Copied; the schedule owns its arrays.

    All mutators (:meth:`move`, :meth:`swap`, :meth:`apply_delta`,
    :meth:`set_assignment`) keep ``ct`` exact (up to float rounding; see
    :meth:`resync` for long mutation chains).
    """

    __slots__ = ("instance", "s", "ct")

    def __init__(self, instance: ETCMatrix, assignment: np.ndarray):
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape != (instance.ntasks,):
            raise ValueError(
                f"assignment shape {assignment.shape} != (ntasks={instance.ntasks},)"
            )
        if assignment.min(initial=0) < 0 or assignment.max(initial=0) >= instance.nmachines:
            raise ValueError("assignment contains out-of-range machine indices")
        self.instance = instance
        self.s = assignment.copy()
        self.ct = compute_completion_times(instance, self.s)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, instance: ETCMatrix, rng: np.random.Generator) -> "Schedule":
        """Uniformly random task-machine assignment."""
        s = rng.integers(0, instance.nmachines, size=instance.ntasks, dtype=np.int32)
        return cls(instance, s)

    def copy(self) -> "Schedule":
        """Deep copy (O(ntasks), no CT recomputation)."""
        out = object.__new__(Schedule)
        out.instance = self.instance
        out.s = self.s.copy()
        out.ct = self.ct.copy()
        return out

    # ------------------------------------------------------------------
    # objectives
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Finishing time of the latest machine (eq. 3) — the fitness."""
        return float(self.ct.max())

    def most_loaded_machine(self) -> int:
        """Machine whose completion time defines the makespan."""
        return int(self.ct.argmax())

    def tasks_on(self, machine: int) -> np.ndarray:
        """Indices of the tasks currently assigned to ``machine``."""
        return np.flatnonzero(self.s == machine)

    # ------------------------------------------------------------------
    # incremental mutators
    # ------------------------------------------------------------------
    def move(self, task: int, machine: int) -> None:
        """Reassign ``task`` to ``machine`` with an O(1) CT update."""
        old = self.s[task]
        if old == machine:
            return
        etc_t = self.instance.etc_t
        self.ct[old] -= etc_t[old, task]
        self.ct[machine] += etc_t[machine, task]
        self.s[task] = machine

    def swap(self, task_a: int, task_b: int) -> None:
        """Exchange the machines of two tasks with an O(1) CT update."""
        ma, mb = int(self.s[task_a]), int(self.s[task_b])
        if ma == mb:
            return
        etc_t = self.instance.etc_t
        self.ct[ma] += etc_t[ma, task_b] - etc_t[ma, task_a]
        self.ct[mb] += etc_t[mb, task_a] - etc_t[mb, task_b]
        self.s[task_a], self.s[task_b] = mb, ma

    def apply_delta(self, tasks: np.ndarray, machines: np.ndarray) -> None:
        """Reassign a batch of tasks, updating CT incrementally.

        This is the crossover workhorse: a child inherits a segment from
        the other parent, which is exactly "reassign these tasks".
        Vectorized: O(len(tasks)) regardless of ntasks.
        """
        tasks = np.asarray(tasks)
        machines = np.asarray(machines, dtype=np.int32)
        if tasks.shape != machines.shape:
            raise ValueError("tasks and machines must have the same shape")
        if tasks.size == 0:
            return
        old = self.s[tasks]
        etc = self.instance.etc
        np.subtract.at(self.ct, old, etc[tasks, old])
        np.add.at(self.ct, machines, etc[tasks, machines])
        self.s[tasks] = machines

    def set_assignment(self, assignment: np.ndarray) -> None:
        """Replace the whole assignment (full CT recomputation)."""
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape != self.s.shape:
            raise ValueError("assignment shape mismatch")
        self.s[:] = assignment
        self.ct[:] = compute_completion_times(self.instance, self.s)

    def resync(self) -> float:
        """Recompute CT from S; return the largest drift observed.

        Incremental float updates accumulate rounding over very long
        runs; engines call this at checkpoint boundaries.  Drift should
        be ~1e-9 relative — the validation tests assert that.
        """
        fresh = compute_completion_times(self.instance, self.s)
        drift = float(np.abs(fresh - self.ct).max())
        self.ct[:] = fresh
        return drift

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.instance == other.instance and bool(np.array_equal(self.s, other.s))

    def __repr__(self) -> str:
        return (
            f"Schedule({self.instance.name or '<instance>'}, "
            f"makespan={self.makespan():.2f})"
        )

"""Exact delta evaluation: O(moved) updates, O(1) makespan reads.

:func:`repro.scheduling.schedule.compute_completion_times` costs
O(ntasks) per call, and :class:`Schedule`'s incremental ``+=/-=``
updates — while fast — drift from the full recomputation by float
rounding over long mutation chains (hence :meth:`Schedule.resync`).
This module provides the third point in that design space: updates
that are *bit-identical* to the full recomputation at every step,
without paying for it.

The trick is that ``np.add.at`` (the recompute) accumulates each
machine's load left-to-right over tasks in ascending index order, in
float64.  :func:`sequential_loads` replays exactly that accumulation
for selected machines only, so recomputing just the two machines a
move touches yields the same bits as recomputing everything —
IEEE-754 addition is deterministic, only the *order* matters, and the
order per machine is independent of the other machines.

Makespan then needs a max over machines; :class:`PeakTracker` caches
the top three completion times so the common queries are O(1):

* ``max()`` — the makespan (the global peak);
* ``max_excluding(a, b)`` — the peak outside ≤2 machines (what a
  move/swap probe needs: three candidates minus two exclusions always
  leaves one, and a selection — unlike a sum — is exact by nature).

:class:`DeltaSchedule` composes the two into a mutable schedule whose
``ct`` equals ``compute_completion_times(instance, s)`` *bitwise* after
any chain of moves (the randomized contract test asserts this), with
O(tasks-on-two-machines) move cost and O(1) makespan.  The simulated
annealing baseline uses :class:`PeakTracker` directly to drop the
O(nmachines) ``np.delete(...).max()`` from its proposal loop while
producing a bit-identical trajectory.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import compute_completion_times

__all__ = ["sequential_loads", "PeakTracker", "DeltaSchedule"]


def sequential_loads(
    instance: ETCMatrix,
    assignment: np.ndarray,
    machines: Sequence[int] | None = None,
) -> np.ndarray:
    """Completion times for ``machines``, bit-identical to the recompute.

    Accumulates ``ready[m] + sum of ETC[t][m]`` left-to-right over the
    machine's tasks in ascending task order — the exact order
    ``np.add.at`` uses inside :func:`compute_completion_times` — so the
    result equals the full recomputation's entries bitwise.  Cost is
    O(ntasks) for the mask plus O(tasks on m) per machine.

    ``machines=None`` recomputes all of them (returns ``(nmachines,)``);
    otherwise the result aligns with the ``machines`` sequence.
    """
    s = np.asarray(assignment)
    etc_t = instance.etc_t
    ready = instance.ready_times
    if machines is None:
        machines = range(instance.nmachines)
    out = np.empty(len(machines), dtype=np.float64)
    for k, m in enumerate(machines):
        acc = float(ready[m])
        row = etc_t[m]
        for t in np.flatnonzero(s == m):
            acc += float(row[t])
        out[k] = acc
    return out


class PeakTracker:
    """Top-3 completion times over a live ``ct`` array, O(1) peak reads.

    The tracker holds a *reference* to ``ct`` (shared with whatever
    mutates it) and a cache of the three largest ``(machine, value)``
    pairs.  After mutating ``ct``, call :meth:`notify` with the touched
    machines: if none of them can perturb the cached top (untracked and
    still below the smallest cached peak) the cache stands; otherwise
    one O(nmachines) :meth:`refresh` rebuilds it.  Values are the
    identical float64 elements of ``ct``, so every query returns the
    same bits as the equivalent ``np.max`` expression.
    """

    __slots__ = ("ct", "_top")

    def __init__(self, ct: np.ndarray):
        self.ct = ct
        self.refresh()

    def refresh(self) -> None:
        """Rebuild the cache from ``ct`` (O(nmachines))."""
        ct = self.ct
        k = min(3, ct.size)
        idx = np.argpartition(ct, ct.size - k)[ct.size - k :]
        order = idx[np.argsort(ct[idx])][::-1]  # descending by value
        self._top = [(int(i), float(ct[i])) for i in order]

    def notify(self, machines: Iterable[int]) -> None:
        """Declare that ``ct[m]`` changed for each ``m`` in ``machines``."""
        floor = self._top[-1][1]
        tracked = [i for i, _ in self._top]
        for m in machines:
            if m in tracked or self.ct[m] >= floor:
                self.refresh()
                return

    def max(self) -> float:
        """The makespan: ``ct.max()`` in O(1)."""
        return self._top[0][1]

    def max_excluding(self, *exclude: int) -> float:
        """Largest completion time outside ≤2 ``exclude`` machines.

        Equals ``np.delete(ct, exclude).max(initial=0.0)`` — the cache
        holds three peaks, so excluding two still leaves the maximum of
        the remainder (0.0 when every machine is excluded).
        """
        for i, v in self._top:
            if i not in exclude:
                return v
        return 0.0


class DeltaSchedule:
    """A schedule whose ``ct`` is *bitwise* exact under any move chain.

    Same representation as :class:`~repro.scheduling.schedule.Schedule`
    (``s`` + cached ``ct``) but every mutation recomputes the touched
    machines with :func:`sequential_loads` instead of ``+=``/``-=``, so
    ``ct == compute_completion_times(instance, s)`` bit-for-bit at all
    times — no drift, no ``resync`` needed — while a move still costs
    only O(tasks on the two machines).  :meth:`makespan` is O(1) via
    the embedded :class:`PeakTracker`.
    """

    __slots__ = ("instance", "s", "ct", "peaks")

    def __init__(self, instance: ETCMatrix, assignment: np.ndarray):
        assignment = np.asarray(assignment, dtype=np.int32)
        if assignment.shape != (instance.ntasks,):
            raise ValueError(
                f"assignment shape {assignment.shape} != (ntasks={instance.ntasks},)"
            )
        if (
            assignment.min(initial=0) < 0
            or assignment.max(initial=0) >= instance.nmachines
        ):
            raise ValueError("assignment contains out-of-range machine indices")
        self.instance = instance
        self.s = assignment.copy()
        self.ct = compute_completion_times(instance, self.s)
        self.peaks = PeakTracker(self.ct)

    def makespan(self) -> float:
        """Current makespan in O(1)."""
        return self.peaks.max()

    def probe_move(self, task: int, machine: int) -> float:
        """Makespan *if* ``task`` moved to ``machine`` — without moving.

        O(tasks on the two machines); the returned value is bitwise the
        makespan :meth:`move` + :meth:`makespan` would produce.
        """
        old = int(self.s[task])
        if old == machine:
            return self.makespan()
        new_src = self._load_without(old, task)
        new_dst = self._load_with(machine, task)
        return max(self.peaks.max_excluding(old, machine), new_src, new_dst)

    def move(self, task: int, machine: int) -> None:
        """Reassign ``task``; exact O(moved) update of the two machines."""
        old = int(self.s[task])
        if old == machine:
            return
        self.s[task] = machine
        self.ct[[old, machine]] = sequential_loads(
            self.instance, self.s, (old, machine)
        )
        self.peaks.notify((old, machine))

    def apply_delta(self, tasks: np.ndarray, machines: np.ndarray) -> None:
        """Batch reassignment; recomputes every touched machine exactly."""
        tasks = np.asarray(tasks)
        machines = np.asarray(machines, dtype=np.int32)
        if tasks.shape != machines.shape:
            raise ValueError("tasks and machines must have the same shape")
        if tasks.size == 0:
            return
        touched = np.unique(np.concatenate([self.s[tasks], machines]))
        self.s[tasks] = machines
        self.ct[touched] = sequential_loads(self.instance, self.s, touched)
        self.peaks.notify(int(m) for m in touched)

    # -- probe helpers (ascending-order accumulation, see module doc) ----
    def _load_without(self, machine: int, task: int) -> float:
        row = self.instance.etc_t[machine]
        acc = float(self.instance.ready_times[machine])
        for t in np.flatnonzero(self.s == machine):
            if t != task:
                acc += float(row[t])
        return acc

    def _load_with(self, machine: int, task: int) -> float:
        mask = self.s == machine
        mask[task] = True
        row = self.instance.etc_t[machine]
        acc = float(self.instance.ready_times[machine])
        for t in np.flatnonzero(mask):
            acc += float(row[t])
        return acc

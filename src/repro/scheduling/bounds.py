"""Lower bounds on the optimal makespan.

``R||Cmax`` (unrelated machines) admits a natural LP relaxation: allow
tasks to be split fractionally across machines and minimize the maximum
machine load.  Its optimum lower-bounds every integral schedule, and on
the Braun instances it is far tighter than the area bound — the
experiment reports use it to express solution quality as "% above LP".

    minimize    C
    subject to  sum_m x[t,m] = 1              for every task t
                ready[m] + sum_t x[t,m] * ETC[t,m] <= C   for every m
                x >= 0

Solved with scipy's HiGHS backend; ~8k variables for 512x16 instances,
well under a second.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix, hstack

from repro.etc.model import ETCMatrix

__all__ = ["lp_lower_bound", "combined_lower_bound"]


def lp_lower_bound(instance: ETCMatrix) -> float:
    """Optimal value of the fractional-assignment LP relaxation."""
    n, m = instance.ntasks, instance.nmachines
    nx = n * m  # x[t, m] flattened row-major, plus the makespan variable C

    # objective: minimize C
    c = np.zeros(nx + 1)
    c[-1] = 1.0

    # equality: each task fully assigned
    rows = np.repeat(np.arange(n), m)
    cols = np.arange(nx)
    a_eq = csr_matrix((np.ones(nx), (rows, cols)), shape=(n, nx))
    a_eq = hstack([a_eq, csr_matrix((n, 1))], format="csr")
    b_eq = np.ones(n)

    # inequality: machine load minus C <= -ready[m]
    rows = np.tile(np.arange(m), n)
    data = instance.etc.ravel()  # row-major: x[t, m] gets ETC[t, m]
    a_load = csr_matrix((data, (rows, cols)), shape=(m, nx))
    a_ub = hstack([a_load, csr_matrix(-np.ones((m, 1)))], format="csr")
    b_ub = -instance.ready_times

    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * nx + [(0, None)],
        method="highs",
    )
    if not res.success:  # pragma: no cover - HiGHS is robust on this LP
        raise RuntimeError(f"LP lower bound failed: {res.message}")
    return float(res.fun)


def combined_lower_bound(instance: ETCMatrix) -> float:
    """The tightest bound available: max(LP relaxation, simple bounds)."""
    return max(lp_lower_bound(instance), instance.makespan_lower_bound())

"""Schedule representation and objectives for independent-task scheduling.

Implements the paper's solution representation (§3.3): an assignment
vector ``S`` (``S[t] = m``) plus an incrementally maintained
completion-time vector ``CT`` (``CT[m]`` = ready time of ``m`` + sum of
ETCs of the tasks assigned to it).  Makespan evaluation is then just
``CT.max()``.
"""

from repro.scheduling.schedule import Schedule, compute_completion_times
from repro.scheduling.delta import DeltaSchedule, PeakTracker, sequential_loads
from repro.scheduling.objectives import (
    flowtime,
    load_imbalance,
    machine_loads,
    makespan,
    utilization,
)
from repro.scheduling.validation import (
    InvalidScheduleError,
    check_completion_times,
    validate_assignment,
)

__all__ = [
    "Schedule",
    "compute_completion_times",
    "DeltaSchedule",
    "PeakTracker",
    "sequential_loads",
    "makespan",
    "flowtime",
    "machine_loads",
    "utilization",
    "load_imbalance",
    "InvalidScheduleError",
    "validate_assignment",
    "check_completion_times",
]

"""Schedule validity checks.

These are the invariants every operator must preserve; the test suite
calls them after each operator and the engines call them at checkpoint
boundaries when assertions are enabled.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import compute_completion_times

__all__ = ["InvalidScheduleError", "validate_assignment", "check_completion_times"]


class InvalidScheduleError(ValueError):
    """Raised when a schedule violates a representation invariant."""


def validate_assignment(instance: ETCMatrix, assignment: np.ndarray) -> None:
    """Check that ``assignment`` is a complete, in-range task mapping.

    Non-preemptive independent-task scheduling requires every task to be
    assigned to exactly one existing machine; the representation makes
    "exactly one" structural, so only range and shape can go wrong.
    """
    assignment = np.asarray(assignment)
    if assignment.shape != (instance.ntasks,):
        raise InvalidScheduleError(
            f"assignment shape {assignment.shape} != ({instance.ntasks},)"
        )
    if not np.issubdtype(assignment.dtype, np.integer):
        raise InvalidScheduleError(f"assignment dtype {assignment.dtype} is not integral")
    if assignment.size and (assignment.min() < 0 or assignment.max() >= instance.nmachines):
        bad = assignment[(assignment < 0) | (assignment >= instance.nmachines)]
        raise InvalidScheduleError(
            f"assignment maps tasks to non-existent machines (e.g. {bad[:5].tolist()}; "
            f"valid range is [0, {instance.nmachines - 1}])"
        )


def check_completion_times(
    instance: ETCMatrix,
    assignment: np.ndarray,
    ct: np.ndarray,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Check that cached completion times match a fresh computation.

    Incremental updates must agree with eq. 2 up to float rounding; a
    mismatch beyond tolerance means an operator forgot an update — the
    bug class the paper's representation makes possible.
    """
    fresh = compute_completion_times(instance, np.asarray(assignment))
    if not np.allclose(ct, fresh, rtol=rtol, atol=atol):
        worst = int(np.abs(ct - fresh).argmax())
        raise InvalidScheduleError(
            f"completion-time cache out of sync: machine {worst} cached {ct[worst]!r} "
            f"vs recomputed {fresh[worst]!r}"
        )

"""Objective functions for independent-task schedules.

The paper optimizes makespan only (eq. 1–3); flowtime and the
utilization metrics are provided because the surrounding literature
(Braun et al. 2001, Xhafa et al. 2008) reports them and the examples
use them to characterize schedules.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix
from repro.scheduling.schedule import compute_completion_times

__all__ = ["makespan", "machine_loads", "flowtime", "utilization", "load_imbalance"]


def makespan(instance: ETCMatrix, assignment: np.ndarray) -> float:
    """Completion time of the latest machine (eq. 3)."""
    return float(compute_completion_times(instance, assignment).max())


def machine_loads(instance: ETCMatrix, assignment: np.ndarray) -> np.ndarray:
    """Per-machine completion times (the paper calls these *loads*)."""
    return compute_completion_times(instance, assignment)


def flowtime(instance: ETCMatrix, assignment: np.ndarray) -> float:
    """Sum of task finishing times, with SPT order within each machine.

    Independent tasks on one machine minimize local flowtime when
    executed shortest-processing-time first, which is the convention of
    Xhafa et al.; the finishing time of the k-th task in SPT order is
    the prefix sum of ETCs, so per machine the flowtime is
    ``sum over k of (ready + prefix_sum_k)``.

    One lexsort by (machine, time) groups every machine's tasks as a
    contiguous ascending segment; a segmented cumulative sum then
    yields all per-machine SPT flowtimes in a single pass.  For segment
    ``[p0, p1)`` the flowtime is ``sum(cs[p0:p1]) - len * cs[p0 - 1]``
    plus the ready-time term, with ``cs`` the global prefix sum of the
    sorted times.  This is the single implementation: the weighted
    fitness (:mod:`repro.cga.fitness`) divides it by ``ntasks``.
    """
    assignment = np.asarray(assignment)
    nt = instance.ntasks
    v = instance.etc[np.arange(nt), assignment]  # ETC of each task on its machine
    order = np.lexsort((v, assignment))
    sv = v[order]
    sm = assignment[order]
    cs = np.cumsum(sv)
    starts = np.flatnonzero(np.r_[True, sm[1:] != sm[:-1]])
    counts = np.diff(np.append(starts, nt))
    before = np.concatenate(([0.0], cs))[starts]  # prefix sum before each segment
    return float(
        cs.sum()
        - float((counts * before).sum())
        + float((counts * instance.ready_times[sm[starts]]).sum())
    )


def utilization(instance: ETCMatrix, assignment: np.ndarray) -> float:
    """Average machine utilization in [0, 1]: mean(load) / makespan."""
    ct = compute_completion_times(instance, assignment)
    mx = ct.max()
    if mx <= 0:
        return 1.0
    return float(ct.mean() / mx)


def load_imbalance(instance: ETCMatrix, assignment: np.ndarray) -> float:
    """Relative gap between the most and least loaded machines."""
    ct = compute_completion_times(instance, assignment)
    mx = ct.max()
    if mx <= 0:
        return 0.0
    return float((mx - ct.min()) / mx)

"""Persistent engine-worker pool (fork) for the solve service.

The pool owns N long-lived worker processes, one task queue per worker
(so the scheduler always knows *which* worker holds *which* job — the
crash-retry path needs that attribution) and one shared result queue.
A fork-shared :class:`multiprocessing.Event` broadcasts the drain
request to every worker at once, the same pattern the shm engine uses
for its stall flags.

Crash detection is the OS's: each worker's ``Process.sentinel`` becomes
readable the moment the process dies, however it dies (uncaught
exception, ``os._exit``, SIGKILL).  The service polls
:meth:`reap_dead` each scheduler tick, gets back the dead worker ids
with their exit codes, and decides retry/fail; :meth:`restart` forks a
replacement onto the *same* queues, so queued hand-offs survive the
crash.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro.serve.worker import worker_main

__all__ = ["WorkerPool"]


class WorkerPool:
    """N forked engine workers with per-worker dispatch queues."""

    def __init__(self, n_workers: int, spool, options: dict | None = None):
        if n_workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {n_workers}")
        self.n_workers = int(n_workers)
        self.spool = spool
        self.options = dict(options or {})
        # fork keeps the registries/imports warm in the children; the
        # engines themselves fork the same way (repro.parallel.shm)
        self._ctx = mp.get_context("fork")
        self.drain_event = self._ctx.Event()
        self.result_q = self._ctx.Queue()
        self.task_qs = [self._ctx.Queue() for _ in range(self.n_workers)]
        self.procs: list = [None] * self.n_workers
        self.restarts = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "WorkerPool":
        for wid in range(self.n_workers):
            self._spawn(wid)
        return self

    def _spawn(self, wid: int) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                wid,
                str(self.spool),
                self.task_qs[wid],
                self.result_q,
                self.drain_event,
                self.options,
            ),
            name=f"serve-w{wid}",
            daemon=True,
        )
        proc.start()
        self.procs[wid] = proc

    def restart(self, wid: int) -> None:
        """Fork a replacement for a dead/killed worker ``wid``."""
        proc = self.procs[wid]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        self.restarts += 1
        self._spawn(wid)

    # -- dispatch / harvest --------------------------------------------------
    def dispatch(self, wid: int, task: dict) -> None:
        self.task_qs[wid].put(task)

    def poll(self, timeout_s: float = 0.05) -> dict | None:
        """Next worker message, or None after ``timeout_s``."""
        import queue

        try:
            return self.result_q.get(timeout=timeout_s)
        except queue.Empty:
            return None

    def reap_dead(self) -> list[tuple[int, int]]:
        """``(wid, exitcode)`` for every worker found dead this tick."""
        dead = []
        for wid, proc in enumerate(self.procs):
            if proc is not None and not proc.is_alive():
                proc.join(timeout=0.0)
                dead.append((wid, proc.exitcode if proc.exitcode is not None else -1))
                self.procs[wid] = None
        return dead

    def kill(self, wid: int) -> None:
        """SIGKILL one worker (stall escalation).

        The process object deliberately stays in ``procs``: the next
        :meth:`reap_dead` tick is what reports the death, so a stall
        kill flows through the exact same crash/retry/restart path as
        any other worker death.
        """
        proc = self.procs[wid]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    def n_alive(self) -> int:
        return sum(1 for p in self.procs if p is not None and p.is_alive())

    # -- shutdown -------------------------------------------------------------
    def drain(self) -> None:
        """Broadcast the drain flag and wake blocked workers."""
        self.drain_event.set()
        for q in self.task_qs:
            q.put(None)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Sentinel every queue, join, then terminate stragglers."""
        for q in self.task_qs:
            q.put(None)
        deadline = time.monotonic() + timeout_s
        for proc in self.procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        # drain the queue feeder threads so interpreter shutdown is clean
        self.result_q.cancel_join_thread()
        for q in self.task_qs:
            q.cancel_join_thread()

"""Job records, validation and the durable spool-backed job store.

A *job* is one solve request: problem, instance (registry spec or an
inline file payload), engine, config overrides, stop budget and seed.
Its record walks a small state machine::

    queued -> running -> done
                |   \\-> failed            (validation error, or retries
                |                           exhausted; postmortem linked)
                |-> retrying -> queued     (worker crash/stall, bounded
                |                           retries with backoff)
                \\-> parked  -> queued     (SIGTERM drain checkpointed it;
                                            requeued on restart)

Every state change is persisted as ``<spool>/jobs/<id>.json`` with the
same atomic write-temp + ``os.replace`` protocol the live publisher
uses, so a crashed or drained service recovers its queue exactly: on
startup :meth:`JobStore.recover` re-queues every non-terminal record,
and jobs that already wrote a checkpoint resume from it instead of
restarting (checkpoint format v3, :mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import fields
from pathlib import Path

from repro.obs.live import atomic_write_json

__all__ = [
    "TERMINAL_STATES",
    "JOB_STATES",
    "JobValidationError",
    "QueueFull",
    "ServiceDraining",
    "validate_job",
    "JobStore",
]

#: every state a job record can be in.
JOB_STATES = ("queued", "running", "retrying", "parked", "done", "failed")
#: states a recovered job is *not* re-queued from.
TERMINAL_STATES = ("done", "failed")


class JobValidationError(ValueError):
    """A submitted payload names an unknown problem/engine/field."""


class QueueFull(RuntimeError):
    """The bounded queue is at capacity (HTTP 429 + ``Retry-After``)."""

    def __init__(self, depth: int, limit: int, retry_after_s: float):
        super().__init__(f"queue full ({depth}/{limit} jobs queued)")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class ServiceDraining(RuntimeError):
    """The service received SIGTERM and no longer accepts jobs (503)."""


def _validate_instance(problem, spec) -> str | dict:
    """An instance is a loader spec string or an inline file payload."""
    if isinstance(spec, str) and spec:
        return spec
    if isinstance(spec, dict):
        unknown = sorted(set(spec) - {"name", "content"})
        if unknown:
            raise JobValidationError(
                f"inline instance payload has unknown keys: {', '.join(unknown)} "
                "(expected {'name', 'content'})"
            )
        if not isinstance(spec.get("content"), str) or not spec["content"]:
            raise JobValidationError(
                "inline instance payload needs non-empty string 'content' "
                "(the instance file body the problem's loader understands)"
            )
        return {"name": str(spec.get("name") or "inline"), "content": spec["content"]}
    raise JobValidationError(
        "'instance' must be an instance spec string (see `repro problems`) "
        "or an inline payload {'name': ..., 'content': ...}"
    )


def validate_job(payload: dict) -> dict:
    """Normalize one submitted payload into a job ``spec`` dict.

    Raises :class:`JobValidationError` with the same registry-aware
    messages the CLI prints — unknown problems/engines list the valid
    names, config overrides are validated field-by-field by actually
    constructing the :class:`~repro.cga.config.CGAConfig`, and budgets
    by constructing the :class:`~repro.cga.config.StopCondition`.
    """
    from repro.cga.config import CGAConfig, StopCondition
    from repro.problems import problem_names, resolve_problem
    from repro.runtime.registry import checkpointable_engines, resolve_engine

    if not isinstance(payload, dict):
        raise JobValidationError(f"job payload must be an object, got {type(payload).__name__}")
    known = {"problem", "instance", "engine", "config", "budget", "seed", "inject"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise JobValidationError(
            f"unknown job fields: {', '.join(unknown)} (valid fields: {', '.join(sorted(known))})"
        )

    try:
        problem = resolve_problem(payload.get("problem", "independent"))
    except ValueError as exc:
        raise JobValidationError(str(exc)) from None
    try:
        spec = resolve_engine(payload.get("engine", "async"))
    except ValueError as exc:
        raise JobValidationError(str(exc)) from None
    if not spec.checkpointable:
        raise JobValidationError(
            f"engine {spec.name!r} does not support checkpoints, so its jobs "
            "cannot be made durable; checkpointable engines: "
            f"{', '.join(checkpointable_engines())}"
        )

    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise JobValidationError("'config' must be an object of CGAConfig overrides")
    reserved = {"problem", "obs"}
    bad = sorted((set(overrides) - {f.name for f in fields(CGAConfig)}) | (set(overrides) & reserved))
    if bad:
        raise JobValidationError(
            f"invalid config overrides: {', '.join(bad)} "
            "(any CGAConfig field except 'problem'/'obs')"
        )
    try:
        config = CGAConfig(problem=problem.name, **overrides)
    except (TypeError, ValueError) as exc:
        raise JobValidationError(f"invalid config overrides: {exc}") from None
    if not spec.threaded and config.n_threads != 1:
        raise JobValidationError(
            f"engine {spec.name!r} is single-stream; 'n_threads' must be 1"
        )

    budget = payload.get("budget") or {"max_evaluations": 5000}
    if not isinstance(budget, dict):
        raise JobValidationError("'budget' must be an object of StopCondition bounds")
    bad = sorted(set(budget) - {f.name for f in fields(StopCondition)})
    if bad:
        valid = ", ".join(f.name for f in fields(StopCondition))
        raise JobValidationError(f"invalid budget bounds: {', '.join(bad)} (valid: {valid})")
    try:
        StopCondition(**budget)
    except (TypeError, ValueError) as exc:
        raise JobValidationError(f"invalid budget: {exc}") from None

    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise JobValidationError(f"'seed' must be a non-negative integer, got {seed!r}")

    inject = payload.get("inject") or None
    if inject is not None:
        if not isinstance(inject, dict) or sorted(set(inject) - {"crash_after_generations", "crash_attempts", "hang_after_generations"}):
            raise JobValidationError(
                "'inject' supports crash_after_generations, crash_attempts "
                "and hang_after_generations (test-only; requires the service "
                "to run with fault injection enabled)"
            )

    return {
        "problem": problem.name,
        "instance": _validate_instance(problem, payload.get("instance", problem.default_instance)),
        "engine": spec.name,
        "config": dict(overrides),
        "budget": dict(budget),
        "seed": seed,
        "inject": inject,
    }


class JobStore:
    """In-memory job table mirrored to ``<spool>/jobs/*.json``.

    Thread-safe (one lock around the table); every mutation goes
    through :meth:`update` so the on-disk record can never drift from
    the in-memory one by more than the write in progress — and that
    write is atomic.
    """

    def __init__(self, spool):
        self.spool = Path(spool)
        self.dir = self.spool / "jobs"
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, dict] = {}
        self._seq = 0

    # -- creation / recovery ----------------------------------------------
    def create(self, spec: dict, max_retries: int) -> dict:
        """Mint a queued job record for a validated ``spec``."""
        with self._lock:
            self._seq += 1
            job = {
                "id": uuid.uuid4().hex[:12],
                "seq": self._seq,
                "state": "queued",
                "spec": spec,
                "submitted_unix": round(time.time(), 3),
                "started_unix": None,
                "finished_unix": None,
                "attempts": 0,
                "max_retries": max_retries,
                "worker": None,
                "progress": None,
                "result": None,
                "error": None,
                "checkpoint": None,
                "resumed": False,
                "postmortem": None,
            }
            self._jobs[job["id"]] = job
            self._persist(job)
            return dict(job)

    def recover(self) -> list[dict]:
        """Load the spool; re-queue every non-terminal record.

        Returns the re-queued jobs in submission order.  Jobs that were
        ``running``/``retrying``/``parked`` when the previous process
        died come back as ``queued`` (their checkpoint, if any, makes
        the re-run a resume, not a restart).
        """
        requeued = []
        with self._lock:
            records = []
            for path in self.dir.glob("*.json"):
                try:
                    import json

                    record = json.loads(path.read_text(encoding="utf-8"))
                except (ValueError, OSError):
                    continue  # torn file: ignore, never crash recovery
                if isinstance(record, dict) and record.get("id"):
                    records.append(record)
                # anything else is a foreign file sharing the directory
                # (e.g. a linked <id>-postmortem.json crash record)
            records.sort(key=lambda j: j.get("seq", 0))
            for job in records:
                self._jobs[job["id"]] = job
                self._seq = max(self._seq, job.get("seq", 0))
                if job["state"] not in TERMINAL_STATES:
                    job["state"] = "queued"
                    job["worker"] = None
                    self._persist(job)
                    requeued.append(dict(job))
        return requeued

    # -- access ------------------------------------------------------------
    def get(self, job_id: str) -> dict | None:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def list(self) -> list[dict]:
        """All records, submission order (copies; safe to serialize)."""
        with self._lock:
            return [dict(j) for j in sorted(self._jobs.values(), key=lambda j: j["seq"])]

    def counts(self) -> dict[str, int]:
        """``state -> count`` over the whole table."""
        with self._lock:
            out = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                out[job["state"]] = out.get(job["state"], 0) + 1
            return out

    # -- mutation -----------------------------------------------------------
    def update(self, job_id: str, **changes) -> dict:
        """Apply ``changes`` to one record and persist it atomically."""
        with self._lock:
            job = self._jobs[job_id]
            state = changes.get("state")
            if state is not None and state not in JOB_STATES:
                raise ValueError(f"unknown job state {state!r}")
            job.update(changes)
            self._persist(job)
            return dict(job)

    def _persist(self, job: dict) -> None:
        atomic_write_json(self.dir / f"{job['id']}.json", job)

"""The engine worker process of the solve service.

One worker is a long-lived forked process running a task loop: take a
job from its task queue, build (or resume) the engine through the
:class:`~repro.runtime.registry.EngineSpec` registry, run it under
checkpoint v3, and stream progress back on the shared result queue.
Amortization is the whole point of keeping the process alive:

* instances are held in an :class:`~repro.serve.cache.LRUCache` keyed
  by ``(problem, instance spec)`` — a 512x16 benchmark matrix loads
  once, not once per request;
* the runtime's seed-schedule cache
  (:func:`repro.runtime.context.enable_seed_cache`) memoizes the
  Min-min/NEH seeding pass per instance, so population setup for the
  Nth job on an instance is array initialization only.

Durability: every job runs via
:func:`~repro.runtime.checkpoint.run_with_checkpoints` into
``<spool>/checkpoints/<job>.ckpt``.  A drain request (fork-shared
event, set by the service's SIGTERM handler) interrupts the run at the
next generation boundary, saves a final checkpoint and reports the job
``parked``; a crash simply kills the process — the checkpoint already
on disk is what the retry resumes from.  The whole loop runs inside
:class:`~repro.obs.flight.worker_crash_scope`, so an escaping exception
leaves ``flight/postmortem-w<i>.json`` behind for the service to link
into the job record (rendered by ``repro obs postmortem``).
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

__all__ = ["worker_main", "DrainInterrupt"]

#: progress messages are throttled to this cadence per running job.
PROGRESS_EVERY_S = 0.2


class DrainInterrupt(BaseException):
    """Raised from the generation hook to park the running job.

    Derives from ``BaseException`` so no engine-internal ``except
    Exception`` can accidentally swallow the drain request.
    """


def _resolve_instance(problem, instance_spec, spool: Path, cache):
    """Load the job's instance through the problem's loader, cached.

    Inline payloads are spooled to a content-addressed file first, so
    identical payloads share one cache entry and a resumed job can
    rebuild its instance after a restart.
    """
    if isinstance(instance_spec, str):
        key = (problem.name, instance_spec)
        return cache.get_or_load(key, lambda: problem.load_instance(instance_spec))
    digest = hashlib.sha256(instance_spec["content"].encode("utf-8")).hexdigest()[:16]
    path = spool / "instances" / f"{instance_spec['name']}-{digest}.inst"
    if not path.is_file():
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(instance_spec["content"], encoding="utf-8")
        os.replace(tmp, path)
    key = (problem.name, digest)
    return cache.get_or_load(key, lambda: problem.load_instance(str(path)))


def _build_engine(task: dict, instance, ckpt: Path):
    """Fresh engine or checkpoint resume; returns ``(engine, stop)``."""
    from repro.cga.config import CGAConfig, StopCondition
    from repro.runtime.checkpoint import resume_engine
    from repro.runtime.registry import resolve_engine

    spec = task["spec"]
    if ckpt.is_file():
        engine, stop = resume_engine(str(ckpt), instance=instance)
        if stop is None:
            stop = StopCondition(**spec["budget"])
        return engine, stop, True
    engine_spec = resolve_engine(spec["engine"])
    config = CGAConfig(problem=spec["problem"], **spec["config"])
    extras = {}
    if engine_spec.name in ("threads", "shm"):
        # only the deterministic lockstep schedule quiesces at sweep
        # boundaries, which checkpoint durability requires
        extras["lockstep"] = True
    engine = engine_spec.create(instance, config, seed=spec["seed"], **extras)
    return engine, StopCondition(**spec["budget"]), False


def _run_job(task: dict, instance, spool: Path, result_q, drain_event, options, ring):
    """Execute one job; returns the terminal message for the parent."""
    from repro.runtime.checkpoint import run_with_checkpoints, save_checkpoint

    job_id = task["id"]
    ckpt = spool / "checkpoints" / f"{job_id}.ckpt"
    ckpt.parent.mkdir(parents=True, exist_ok=True)
    engine, stop, resumed = _build_engine(task, instance, ckpt)

    inject = task["spec"].get("inject") if options.get("fault_injection") else None
    crash_after = hang_after = None
    if inject:
        if task["attempts"] <= inject.get("crash_attempts", 1):
            crash_after = inject.get("crash_after_generations")
        hang_after = inject.get("hang_after_generations")

    last_sent = 0.0

    def on_generation(eng, generation, evaluations):
        nonlocal last_sent
        if crash_after is not None and generation >= crash_after:
            ring.record("inject", f"crash job={job_id[:8]}", float(generation))
            raise RuntimeError(
                f"injected worker crash (job {job_id}, generation {generation})"
            )
        if hang_after is not None and generation >= hang_after:
            ring.record("inject", f"hang job={job_id[:8]}", float(generation))
            time.sleep(3600.0)
        now = time.monotonic()
        if now - last_sent >= PROGRESS_EVERY_S or generation <= 1:
            last_sent = now
            _, best = eng.pop.best()
            result_q.put(
                {
                    "kind": "progress",
                    "wid": options["wid"],
                    "job": job_id,
                    "generation": int(generation),
                    "evaluations": int(evaluations),
                    "best": float(best),
                }
            )
        if drain_event.is_set():
            raise DrainInterrupt()

    engine.hooks.on_generation = on_generation
    ring.record("job.start", f"{job_id[:8]} {task['spec']['engine']}", task["attempts"])
    t0 = time.monotonic()
    try:
        result = run_with_checkpoints(
            engine, stop, ckpt, every_generations=options.get("checkpoint_every", 1)
        )
    except DrainInterrupt:
        # park at the current boundary: one explicit final snapshot so
        # the resume loses nothing, then hand the job back
        save_checkpoint(engine, ckpt, stop=stop)
        ring.record("job.parked", job_id[:8])
        return {
            "kind": "parked",
            "wid": options["wid"],
            "job": job_id,
            "checkpoint": str(ckpt),
        }
    elapsed = time.monotonic() - t0
    ring.record("job.done", job_id[:8], float(result.best_fitness))
    return {
        "kind": "done",
        "wid": options["wid"],
        "job": job_id,
        "elapsed_s": round(elapsed, 6),
        "resumed": resumed,
        "checkpoint": str(ckpt),
        "result": {
            "best_fitness": float(result.best_fitness),
            "evaluations": int(result.evaluations),
            "generations": int(result.generations),
        },
    }


def worker_main(wid: int, spool, task_q, result_q, drain_event, options: dict) -> None:
    """Entry point of one forked engine worker (runs until sentinel).

    ``options``: ``checkpoint_every``, ``fault_injection``,
    ``instance_cache`` (LRU capacity), ``seed_cache`` (LRU capacity).
    """
    from repro.obs.flight import FlightRecorder, flight_paths, worker_crash_scope
    from repro.problems import resolve_problem
    from repro.runtime.context import enable_seed_cache, seed_cache_stats
    from repro.serve.cache import LRUCache

    spool = Path(spool)
    role = f"w{wid}"
    options = dict(options, wid=wid)
    ring = FlightRecorder(flight_paths(spool, role)["ring"])
    instances = LRUCache(options.get("instance_cache", 8))
    enable_seed_cache(options.get("seed_cache", 16))

    with worker_crash_scope(spool, role, ring):
        ring.record("worker.start", f"pid={os.getpid()}")
        result_q.put({"kind": "ready", "wid": wid, "pid": os.getpid()})
        while True:
            task = task_q.get()
            if task is None:  # shutdown sentinel
                ring.record("worker.stop")
                break
            try:
                problem = resolve_problem(task["spec"]["problem"])
                instance = _resolve_instance(
                    problem, task["spec"]["instance"], spool, instances
                )
                message = _run_job(
                    task, instance, spool, result_q, drain_event, options, ring
                )
            except DrainInterrupt:
                # drain arrived between generations of setup: requeue as-is
                message = {"kind": "parked", "wid": wid, "job": task["id"], "checkpoint": None}
            except (ValueError, OSError, TypeError) as exc:
                # deterministic job-level failure: no point retrying
                ring.record("job.error", f"{type(exc).__name__}"[:36])
                message = {
                    "kind": "error",
                    "wid": wid,
                    "job": task["id"],
                    "error": f"{type(exc).__name__}: {exc}",
                }
            message["caches"] = {
                "instances": instances.stats(),
                "seeds": seed_cache_stats(),
            }
            result_q.put(message)
            if drain_event.is_set():
                ring.record("worker.drain")
                break

"""The solve service core: bounded queue, dispatch, retries, drain.

:class:`SolveService` is transport-agnostic — the asyncio HTTP front
end (:mod:`repro.serve.http`) is one thin client of it, tests drive it
directly.  One background scheduler thread owns every state
transition:

* **admission** — :meth:`submit` validates the payload
  (:func:`repro.serve.jobs.validate_job`), and applies backpressure:
  a full bounded queue raises :class:`~repro.serve.jobs.QueueFull`
  carrying a throughput-derived ``Retry-After`` estimate, a draining
  service raises :class:`~repro.serve.jobs.ServiceDraining`;
* **dispatch** — FIFO over idle workers of the persistent
  :class:`~repro.serve.pool.WorkerPool`;
* **failure handling** — a dead worker (crash, stall SIGKILL) is
  detected via its process sentinel; its job retries from the last
  checkpoint with exponential backoff up to ``max_retries``, and the
  worker's flight postmortem record is copied next to the job record
  and linked from it (``repro obs postmortem <spool>`` renders it);
* **drain** — :meth:`drain` (the CLI wires SIGTERM to it) stops
  admission, interrupts in-flight jobs at their next generation
  boundary (they checkpoint and report ``parked``) and stops the
  pool; a new service on the same spool re-queues parked/queued jobs
  and *resumes* them from their checkpoints.

Metrics live in one :class:`~repro.obs.metrics.MetricRecorder`
(`serve.*` namespace) rendered by
:func:`repro.obs.live.render_openmetrics` — the same exposition path
every solve bundle uses, so operators point the same scraper at
either.
"""

from __future__ import annotations

import shutil
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.flight import flight_paths
from repro.obs.live import atomic_write_json, render_openmetrics
from repro.obs.metrics import MetricRecorder
from repro.serve.jobs import JobStore, QueueFull, ServiceDraining, validate_job
from repro.serve.pool import WorkerPool

__all__ = ["SolveService"]


class SolveService:
    """A long-lived solve-as-a-service process (see module docstring)."""

    def __init__(
        self,
        spool,
        workers: int = 2,
        queue_limit: int = 64,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        stall_deadline_s: float | None = None,
        checkpoint_every: int = 1,
        fault_injection: bool = False,
        obs_out=None,
        obs_resources: bool = False,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.queue_limit = int(queue_limit)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.stall_deadline_s = stall_deadline_s
        self.obs_out = Path(obs_out) if obs_out is not None else None
        self.store = JobStore(self.spool)
        self.metrics = MetricRecorder("serve")
        self.pool = WorkerPool(
            workers,
            self.spool,
            options={
                "checkpoint_every": int(checkpoint_every),
                "fault_injection": bool(fault_injection),
            },
        )
        self._queue: deque[str] = deque()  # job ids ready to dispatch
        self._retries: list[tuple[float, str]] = []  # (due_monotonic, job id)
        self._busy: dict[int, str] = {}  # wid -> in-flight job id
        self._ready: set[int] = set()  # workers that reported in
        self._activity: dict[str, float] = {}  # job id -> last progress (monotonic)
        self._engine_tput: dict[str, list[float]] = {}  # engine -> [evals, seconds]
        self._lock = threading.Lock()
        self._mlock = threading.Lock()  # guards self.metrics (see _inc)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._drained = threading.Event()  # all in-flight jobs parked/finished
        self._thread: threading.Thread | None = None
        self._resources = None
        if obs_resources:
            out = (self.obs_out or self.spool) / "resources.jsonl"
            from repro.obs.resources import ResourceSampler

            self._resources = ResourceSampler(
                out_path=out, role="serve", recorder=self.metrics
            )

    # -- metrics --------------------------------------------------------------
    # Unlike the engine recorders (strictly single-writer by the obs
    # subsystem's rules), the service recorder has writers on the
    # scheduler thread, the asyncio event-loop thread (submit, HTTP
    # request counters, /metrics gauge refresh) and the resource
    # sampler, so every read-modify-write goes through these locked
    # helpers.  The sampler itself only ``set_gauge``s — one atomic
    # dict store per key — which needs no lock.
    def _inc(self, key: str, value: float = 1.0) -> None:
        with self._mlock:
            self.metrics.inc(key, value)

    def _observe(self, key: str, value: float) -> None:
        with self._mlock:
            self.metrics.observe(key, value)

    def _gauge(self, key: str, value: float) -> None:
        with self._mlock:
            self.metrics.set_gauge(key, value)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "SolveService":
        """Recover the spool, fork the pool, start the scheduler."""
        for job in self.store.recover():
            ckpt = self.spool / "checkpoints" / f"{job['id']}.ckpt"
            if ckpt.is_file():
                self.store.update(job["id"], checkpoint=str(ckpt), resumed=True)
                self._inc("serve.jobs.recovered_with_checkpoint")
            self._queue.append(job["id"])
            self._inc("serve.jobs.recovered")
        self.pool.start()
        if self._resources is not None:
            self._resources.start()
        self._thread = threading.Thread(target=self._loop, name="serve-scheduler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Hard stop (tests/atexit); :meth:`drain` is the graceful path."""
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        self.pool.stop()
        if self._resources is not None:
            self._resources.stop()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful SIGTERM path; returns True when nothing was lost.

        Stops admission, asks every worker to park its job at the next
        generation boundary, waits for the in-flight set to empty, then
        stops the scheduler and pool.  Queued jobs stay ``queued`` in
        the spool — a restart picks every one of them up.
        """
        self._draining.set()
        self._inc("serve.drains")
        self.pool.drain()
        clean = self._drained.wait(timeout=timeout_s)
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.pool.stop(timeout_s=5.0)
        if self._resources is not None:
            self._resources.stop()
        self._publish_live(force=True)
        return clean

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- admission ------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Validate + enqueue one job; returns its (copied) record."""
        if self._draining.is_set():
            self._inc("serve.jobs.rejected_draining")
            raise ServiceDraining("service is draining; retry against the restarted instance")
        spec = validate_job(payload)  # raises JobValidationError
        with self._lock:
            depth = len(self._queue) + len(self._retries)
            if depth >= self.queue_limit:
                self._inc("serve.jobs.rejected_full")
                raise QueueFull(depth, self.queue_limit, self._retry_after_s(depth))
            job = self.store.create(spec, max_retries=self.max_retries)
            self._queue.append(job["id"])
        self._inc("serve.jobs.submitted")
        return job

    def _retry_after_s(self, depth: int) -> float:
        """Back-of-envelope drain time of the current queue."""
        with self._mlock:
            hist = self.metrics.histograms.get("serve.job.duration_s")
            per_job = (hist.mean if hist is not None and hist.count else 1.0)
        return max(1.0, per_job * depth / max(1, self.pool.n_workers))

    # -- queries ----------------------------------------------------------------
    def job(self, job_id: str) -> dict | None:
        return self.store.get(job_id)

    def jobs(self) -> list[dict]:
        return self.store.list()

    def snapshot(self) -> dict:
        """One JSON-ready service snapshot (health endpoint, live.json)."""
        counts = self.store.counts()
        with self._lock:
            queue_depth = len(self._queue) + len(self._retries)
            inflight = len(self._busy)
        return {
            "draining": self._draining.is_set(),
            "queue_depth": queue_depth,
            "queue_limit": self.queue_limit,
            "inflight": inflight,
            "workers": self.pool.n_workers,
            "workers_alive": self.pool.n_alive(),
            "jobs": counts,
        }

    def openmetrics(self) -> str:
        """The ``/metrics`` body (OpenMetrics text exposition)."""
        snap = self.snapshot()
        with self._lock:
            # copy: the scheduler thread setdefault()s new engines
            tput = {k: tuple(v) for k, v in self._engine_tput.items()}
        with self._mlock:
            self.metrics.set_gauge("serve.queue.depth", snap["queue_depth"])
            self.metrics.set_gauge("serve.queue.limit", snap["queue_limit"])
            self.metrics.set_gauge("serve.jobs.inflight", snap["inflight"])
            self.metrics.set_gauge("serve.workers.alive", snap["workers_alive"])
            self.metrics.set_gauge("serve.draining", 1.0 if snap["draining"] else 0.0)
            for state, n in snap["jobs"].items():
                self.metrics.set_gauge(f"serve.jobs.state.{state}", float(n))
            for engine, (evals, seconds) in tput.items():
                if seconds > 0:
                    self.metrics.set_gauge(
                        f"serve.engine.{engine}.evals_per_s", evals / seconds
                    )
            return render_openmetrics(self.metrics.snapshot())

    # -- the scheduler thread ----------------------------------------------------
    def _loop(self) -> None:
        last_live = 0.0
        while not self._stopped.is_set():
            self._handle_message(self.pool.poll(timeout_s=0.05))
            self._handle_deaths()
            self._check_stalls()
            self._promote_due_retries()
            self._dispatch_ready()
            if self._draining.is_set() and not self._busy:
                self._drained.set()
            now = time.monotonic()
            if now - last_live >= 0.5:
                last_live = now
                self._publish_live()

    def _handle_message(self, msg: dict | None) -> None:
        if msg is None:
            return
        kind, wid = msg.get("kind"), msg.get("wid")
        if kind == "ready":
            self._ready.add(wid)
            return
        job_id = msg["job"]
        if kind == "progress":
            self._activity[job_id] = time.monotonic()
            self.store.update(
                job_id,
                progress={
                    "generation": msg["generation"],
                    "evaluations": msg["evaluations"],
                    "best": msg["best"],
                    "updated_unix": round(time.time(), 3),
                },
            )
            return
        # terminal-ish messages free the worker
        with self._lock:
            if self._busy.get(wid) == job_id:
                del self._busy[wid]
        self._activity.pop(job_id, None)
        caches = msg.get("caches")
        if caches:
            for name, stats in caches.items():
                if stats:
                    self._gauge(f"serve.cache.{name}.w{wid}.hits", stats["hits"])
                    self._gauge(f"serve.cache.{name}.w{wid}.misses", stats["misses"])
        if kind == "done":
            job = self.store.update(
                job_id,
                state="done",
                finished_unix=round(time.time(), 3),
                result=msg["result"],
                resumed=msg["resumed"],
                checkpoint=msg.get("checkpoint"),
            )
            self._inc("serve.jobs.completed")
            if msg["resumed"]:
                self._inc("serve.jobs.resumed")
            self._observe("serve.job.duration_s", msg["elapsed_s"])
            with self._lock:
                tput = self._engine_tput.setdefault(job["spec"]["engine"], [0.0, 0.0])
                tput[0] += msg["result"]["evaluations"]
                tput[1] += msg["elapsed_s"]
        elif kind == "parked":
            self.store.update(job_id, state="parked", checkpoint=msg.get("checkpoint"), worker=None)
            self._inc("serve.jobs.parked")
        elif kind == "error":
            self.store.update(
                job_id,
                state="failed",
                finished_unix=round(time.time(), 3),
                error=msg["error"],
            )
            self._inc("serve.jobs.failed")

    def _handle_deaths(self) -> None:
        for wid, exitcode in self.pool.reap_dead():
            self._ready.discard(wid)
            with self._lock:
                job_id = self._busy.pop(wid, None)
            if self._draining.is_set():
                # a worker exiting during drain is the normal path; a
                # job it still held parks via its checkpoint on restart
                if job_id is not None:
                    self.store.update(job_id, state="parked", worker=None)
                    self._inc("serve.jobs.parked")
                continue
            if job_id is not None:
                self._crashed(job_id, wid, exitcode)
            self.pool.restart(wid)
            self._inc("serve.workers.restarts")

    def _crashed(self, job_id: str, wid: int, exitcode: int) -> None:
        """Crash/stall handling: link postmortem, retry or fail."""
        self._inc("serve.jobs.crashed")
        self._activity.pop(job_id, None)
        postmortem = self._link_postmortem(job_id, wid)
        job = self.store.get(job_id)
        attempts = job["attempts"]
        ckpt = self.spool / "checkpoints" / f"{job_id}.ckpt"
        changes = {
            "worker": None,
            "postmortem": postmortem,
            "checkpoint": str(ckpt) if ckpt.is_file() else None,
            "error": f"worker w{wid} died (exit code {exitcode})",
        }
        if attempts > self.max_retries:
            self.store.update(
                job_id, state="failed", finished_unix=round(time.time(), 3), **changes
            )
            self._inc("serve.jobs.failed")
            return
        backoff = self.retry_backoff_s * (2 ** (attempts - 1))
        self.store.update(job_id, state="retrying", **changes)
        self._inc("serve.jobs.retried")
        with self._lock:
            self._retries.append((time.monotonic() + backoff, job_id))

    def _link_postmortem(self, job_id: str, wid: int) -> str | None:
        """Copy the dead worker's postmortem record next to the job."""
        source = flight_paths(self.spool, f"w{wid}")["postmortem"]
        if not source.is_file():
            return None
        dest = self.store.dir / f"{job_id}-postmortem.json"
        try:
            shutil.copyfile(source, dest)
        except OSError:
            return str(source)
        return str(dest)

    def _check_stalls(self) -> None:
        if self.stall_deadline_s is None or self._draining.is_set():
            return
        now = time.monotonic()
        with self._lock:
            stalled = [
                (wid, job_id)
                for wid, job_id in self._busy.items()
                if now - self._activity.get(job_id, now) > self.stall_deadline_s
            ]
        for wid, job_id in stalled:
            self._inc("serve.jobs.stalled")
            # SIGKILL only; the dead process stays in pool.procs so the
            # next _handle_deaths tick reaps it and runs the crash path
            # (retry/fail + restart) exactly like any other worker death
            self.pool.kill(wid)

    def _promote_due_retries(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [job_id for t, job_id in self._retries if t <= now]
            self._retries = [(t, j) for t, j in self._retries if t > now]
            self._queue.extend(due)
        for job_id in due:
            self.store.update(job_id, state="queued")

    def _dispatch_ready(self) -> None:
        if self._draining.is_set():
            return
        while True:
            with self._lock:
                idle = [
                    wid
                    for wid in self._ready
                    if wid not in self._busy
                    and self.pool.procs[wid] is not None
                    and self.pool.procs[wid].is_alive()
                ]
                if not idle or not self._queue:
                    return
                wid = idle[0]
                job_id = self._queue.popleft()
                self._busy[wid] = job_id
            job = self.store.get(job_id)
            job = self.store.update(
                job_id,
                state="running",
                worker=wid,
                attempts=job["attempts"] + 1,
                started_unix=job["started_unix"] or round(time.time(), 3),
            )
            self._activity[job_id] = time.monotonic()
            self.pool.dispatch(wid, {"id": job_id, "spec": job["spec"], "attempts": job["attempts"]})
            self._inc("serve.jobs.dispatched")

    def _publish_live(self, force: bool = False) -> None:
        if self.obs_out is None:
            return
        with self._mlock:
            metrics = self.metrics.snapshot()
        snap = {"service": self.snapshot(), "metrics": metrics}
        try:
            self.obs_out.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self.obs_out / "live.json", snap)
        except OSError:  # pragma: no cover - disk full etc.; never kill the loop
            if force:
                raise

"""Asyncio HTTP/JSON front end for the solve service (stdlib only).

A deliberately minimal HTTP/1.1 server on ``asyncio.start_server`` —
no framework, no dependency.  Each connection handles one request and
closes (``Connection: close``); the handlers never block the event
loop, because every slow operation (validation aside) is a queue append
or a spool-file read performed by :class:`~repro.serve.service
.SolveService` under its own locks.

Endpoints (see ``docs/serving.md`` for the full reference):

========  ==================  =============================================
method    path                behaviour
========  ==================  =============================================
POST      ``/jobs``           submit a solve job -> 202 + job record;
                              400 invalid, 429 + ``Retry-After`` when the
                              bounded queue is full, 503 while draining
GET       ``/jobs``           list job records (submission order)
GET       ``/jobs/<id>``      one job record (live progress included)
GET       ``/metrics``        OpenMetrics text exposition
GET       ``/healthz``        service snapshot (queue depth, workers, ...)
========  ==================  =============================================

``run_service`` wires SIGTERM/SIGINT to the graceful drain: stop
accepting, park in-flight jobs via checkpoint, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.obs.live import OPENMETRICS_CONTENT_TYPE
from repro.serve.jobs import JobValidationError, QueueFull, ServiceDraining

__all__ = ["HttpFrontend", "run_service"]

_MAX_BODY = 4 * 1024 * 1024  # inline instance payloads fit well under this
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpFrontend:
    """One asyncio HTTP server bound to a :class:`SolveService`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # 0 -> ephemeral; .port is rewritten after bind
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "HttpFrontend":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing -----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            status, headers, body = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            status, headers, body = 500, {}, _json_bytes({"error": f"internal error: {exc}"})
        try:
            writer.write(_render_response(status, headers, body))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(self, reader) -> tuple[int, dict, bytes]:
        request = await _read_request(reader)
        if request is None:
            return 400, {}, _json_bytes({"error": "malformed HTTP request"})
        method, path, body = request
        # _inc: the recorder is shared with the scheduler thread
        self.service._inc("serve.http.requests")
        self.service._inc(f"serve.http.{method.lower()}")
        if path == "/jobs" and method == "POST":
            return self._post_job(body)
        if path == "/jobs" and method == "GET":
            return 200, {}, _json_bytes({"jobs": self.service.jobs()})
        if path.startswith("/jobs/") and method == "GET":
            job = self.service.job(path[len("/jobs/") :])
            if job is None:
                return 404, {}, _json_bytes({"error": "no such job"})
            return 200, {}, _json_bytes(job)
        if path == "/metrics" and method == "GET":
            text = self.service.openmetrics()
            return 200, {"Content-Type": OPENMETRICS_CONTENT_TYPE}, text.encode("utf-8")
        if path == "/healthz" and method == "GET":
            return 200, {}, _json_bytes(self.service.snapshot())
        if path in ("/jobs", "/metrics", "/healthz") or path.startswith("/jobs/"):
            return 405, {}, _json_bytes({"error": f"{method} not allowed on {path}"})
        return 404, {}, _json_bytes({"error": f"no route for {path}"})

    def _post_job(self, body: bytes) -> tuple[int, dict, bytes]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, _json_bytes({"error": f"body is not valid JSON: {exc}"})
        if not isinstance(payload, dict):
            return 400, {}, _json_bytes({"error": "body must be a JSON object"})
        try:
            job = self.service.submit(payload)
        except JobValidationError as exc:
            return 400, {}, _json_bytes({"error": str(exc)})
        except QueueFull as exc:
            headers = {"Retry-After": str(max(1, round(exc.retry_after_s)))}
            return 429, headers, _json_bytes(
                {"error": str(exc), "queue_depth": exc.depth, "queue_limit": exc.limit}
            )
        except ServiceDraining as exc:
            return 503, {}, _json_bytes({"error": str(exc)})
        accepted = {"id": job["id"], "state": job["state"], "url": f"/jobs/{job['id']}"}
        return 202, {}, _json_bytes(accepted)


async def _read_request(reader) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request; None on anything malformed."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, target = parts[0].upper(), parts[1].split("?", 1)[0]
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return None
    if length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    return method, target, body


def _json_bytes(obj) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


def _render_response(status: int, headers: dict, body: bytes) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    merged = {
        "Content-Type": "application/json",
        **headers,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    lines.extend(f"{k}: {v}" for k, v in merged.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def run_service(service, host: str = "127.0.0.1", port: int = 0, ready=print) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully; returns exit code.

    ``ready`` is called with the ``serving on http://host:port`` line
    once the socket is bound (port 0 resolves to the real ephemeral
    port first) — tests and the smoke benchmark parse it.
    """

    async def _main() -> int:
        service.start()
        frontend = await HttpFrontend(service, host, port).start()
        ready(f"serving on http://{frontend.host}:{frontend.port}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        # graceful drain: stop accepting first, then park in-flight work
        await frontend.close()
        clean = await asyncio.to_thread(service.drain)
        return 0 if clean else 1

    try:
        return asyncio.run(_main())
    finally:
        service.stop()

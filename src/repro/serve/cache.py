"""Bounded LRU caches for the solve service's worker processes.

A worker serves many small jobs; loading a 512x16 benchmark matrix or
re-running Min-min/NEH seeding for every request would dominate the
service's latency.  :class:`LRUCache` is the one cache primitive the
serve layer uses — instances in the worker loop
(:mod:`repro.serve.worker`) and seed schedules in
:mod:`repro.runtime.context`'s optional seed-schedule cache both sit
behind it.  Hit/miss counters are plain integers the owner can export
as metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

__all__ = ["LRUCache"]


class LRUCache:
    """A plain bounded mapping with least-recently-used eviction.

    Not thread-safe by design: every serve worker owns a private cache
    (the same single-writer rule as the obs metric recorders).
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        """Return the cached value (refreshing its recency) or ``default``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting the oldest entry when full."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def get_or_load(self, key, loader: Callable):
        """``get`` with a miss-path ``loader()`` whose result is cached."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = loader()
            self.put(key, value)
        return value

    def stats(self) -> dict:
        """Hit/miss/size counters, ready for a metrics gauge export."""
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }

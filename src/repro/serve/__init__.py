"""Solve-as-a-service: an asynchronous HTTP front end over the engines.

``repro serve`` turns the reproduction into a long-lived service: an
asyncio HTTP/JSON API (:mod:`repro.serve.http`) accepts solve jobs, a
bounded queue applies backpressure, and a scheduler
(:mod:`repro.serve.service`) dispatches to a persistent pool of forked
engine workers (:mod:`repro.serve.pool` / :mod:`repro.serve.worker`)
that reuse the :class:`~repro.runtime.registry.EngineSpec` registry,
checkpoint v3 durability and the flight-recorder crash machinery.

See ``docs/serving.md`` (API reference) and ``docs/operations.md``
(operator runbook).
"""

from repro.serve.cache import LRUCache
from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobStore,
    JobValidationError,
    QueueFull,
    ServiceDraining,
    validate_job,
)
from repro.serve.service import SolveService

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobStore",
    "JobValidationError",
    "LRUCache",
    "QueueFull",
    "ServiceDraining",
    "SolveService",
    "validate_job",
]

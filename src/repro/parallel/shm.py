"""Block-parallel PA-CGA over POSIX shared memory and batch kernels.

The thread engine (:mod:`repro.parallel.threads`) reproduces the
paper's architecture but the GIL serializes its scalar breeding loop;
the process engine (:mod:`repro.parallel.processes`) escapes the GIL
but pays ~8 exclusive lock acquisitions per scalar breeding step.
:class:`ShmBlockPACGA` combines the fixes: each forked worker breeds
its *whole block at once* with the batch kernels of
:mod:`repro.kernels` (one NumPy generation per sweep, exactly the
:class:`~repro.cga.vectorized.VectorizedSyncCGA` recipe applied
per block), and the population arrays live in named
``multiprocessing.shared_memory`` segments — zero-copy across the
fork, nothing pickled, no locks.

Asynchrony and the seqlock boundary protocol
--------------------------------------------
Within a block a sweep is synchronous (children bred against the block
as frozen at sweep start — the vectorized semantics); *across* blocks
updates are asynchronous exactly as in the paper: a worker publishes
accepted children immediately and neighbors read whatever version is
current.  Torn reads of a row that is mid-write are prevented without
locks by per-cell sequence counters (seqlock):

* the writer bumps ``seq[c]`` to an odd value, writes the row
  (``s``, ``ct``, ``fitness``), then bumps it back to even;
* a reader snapshots ``seq``, copies the rows, re-reads ``seq`` and
  retries any row whose counter changed or was odd.

Only cells some *other* block reads (the boundary set computed by
:func:`repro.runtime.context.partition_ownership`) pay the two stamp
writes; interior cells — the vast majority for the paper's grids — are
written with plain array stores.  The protocol assumes aligned 8-byte
loads/stores are atomic and store order is preserved (true on x86-64's
TSO model and for CPython's serialized bytecode dispatch; each numpy
element store is a single machine store).

Stale *values* are fine — that is the paper's asynchronous semantics —
the seqlock only guarantees each row read is internally consistent, so
the CT-invariant (``ct`` exact for ``s``) holds for every row a worker
breeds from.

Shared-memory lifecycle
-----------------------
Segments are created named (visible in ``/dev/shm``) at construction
and unlinked in ``run()``'s ``finally`` — on normal exit, on any
exception, and after a stall-kill — plus a ``weakref.finalize``
backstop for engines that are never run.  Unlinking removes the name
only; the mappings stay valid in the parent and every forked child, so
the population outlives the name and repeated ``run()`` calls need no
re-attachment.

Determinism: free-running forked workers interleave block publications
nondeterministically (real asynchrony); ``lockstep=True`` serializes
the block sweeps round-robin in the calling process — identical
genetics, streams and budget split, pinned interleaving — which is the
mode the universal checkpoint layer snapshots and resumes bit-exactly.

Worker collapse on oversubscribed hosts
---------------------------------------
Forking more workers than the machine has cores cannot add
parallelism — it only shrinks each worker's batch from ``pop/N`` rows
toward zero while every sweep still pays the same fixed Python/numpy
kernel-dispatch cost (the ``shm(4) < shm(1)`` throughput anomaly on
single-core boxes).  Free-running mode therefore forks only
``min(n_threads, cpu_count)`` processes and hands each one a
contiguous *group* of blocks that it breeds as a single fused batch:
block ownership, budget shares and per-worker counters keep the
configured ``n_threads`` granularity, but the kernel batch stays at
``pop/n_procs`` rows, so the per-sweep fixed cost is paid once per
process instead of once per logical worker.  On a machine with enough
cores the groups are singletons and nothing changes.  Pass
``oversubscribe=True`` (or set ``REPRO_SHM_OVERSUBSCRIBE=1``) to force
the full one-process-per-block fan-out — the observability smokes use
this to exercise real multi-process crash/stall attribution anywhere.

``stall_kill_s`` arms a parent-side watchdog over the fork-shared
heartbeat counters (free-running mode): a worker whose heartbeat does
not advance for that long gets the whole worker group terminated and
the run fails loudly instead of hanging — segments are still unlinked.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult
from repro.cga.hooks import as_hooks
from repro.kernels import resolve_batch_ops
from repro.obs.dynamics import record_batch_attribution
from repro.runtime.budget import Budget
from repro.runtime.context import (
    attach_runtime,
    build_context,
    detach_runtime,
    finish_run,
    partition_ownership,
)

__all__ = ["ShmBlockPACGA"]

#: process-local counter making segment names unique within one parent.
_ARENA_IDS = itertools.count()


def _release_segment_handles(seg: shared_memory.SharedMemory) -> None:
    """Drop ``seg``'s own handles on the mapping, keeping views alive.

    The numpy arrays created from ``seg.buf`` keep the underlying mmap
    alive through their base chain; the fd is not needed once mapped.
    Without this, ``SharedMemory.__del__`` → ``close()`` raises
    ``BufferError: cannot close exported pointers exist`` at interpreter
    shutdown in every process (parent and forked children) that still
    holds a view.  ``unlink()`` only needs the name and still works.
    """
    if seg._fd >= 0:
        os.close(seg._fd)
        seg._fd = -1
    seg._buf = None
    seg._mmap = None


class _ShmArena:
    """Named shared-memory segments backing one engine's arrays.

    ``fields`` maps array name -> ``(dtype, shape)``; one segment is
    created per field so layouts stay independent and a leak is
    attributable by name (``repro-shm-<pid>-<id>-<field>``).
    """

    __slots__ = ("segments", "arrays", "_unlinked")

    def __init__(self, fields: dict):
        self.segments: dict[str, shared_memory.SharedMemory] = {}
        self.arrays: dict[str, np.ndarray] = {}
        self._unlinked = False
        token = f"repro-shm-{os.getpid()}-{next(_ARENA_IDS)}"
        try:
            for name, (dtype, shape) in fields.items():
                count = int(np.prod(shape))
                seg = shared_memory.SharedMemory(
                    create=True,
                    name=f"{token}-{name}",
                    size=max(count * np.dtype(dtype).itemsize, 1),
                )
                arr = np.frombuffer(seg.buf, dtype=dtype, count=count).reshape(shape)
                arr[...] = 0
                _release_segment_handles(seg)
                self.segments[name] = seg
                self.arrays[name] = arr
        except BaseException:
            self.unlink()
            raise

    def unlink(self) -> None:
        """Remove the ``/dev/shm`` names (idempotent); mappings survive."""
        if self._unlinked:
            return
        self._unlinked = True
        for seg in self.segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass


class ShmBlockPACGA:
    """PA-CGA: one forked worker per block, batch kernels per sweep.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    config:
        Algorithm parameterization; ``config.n_threads`` blocks/workers.
        Operator names must have batch kernels (``ValueError`` at
        construction otherwise — same rule as the vectorized engine).
    seed:
        Root of the per-worker seed tree (same topology as threads /
        processes: stream 0 initializes the population, streams 1..n
        drive the workers).
    obs:
        Optional :class:`repro.obs.Observer`; workers record private
        metrics shipped back over a queue at exit, heartbeats live on a
        fork-shared RawArray the parent's watchdog/publisher read.
    hooks:
        Optional :class:`~repro.cga.hooks.EngineHooks`.
    lockstep:
        Serialize the block sweeps round-robin in the calling process
        (deterministic, checkpointable) instead of forking free-running
        workers.
    stall_kill_s:
        Free-running mode: terminate the worker group and raise if any
        worker's heartbeat stalls this long (None disables).
    oversubscribe:
        Free-running mode: fork one process per block even when that
        exceeds the core count (default collapses workers to
        ``min(n_threads, cpu_count)`` fused-batch processes — see the
        module docstring).  ``REPRO_SHM_OVERSUBSCRIBE=1`` forces this
        from the environment.
    """

    engine_name = "shm"

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        obs=None,
        hooks=None,
        lockstep: bool = False,
        stall_kill_s: float | None = None,
        oversubscribe: bool = False,
    ):
        try:
            self._mpctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "ShmBlockPACGA requires the 'fork' start method (POSIX); "
                "use ThreadedPACGA or SimulatedPACGA instead"
            ) from exc
        cfg = config or CGAConfig()
        n_cells = cfg.grid.size
        self._arena = _ShmArena(
            {
                "s": (np.int32, (n_cells, instance.ntasks)),
                "ct": (np.float64, (n_cells, instance.nmachines)),
                "fitness": (np.float64, (n_cells,)),
                "seq": (np.uint64, (n_cells,)),
            }
        )
        arrays = self._arena.arrays
        ctx = build_context(
            instance,
            config,
            seed=seed,
            workers=cfg.n_threads,
            pop_arrays=(arrays["s"], arrays["ct"], arrays["fitness"]),
            obs=obs,
        )
        self.instance = instance
        self.config = ctx.config
        self.hooks = as_hooks(hooks)
        self.lockstep = lockstep
        self.stall_kill_s = stall_kill_s
        self.oversubscribe = oversubscribe
        self.grid = ctx.grid
        self.neighbors = ctx.neighbors
        self.blocks = ctx.blocks
        self.ops = ctx.ops
        self._init_rng, self._worker_rngs = ctx.init_rng, ctx.worker_rngs
        self.pop = ctx.pop
        self.crosses = ctx.crosses
        self.obs = ctx.obs
        self._batch = resolve_batch_ops(self.config, problem=self.pop.problem)
        self._seq = arrays["seq"]
        self._block_id, self._shared_read = partition_ownership(
            self.neighbors, self.blocks, n_cells
        )
        #: per-block neighbor tables, pre-gathered once
        self._nb_blocks = [self.neighbors[block] for block in self.blocks]
        #: boundary breeding steps per sweep of each block (cells whose
        #: neighborhood leaves the block — the same count the threads /
        #: processes families report as ``boundary_evals``)
        self._boundary_per_sweep = [int(self.crosses[b].sum()) for b in self.blocks]
        n = self.config.n_threads
        self._eval_counts = [0] * n
        self._gen_counts = [0] * n
        #: per-leader fused sweep plans, set by :meth:`_run_free` when
        #: workers collapse (None = one sweep unit per block)
        self._plans: dict | None = None
        self._n_procs = 0
        self._resume: dict | None = None
        self._ckpt = None
        self._finalizer = weakref.finalize(self, self._arena.unlink)

    # ------------------------------------------------------------------
    # checkpoint protocol (runtime.checkpoint) — mirrors ThreadedPACGA
    # ------------------------------------------------------------------
    def arm_checkpoint(self, every, saver) -> None:
        """Install a round-boundary checkpoint callback (lockstep only)."""
        if saver is not None and not self.lockstep:
            raise ValueError(
                "mid-run checkpoints require lockstep=True: free-running "
                "forked workers interleave block publications "
                "nondeterministically and cannot be snapshotted at a "
                "consistent boundary"
            )
        self._ckpt = None if saver is None else (every, saver)

    def capture_state(self) -> dict:
        """Per-worker RNG streams plus the cumulative worker counters."""
        return {
            "rng_streams": {
                "workers": [r.bit_generator.state for r in self._worker_rngs]
            },
            "progress": {
                "eval_counts": list(self._eval_counts),
                "gen_counts": list(self._gen_counts),
            },
            "engine_options": {"lockstep": self.lockstep},
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a :meth:`capture_state` payload; next ``run`` resumes it."""
        states = payload["rng_streams"]["workers"]
        if len(states) != len(self._worker_rngs):
            raise ValueError(
                f"checkpoint has {len(states)} worker streams, "
                f"engine has {len(self._worker_rngs)}"
            )
        for rng, state in zip(self._worker_rngs, states):
            rng.bit_generator.state = state
        progress = payload.get("progress")
        if progress and any(progress.get("eval_counts", ())):
            self._resume = {
                "eval_counts": [int(e) for e in progress["eval_counts"]],
                "gen_counts": [int(g) for g in progress["gen_counts"]],
            }
        else:
            self._resume = None

    # ------------------------------------------------------------------
    # the block sweep (one batch generation over one block)
    # ------------------------------------------------------------------
    def _seq_gather(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Consistent copies of foreign rows via the seqlock protocol."""
        pop, seq = self.pop, self._seq
        m = ids.size
        s_out = np.empty((m, self.instance.ntasks), dtype=pop.s.dtype)
        ct_out = np.empty((m, self.instance.nmachines), dtype=pop.ct.dtype)
        pending = np.arange(m)
        spins = 0
        while pending.size:
            pids = ids[pending]
            before = seq[pids].copy()
            s_out[pending] = pop.s[pids]
            ct_out[pending] = pop.ct[pids]
            after = seq[pids]
            ok = (before == after) & (before % 2 == 0)
            if ok.all():
                break
            pending = pending[~ok]
            spins += 1
            if spins > 4:  # pragma: no cover - timing-dependent
                time.sleep(0)  # yield so the writer can finish the row
        return s_out, ct_out

    def _foreign(self, tid: int, ids: np.ndarray, plan: dict | None) -> np.ndarray:
        """Positions in ``ids`` owned by another process' sweep unit."""
        if plan is None:
            return np.flatnonzero(self._block_id[ids] != tid)
        return np.flatnonzero(plan["group_id"][ids] != plan["gid"])

    def _gather_rows(
        self, tid: int, ids: np.ndarray, plan: dict | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Copy parent rows; foreign rows go through :meth:`_seq_gather`."""
        pop = self.pop
        s_out = pop.s[ids]  # fancy indexing copies
        ct_out = pop.ct[ids]
        foreign = self._foreign(tid, ids, plan)
        if foreign.size:
            fs, fct = self._seq_gather(ids[foreign])
            s_out[foreign] = fs
            ct_out[foreign] = fct
        return s_out, ct_out

    def _gather_s(
        self, tid: int, ids: np.ndarray, plan: dict | None = None
    ) -> np.ndarray:
        """Genomes only — the second parent's CT row is never read.

        Recombination derives the child's CT from the *first* parent's
        (genome, CT) pair plus the inherited genes, so gathering the
        second parent's CT row was pure overhead: an extra
        ``(B, nmachines)`` float64 copy per sweep plus seqlock retries
        whenever a neighbor was mid-publish in that row.  Foreign rows
        still seqlock the genome so a torn half-written permutation can
        never enter a crossover.
        """
        pop, seq = self.pop, self._seq
        s_out = pop.s[ids]  # fancy indexing copies
        foreign = self._foreign(tid, ids, plan)
        if foreign.size:
            fids = ids[foreign]
            pending = np.arange(foreign.size)
            spins = 0
            while pending.size:
                pids = fids[pending]
                before = seq[pids].copy()
                s_out[foreign[pending]] = pop.s[pids]
                after = seq[pids]
                ok = (before == after) & (before % 2 == 0)
                if ok.all():
                    break
                pending = pending[~ok]
                spins += 1
                if spins > 4:  # pragma: no cover - timing-dependent
                    time.sleep(0)  # yield so the writer can finish the row
        return s_out

    def _publish(
        self,
        rows: np.ndarray,
        s_rows: np.ndarray,
        ct_rows: np.ndarray,
        fit_rows: np.ndarray,
        shared_read: np.ndarray | None = None,
    ) -> int:
        """Write accepted children back; boundary rows seqlock-stamped.

        Returns the number of seqlock-stamped (boundary) publications.
        ``shared_read`` overrides the block-granularity visibility mask
        (fused sweep units stamp only rows some *other process* reads).
        """
        pop, seq = self.pop, self._seq
        mask = self._shared_read if shared_read is None else shared_read
        shared = mask[rows]
        sh = np.flatnonzero(shared)
        if sh.size:
            srows = rows[sh]
            seq[srows] += 1  # odd: readers retry these rows
            pop.s[srows] = s_rows[sh]
            pop.ct[srows] = ct_rows[sh]
            pop.fitness[srows] = fit_rows[sh]
            seq[srows] += 1  # even: rows consistent again
        pr = np.flatnonzero(~shared)
        if pr.size:
            prows = rows[pr]
            pop.s[prows] = s_rows[pr]
            pop.ct[prows] = ct_rows[pr]
            pop.fitness[prows] = fit_rows[pr]
        return int(sh.size)

    def _step_block(
        self, tid: int, rng: np.random.Generator, rec=None
    ) -> tuple[int, int]:
        """One batch generation over block ``tid``.

        Returns ``(replacements, boundary_publishes)``.  ``rec`` is the
        worker's private metric recorder; when given, the sweep's
        operator outcomes are folded into its ``op.*`` counters via
        :func:`repro.obs.dynamics.record_batch_attribution`.

        The phase order and per-phase RNG consumption mirror
        :meth:`repro.cga.vectorized.VectorizedSyncCGA.run` exactly, so
        a one-block run is the vectorized engine modulo the seed tree.

        When :meth:`_run_free` collapsed oversubscribed workers, ``tid``
        is a group leader and the sweep covers the group's fused cells
        (``self._plans[tid]``) in one batch.
        """
        pop, cfg, inst = self.pop, self.config, self.instance
        batch = self._batch
        plan = self._plans.get(tid) if self._plans is not None else None
        if plan is None:
            block = self.blocks[tid]
            nb = self._nb_blocks[tid]  # (B, k) global cell ids
            shared_read = None
        else:
            block = plan["cells"]
            nb = plan["nb"]
            shared_read = plan["shared"]
        B = block.size
        # selection: neighborhood fitness is read lock-free — stale
        # values are the paper's asynchronous semantics, and each
        # float64 read is a single aligned load (no tearing)
        fit_nb = pop.fitness[nb]
        a, b = batch.select(fit_nb, rng)
        r = np.arange(B)
        p1 = nb[r, a]
        p2 = nb[r, b]
        child_s, child_ct = self._gather_rows(tid, p1, plan)
        comb = rng.random(B) < cfg.p_comb
        mask = batch.cross_mask(B, inst.ntasks, rng, comb)
        if comb.any():
            p2_s = self._gather_s(tid, p2, plan)
            child_s = batch.recombine(inst, child_s, child_ct, p2_s, mask)
        mut = rng.random(B) < cfg.p_mut
        batch.mutate(child_s, child_ct, inst, rng, mut)
        ls_rows = np.empty(0, dtype=np.int64)
        if batch.local_search is not None and cfg.ls_iterations > 0:
            ls_rows = np.flatnonzero(rng.random(B) < cfg.p_ls)
            if ls_rows.size == B:
                batch.local_search(
                    child_s, child_ct, inst, rng, cfg.ls_iterations, cfg.ls_candidates
                )
            elif ls_rows.size:
                sub_s = child_s[ls_rows]
                sub_ct = child_ct[ls_rows]
                batch.local_search(
                    sub_s, sub_ct, inst, rng, cfg.ls_iterations, cfg.ls_candidates
                )
                child_s[ls_rows] = sub_s
                child_ct[ls_rows] = sub_ct
        child_fit = batch.fitness(child_s, child_ct, inst)
        incumbent = pop.fitness[block]  # fancy indexing copies the incumbents
        accept = batch.accept(child_fit, incumbent)
        if rec is not None:
            ls_mask = np.zeros(B, dtype=bool)
            ls_mask[ls_rows] = True
            record_batch_attribution(
                rec.counters,
                accept,
                child_fit,
                incumbent,
                crossover=comb,
                mutation=mut,
                ls=ls_mask if ls_rows.size else None,
            )
        acc = np.flatnonzero(accept)
        pubs = 0
        if acc.size:
            pubs = self._publish(
                block[acc], child_s[acc], child_ct[acc], child_fit[acc], shared_read
            )
        return int(acc.size), pubs

    # ------------------------------------------------------------------
    def run(self, stop: StopCondition) -> RunResult:
        """Evolve all blocks until ``stop``; unlink the segments after."""
        resume, self._resume = self._resume, None
        n = self.config.n_threads
        self._eval_counts = list(resume["eval_counts"]) if resume else [0] * n
        self._gen_counts = list(resume["gen_counts"]) if resume else [0] * n
        self._n_procs = 0  # reported only by free-running runs
        try:
            if self.lockstep:
                return self._run_lockstep(stop)
            return self._run_free(stop)
        finally:
            self._plans = None
            self._arena.unlink()

    def _result(self, budget: Budget) -> RunResult:
        eval_counts, gen_counts = self._eval_counts, self._gen_counts
        best_idx, best_fit = self.pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=self.pop.s[best_idx].copy(),
            evaluations=sum(eval_counts),
            generations=min(gen_counts) if gen_counts else 0,
            elapsed_s=budget.elapsed,
            history=[],
            extra={
                "per_thread_evaluations": list(eval_counts),
                "per_thread_generations": list(gen_counts),
                "n_threads": self.config.n_threads,
                "lockstep": self.lockstep,
                "boundary_cells": int(self._shared_read.sum()),
                **(
                    {"worker_processes": self._n_procs} if self._n_procs else {}
                ),
            },
        )
        return finish_run(
            self,
            result,
            engine_name=self.engine_name,
            meta={"n_threads": self.config.n_threads},
        )

    # ------------------------------------------------------------------
    def _run_lockstep(self, stop: StopCondition) -> RunResult:
        """Deterministic serialized mode: round-robin block sweeps."""
        n = self.config.n_threads
        budget = Budget(stop)
        share = budget.eval_share(n)
        evals, gens = self._eval_counts, self._gen_counts
        board = attach_runtime(self, n, lambda: (min(gens), sum(evals)))
        obs = self.obs
        # per-block recorders: lockstep runs in one process, so the
        # workers' sweep/boundary/attribution metrics land directly in
        # the parent registry (free-running ships them over the queue)
        recs = [obs.recorder(str(tid)) for tid in range(n)] if obs is not None else None
        budget.start()
        rounds = 0
        try:
            active = [True] * n
            while any(active):
                for tid in range(n):
                    if not active[tid]:
                        continue
                    if budget.worker_exhausted(evals[tid], gens[tid], share):
                        active[tid] = False
                        if board is not None:
                            board.mark_done(tid)
                        continue
                    rec = recs[tid] if recs is not None else None
                    replaced, pubs = self._step_block(
                        tid, self._worker_rngs[tid], rec
                    )
                    evals[tid] += self.blocks[tid].size
                    gens[tid] += 1
                    if rec is not None:
                        rec.inc("sweeps")
                        rec.inc("breeding.evaluations", self.blocks[tid].size)
                        rec.inc("breeding.steps", self.blocks[tid].size)
                        rec.inc("breeding.replacements", replaced)
                        rec.inc("boundary_evals", self._boundary_per_sweep[tid])
                        rec.inc("boundary_publishes", pubs)
                    if board is not None:
                        board.beat(tid)
                rounds += 1
                if obs is not None:
                    obs.flight_event("sweep", "round", float(rounds))
                    total = sum(evals)
                    if self.sampler_due(total):
                        obs.maybe_sample(
                            total, lambda: obs.engine_row(self, min(gens), total)
                        )
                if self._ckpt is not None and rounds % self._ckpt[0] == 0 and any(active):
                    self._ckpt[1](self)
                    if obs is not None:
                        obs.flight_event("checkpoint", value=float(rounds))
        finally:
            detach_runtime(self, board)
        return self._result(budget)

    # ------------------------------------------------------------------
    def _free_plan(self, n_procs: int) -> tuple[list[list[int]], dict | None]:
        """Group the ``n_threads`` blocks into ``n_procs`` sweep units.

        Returns ``(groups, plans)``: ``groups[g]`` is the list of block
        ids process ``g`` owns; ``plans`` (None when every group is a
        singleton) maps each group's *leader* block id to the fused
        sweep structures :meth:`_step_block` consumes — concatenated
        cells, stacked neighbor table, group ownership for the gathers,
        and the group-granularity shared-read mask so only rows some
        other process reads pay seqlock stamps.
        """
        n = self.config.n_threads
        groups = [
            [int(t) for t in g] for g in np.array_split(np.arange(n), n_procs)
        ]
        if n_procs == n:
            return groups, None
        fused = [np.concatenate([self.blocks[t] for t in g]) for g in groups]
        group_id, group_shared = partition_ownership(
            self.neighbors, fused, self.grid.size
        )
        plans = {}
        for gid, g in enumerate(groups):
            crosses = (group_id[self.neighbors[fused[gid]]] != gid).any(axis=1)
            plans[g[0]] = {
                "gid": gid,
                "cells": fused[gid],
                "nb": np.vstack([self._nb_blocks[t] for t in g]),
                "group_id": group_id,
                "shared": group_shared,
                "boundary": int(crosses.sum()),
            }
        return groups, plans

    def _run_free(self, stop: StopCondition) -> RunResult:
        """Free-running forked workers (the paper's concurrent execution).

        Always forks — even at ``n_threads=1`` — so measured rates are
        comparable across worker counts (the speedup benchmark divides
        them) and the lifecycle is exercised identically.  Workers
        beyond the core count are collapsed into fused-batch processes
        (module docstring) unless ``oversubscribe`` is set.
        """
        n = self.config.n_threads
        budget = Budget(stop)
        share = budget.eval_share(n)
        oversub = self.oversubscribe or (
            os.environ.get("REPRO_SHM_OVERSUBSCRIBE") == "1"
        )
        n_procs = n if oversub else min(n, os.cpu_count() or 1)
        groups, plans = self._free_plan(n_procs)
        self._plans = plans
        self._n_procs = n_procs
        gid_of_tid = {t: gid for gid, g in enumerate(groups) for t in g}
        mp = self._mpctx
        eval_counts = mp.RawArray("l", n)
        gen_counts = mp.RawArray("l", n)
        beats = mp.RawArray("l", n)
        done = mp.RawArray("b", n)
        for tid in range(n):
            eval_counts[tid] = self._eval_counts[tid]
            gen_counts[tid] = self._gen_counts[tid]
        obs = self.obs
        telemetry_q = mp.SimpleQueue() if obs is not None else None
        board = attach_runtime(
            self,
            n,
            lambda: (None, int(sum(eval_counts))),
            counters=beats,
            done=done,
        )
        watchdog = None
        if self.stall_kill_s is not None:
            from repro.obs.watchdog import HeartbeatBoard, Watchdog

            watchdog = Watchdog(
                HeartbeatBoard(n, counters=beats, done=done),
                deadline_s=self.stall_kill_s,
            )
        budget.start()
        t0 = time.perf_counter()

        # fault injection for the post-mortem e2e/CI smoke: worker
        # REPRO_SHM_CRASH_WORKER raises after REPRO_SHM_CRASH_AFTER sweeps
        crash_tid = int(os.environ.get("REPRO_SHM_CRASH_WORKER", "-1"))
        crash_after = int(os.environ.get("REPRO_SHM_CRASH_AFTER", "3"))

        def body(gid: int, scope) -> None:
            members = groups[gid]
            lead = members[0]
            rng = self._worker_rngs[lead]
            rec = tracer = None
            if obs is not None:
                from repro.obs.metrics import MetricRecorder
                from repro.obs.trace import ThreadTracer

                rec = MetricRecorder(str(lead))
                tracer = ThreadTracer(lead, t0) if obs.tracer is not None else None
            sizes = [self.blocks[t].size for t in members]
            sweep_size = sum(sizes)
            if plans is None:
                boundary_size = self._boundary_per_sweep[lead]
            else:
                boundary_size = plans[lead]["boundary"]
            # members are a contiguous tid range (np.array_split), so
            # the shared progress arrays update with slice stores — one
            # ctypes call per array per sweep, not one per member
            lo, hi = lead, members[-1] + 1
            evals_m = [int(eval_counts[t]) for t in members]
            gens_m = [int(gen_counts[t]) for t in members]
            beats_m = [int(beats[t]) for t in members]
            start_gens = gens_m[0]
            crash_here = crash_tid in members
            perf = time.perf_counter
            while not all(
                budget.worker_exhausted(e, g, share)
                for e, g in zip(evals_m, gens_m)
            ):
                sweep_start = perf()
                replaced, pubs = self._step_block(lead, rng, rec)
                for i, sz in enumerate(sizes):
                    evals_m[i] += sz
                    gens_m[i] += 1
                    beats_m[i] += 1
                eval_counts[lo:hi] = evals_m
                gen_counts[lo:hi] = gens_m
                beats[lo:hi] = beats_m
                gens = gens_m[0]
                if scope is not None:
                    scope.record("sweep", f"pubs={pubs}", float(gens))
                if rec is not None:
                    sweep_end = perf()
                    rec.observe("sweep_us", (sweep_end - sweep_start) * 1e6)
                    rec.inc("sweeps")
                    rec.inc("breeding.evaluations", sweep_size)
                    rec.inc("breeding.steps", sweep_size)
                    rec.inc("breeding.replacements", replaced)
                    rec.inc("boundary_evals", boundary_size)
                    rec.inc("boundary_publishes", pubs)
                    if tracer is not None:
                        tracer.complete(
                            "sweep",
                            sweep_start - t0,
                            sweep_end - sweep_start,
                            {"generation": gens},
                        )
                if crash_here and gens - start_gens >= crash_after:
                    raise RuntimeError(
                        f"injected crash in shm worker {crash_tid} "
                        "(REPRO_SHM_CRASH_WORKER)"
                    )
            for t in members:
                done[t] = 1  # budget exhausted != stalled
            if scope is not None:
                scope.record("budget.done", value=float(gens_m[0]))
            if rec is not None:
                telemetry_q.put(
                    (lead, rec.snapshot(), tracer.events if tracer is not None else [])
                )

        def worker(gid: int) -> None:
            if obs is not None:
                # per-process observability (flight ring, crash hooks,
                # resource/stack samplers) must be built post-fork so it
                # observes this worker, not the parent
                with obs.process_scope(f"w{groups[gid][0]}") as scope:
                    body(gid, scope)
            else:
                body(gid, None)

        procs = [
            mp.Process(
                target=worker, args=(gid,), name=f"pacga-shm-w{groups[gid][0]}"
            )
            for gid in range(n_procs)
        ]
        def drain_telemetry() -> None:
            # Drain while workers are still alive, not just after join: a
            # finishing worker blocks in telemetry_q.put() once the end-of-run
            # payload (metrics snapshot + per-sweep trace events) outgrows the
            # pipe buffer, so a join-first parent deadlocks on long runs.
            if obs is None:
                return
            while not telemetry_q.empty():
                tid, snapshot, events = telemetry_q.get()
                from repro.obs.metrics import MetricRecorder

                obs.registry.adopt(MetricRecorder.from_snapshot(snapshot))
                if obs.tracer is not None:
                    obs.tracer.adopt(tid, events, f"pacga-shm-w{tid}")

        stalled = None
        try:
            for p in procs:
                p.start()
            while any(p.is_alive() for p in procs):
                drain_telemetry()
                if obs is not None:
                    total = int(sum(eval_counts))
                    if self.sampler_due(total):
                        try:
                            obs.maybe_sample(
                                total, lambda: obs.engine_row(self, 0, total)
                            )
                        except Exception as exc:
                            # the parent samples the shared arena while
                            # workers mutate it — a torn read must not
                            # kill an otherwise healthy run
                            obs.flight_event("sample.error", repr(exc)[:36])
                if watchdog is not None:
                    stalled = next(
                        (ev for ev in watchdog.poll() if not ev.recovered), None
                    )
                    if stalled is not None:
                        # escalate before killing: ask the stalled
                        # worker to dump its own stacks (its SIGUSR1
                        # handler, installed by the flight scope) so the
                        # evidence lands in the bundle before terminate
                        lead = groups[gid_of_tid[stalled.worker]][0]
                        self._capture_stalled_stacks(
                            procs[gid_of_tid[stalled.worker]], f"w{lead}", stalled
                        )
                        for p in procs:
                            if p.is_alive():
                                p.terminate()
                        break
                time.sleep(0.02)
            for p in procs:
                p.join()
            if stalled is not None:
                if obs is not None:
                    obs.meta.setdefault(
                        "interrupted_by",
                        {
                            "role": f"w{stalled.worker}",
                            "pid": procs[gid_of_tid[stalled.worker]].pid,
                            "reason": "stall",
                            "stalled_s": round(stalled.stalled_s, 3),
                        },
                    )
                raise RuntimeError(
                    f"shm worker {stalled.worker} stalled for "
                    f"{stalled.stalled_s:.1f}s (heartbeat {stalled.heartbeat}); "
                    "worker group terminated"
                )
            failed = [
                (groups[gid][0], p)
                for gid, p in enumerate(procs)
                if p.exitcode != 0
            ]
            if failed:
                if obs is not None:
                    tid0, p0 = failed[0]
                    obs.meta.setdefault(
                        "interrupted_by",
                        {"role": f"w{tid0}", "pid": p0.pid, "exitcode": p0.exitcode},
                    )
                raise RuntimeError(
                    f"shm workers failed: {[p.name for _, p in failed]}"
                )
        except BaseException:
            if obs is not None:
                obs.stop_runtime()
            raise
        self._eval_counts = [int(e) for e in eval_counts]
        self._gen_counts = [int(g) for g in gen_counts]

        if obs is not None:
            drain_telemetry()
            obs.stop_runtime()
        return self._result(budget)

    def _capture_stalled_stacks(self, victim, role, stalled, wait_s: float = 1.5) -> None:
        """Stall escalation: SIGUSR1 the stalled worker, wait for its dump.

        ``victim`` is the process hosting the stalled block, ``role``
        its flight-scope role (the group leader's ``w<tid>``).  The
        worker's signal handler appends an all-thread stack dump to
        ``flight/stacks-<role>.txt``; the parent waits (bounded) for
        that file so the capture lands in the bundle *before* the group
        is terminated.  No-op without flight recording or when the
        worker is already gone.
        """
        obs = self.obs
        if obs is None or not obs.flight_enabled:
            return
        if not victim.is_alive() or victim.pid is None:
            return
        from repro.obs.flight import flight_paths

        stacks_path = flight_paths(obs.out, role)["stacks"]
        before = stacks_path.stat().st_size if stacks_path.exists() else 0
        try:
            import signal as _signal

            os.kill(victim.pid, _signal.SIGUSR1)
        except (ProcessLookupError, OSError):  # pragma: no cover - racing exit
            return
        deadline = time.perf_counter() + wait_s
        while time.perf_counter() < deadline:
            if stacks_path.exists() and stacks_path.stat().st_size > before:
                break
            time.sleep(0.02)
        obs.flight_event("stall", f"w{stalled.worker}", stalled.stalled_s)

    def sampler_due(self, evaluations: int) -> bool:
        """Cheap parent-side cadence check (avoids provider invocation)."""
        return self.obs is not None and self.obs.sampler.due(
            evaluations, self.obs.elapsed()
        )

"""Parallel execution engines for PA-CGA (paper §3.2).

Three engines share the breeding step of ``repro.cga.engine``:

* :class:`ThreadedPACGA` — real OS threads with per-individual
  readers-writer locks, the faithful port of the paper's design (in
  CPython the GIL serializes the pure-Python parts, so this engine is
  about *correctness under concurrency*, not wall-clock speedup);
* :class:`ProcessPACGA` — worker processes over
  ``multiprocessing.shared_memory``, the Python-native way to get true
  parallelism for this algorithm;
* :class:`SimulatedPACGA` — a deterministic discrete-event simulator
  that interleaves logical threads under a calibrated cost model of the
  paper's 4-core Xeon E5440; it regenerates the speedup and convergence
  figures reproducibly on any host (DESIGN.md §4.2).
"""

from repro.parallel.rwlock import (
    LockManager,
    RWLock,
    TrackedLockManager,
    TrackedRWLock,
)
from repro.parallel.threads import ThreadedPACGA
from repro.parallel.processes import ProcessPACGA
from repro.parallel.costmodel import CostModel, XEON_E5440
from repro.parallel.simengine import SimulatedPACGA
from repro.parallel.calibrate import measure_cost_model, time_breeding_step

__all__ = [
    "RWLock",
    "LockManager",
    "TrackedRWLock",
    "TrackedLockManager",
    "ThreadedPACGA",
    "ProcessPACGA",
    "CostModel",
    "XEON_E5440",
    "SimulatedPACGA",
    "measure_cost_model",
    "time_breeding_step",
]

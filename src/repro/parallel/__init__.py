"""Parallel execution engines for PA-CGA (paper §3.2).

Four engines implement the paper's parallel asynchronous CGA:

* :class:`ThreadedPACGA` — real OS threads with per-individual
  readers-writer locks, the faithful port of the paper's design (in
  CPython the GIL serializes the pure-Python parts, so this engine is
  about *correctness under concurrency*, not wall-clock speedup);
* :class:`ProcessPACGA` — worker processes over fork-shared arrays
  with per-individual locks, the Python-native way to get true
  parallelism for the scalar breeding step;
* :class:`ShmBlockPACGA` — forked workers breeding whole blocks at
  once with the batch kernels over named ``multiprocessing.shared_memory``
  segments, boundary rows exchanged via seqlock version stamps (the
  performance engine);
* :class:`SimulatedPACGA` — a deterministic discrete-event simulator
  that interleaves logical threads under a calibrated cost model of the
  paper's 4-core Xeon E5440; it regenerates the speedup and convergence
  figures reproducibly on any host (DESIGN.md §4.2).
"""

from repro.parallel.rwlock import (
    LockManager,
    RWLock,
    TrackedLockManager,
    TrackedRWLock,
)
from repro.parallel.threads import ThreadedPACGA
from repro.parallel.processes import ProcessPACGA
from repro.parallel.shm import ShmBlockPACGA
from repro.parallel.costmodel import CostModel, XEON_E5440
from repro.parallel.simengine import SimulatedPACGA
from repro.parallel.calibrate import measure_cost_model, time_breeding_step

__all__ = [
    "RWLock",
    "LockManager",
    "TrackedRWLock",
    "TrackedLockManager",
    "ThreadedPACGA",
    "ProcessPACGA",
    "ShmBlockPACGA",
    "CostModel",
    "XEON_E5440",
    "SimulatedPACGA",
    "measure_cost_model",
    "time_breeding_step",
]

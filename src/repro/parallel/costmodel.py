"""Virtual-time cost model of the paper's execution platform.

The paper's speedup study (Fig. 4) runs on a 4-core Intel Xeon E5440
with a shared 6 MB L2 cache.  That hardware is not available here, so
the simulator charges each breeding step a *modeled* duration composed
of the mechanisms the paper identifies in §4.2:

* **computation** — breeding (selection, crossover, mutation,
  evaluation) plus ``iter`` local-search passes; local search runs on
  the private offspring, outside any synchronization;
* **lock overhead** — every step acquires neighborhood read locks and
  one write lock even when uncontended;
* **boundary serialization** — when the neighborhood crosses a block
  boundary the RW lock may serialize with another thread; the charge
  grows with the number of *other* threads;
* **cache pressure** — all threads share the L2, so per-thread compute
  slows as threads are added, sharply beyond 3 (the paper: "increasing
  the number of threads with little data locality negatively impacts
  performance").

Calibration: the defaults in :data:`XEON_E5440` were fitted so that the
*expected* speedup ``S(n) = n · C(1) / C(n)`` reproduces the shape of
Fig. 4 — monotone slowdown for 0 LS iterations, ~flat for 1, positive
speedup peaking/plateauing at 3 threads for 5 and 10 iterations.  Units
are microseconds of virtual time; absolute values are irrelevant, only
ratios matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "XEON_E5440"]


@dataclass(frozen=True)
class CostModel:
    """Per-step virtual cost parameters (µs)."""

    #: breeding cost: selection + crossover + mutation + evaluation.
    t_breed: float = 6.0
    #: one H2LL pass on the private offspring.
    t_ls_iter: float = 6.0
    #: uncontended lock traffic of one step (k reads + 1 write).
    t_lock: float = 8.0
    #: serialization charge when the neighborhood crosses a block
    #: boundary, scaled by sqrt(#other threads) (mean-field mode).
    t_boundary: float = 74.0
    #: tracked mode: virtual duration a read lock is held per neighbor.
    t_read_hold: float = 2.0
    #: tracked mode: virtual duration the replacement write lock is held.
    t_write_hold: float = 4.0
    #: tracked mode: cacheline-transfer charge per cross-block access
    #: (paid even without a lock conflict; scaled by sqrt(#other
    #: threads) in the simulator — invalidation traffic grows with the
    #: number of cores sharing the lines).
    t_cacheline: float = 64.0
    #: linear L2-sharing slowdown per extra thread.
    cache_alpha: float = 0.03
    #: additional slowdown per thread beyond 3 (L2 saturation).
    cache_beta: float = 0.3
    #: lognormal jitter sigma on each step (0 disables jitter).
    jitter_sigma: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "t_breed",
            "t_ls_iter",
            "t_lock",
            "t_boundary",
            "t_read_hold",
            "t_write_hold",
            "t_cacheline",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")

    # ------------------------------------------------------------------
    def cache_factor(self, n_threads: int) -> float:
        """Compute-slowdown multiplier from L2 sharing."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return 1.0 + self.cache_alpha * (n_threads - 1) + self.cache_beta * max(0, n_threads - 3)

    def compute_cost(self, ls_iterations: float) -> float:
        """Pure computation of one step at a given LS depth (µs, 1 thread)."""
        if ls_iterations < 0:
            raise ValueError("ls_iterations must be >= 0")
        return self.t_breed + ls_iterations * self.t_ls_iter

    def step_cost(
        self,
        n_threads: int,
        ls_iterations: float,
        crosses_boundary: bool,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Virtual duration of one breeding step (µs).

        ``crosses_boundary`` is the precomputed per-individual flag (its
        neighborhood reaches into another block).  ``rng`` adds
        multiplicative lognormal jitter so logical threads do not march
        in lockstep.
        """
        cost = self.compute_cost(ls_iterations) * self.cache_factor(n_threads) + self.t_lock
        if crosses_boundary and n_threads > 1:
            cost += self.t_boundary * math.sqrt(n_threads - 1)
        if rng is not None and self.jitter_sigma > 0:
            cost *= float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        return cost

    # ------------------------------------------------------------------
    # closed-form expectations (used for calibration tests and quick
    # what-if analyses without running the simulator)
    # ------------------------------------------------------------------
    def expected_step_cost(
        self, n_threads: int, ls_iterations: float, boundary_fraction: float
    ) -> float:
        """Mean step cost when ``boundary_fraction`` of cells cross blocks."""
        if not 0.0 <= boundary_fraction <= 1.0:
            raise ValueError("boundary_fraction must be in [0, 1]")
        base = self.compute_cost(ls_iterations) * self.cache_factor(n_threads) + self.t_lock
        if n_threads > 1:
            base += boundary_fraction * self.t_boundary * math.sqrt(n_threads - 1)
        return base

    def predicted_speedup(
        self, n_threads: int, ls_iterations: float, boundary_fraction: float
    ) -> float:
        """Expected Fig.-4 speedup ``#evaluations(n) / #evaluations(1)``.

        With a fixed virtual wall-time ``T`` every thread performs
        ``T / C(n)`` steps, so the ratio is ``n · C(1) / C(n)``
        (eq. 5 of the paper with time replaced by modeled time).
        """
        c1 = self.expected_step_cost(1, ls_iterations, 0.0)
        cn = self.expected_step_cost(n_threads, ls_iterations, boundary_fraction)
        return n_threads * c1 / cn


#: Default model calibrated against Fig. 4 (see module docstring).
XEON_E5440 = CostModel()

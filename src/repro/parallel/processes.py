"""PA-CGA on worker processes with a shared-memory population.

CPython's GIL prevents the thread engine from exploiting multiple
cores, so this engine maps the population arrays (S, CT, fitness) into
shared memory (``multiprocessing.RawArray``) and runs one worker
process per block — the scheme the HPC guides recommend: buffers are
shared, never pickled, and the inner loop is identical to every other
engine (``evolve_individual``).

Synchronization: Python offers no cross-process readers-writer lock in
the stdlib, so boundary individuals are guarded by *exclusive* locks.
This is strictly more conservative than the paper's RW locks (reads
serialize with reads); the simulator's cost model accounts for the
paper's cheaper concurrent reads instead.  Crucially, locks exist
*only* where they can matter: a cell is contended only if some other
block reads it (its row is in a foreign neighborhood) or its own
breeding reads foreign rows — everything else is private to its
single-threaded owner block and takes the lock-free
``evolve_individual`` fast path.  For the paper's grids the interior
dominates, so the per-evaluation cost approaches the sequential
engine's; the old implementation locked every access of every cell
(~8 ``mp.Lock`` round-trips per breeding step), which made
``processes(2)`` slower than ``processes(1)``.

Requires the ``fork`` start method (Linux): children inherit the
instance and the shared arrays without serialization.

Observability: each forked worker records into a process-private
:class:`~repro.obs.metrics.MetricRecorder` and ships the snapshot (plus
its trace-event buffer) back over a queue at exit; the parent adopts
them into the shared :class:`~repro.obs.Observer` and meanwhile samples
the convergence time series by polling the shared-memory population —
telemetry costs the workers one queue put at shutdown, nothing per step
beyond the same instrumented operators the thread engine uses.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.hooks import as_hooks
from repro.parallel.rwlock import TrackedLockManager
from repro.runtime.budget import Budget
from repro.runtime.context import (
    attach_runtime,
    build_context,
    finish_run,
    partition_ownership,
)

__all__ = ["ProcessPACGA"]


class _NoopLock:
    """Stateless no-op context manager (private-cell accesses)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopLock()


class _BoundaryLockManager:
    """Exclusive mutexes for the boundary cells only.

    Holds one ``mp.Lock`` per cell in the ``shared_read`` set (cells
    some *other* block reads — see
    :func:`repro.runtime.context.partition_ownership`); every other
    index resolves to a no-op.  :meth:`for_worker` returns the view a
    worker breeds through: reads skip the lock for rows the worker
    itself owns (it is their only writer), writes skip it for rows no
    foreign block ever reads.
    """

    __slots__ = ("_locks", "_block_id", "_shared", "_n")

    def __init__(self, ctx, block_id, shared_read):
        import numpy as _np

        self._n = block_id.size
        self._block_id = block_id
        self._shared = shared_read
        self._locks = {int(i): ctx.Lock() for i in _np.flatnonzero(shared_read)}

    def __len__(self) -> int:
        return self._n

    @contextmanager
    def _held(self, idx: int):
        lock = self._locks[idx]
        lock.acquire()
        try:
            yield
        finally:
            lock.release()

    # -- whole-population protocol (no worker context: conservative) -----
    def read(self, idx: int):
        return self._held(idx) if self._shared[idx] else _NOOP

    def write(self, idx: int):
        return self._held(idx) if self._shared[idx] else _NOOP

    def for_worker(self, tid: int) -> "_WorkerLockView":
        """The lock view worker ``tid`` breeds through."""
        return _WorkerLockView(self, tid)


class _WorkerLockView:
    """One worker's boundary-lock view (read/write protocol)."""

    __slots__ = ("_mgr", "_tid")

    def __init__(self, mgr: _BoundaryLockManager, tid: int):
        self._mgr = mgr
        self._tid = tid

    def __len__(self) -> int:
        return len(self._mgr)

    def read(self, idx: int):
        # foreign rows may be mid-write by their owner; own rows have
        # no concurrent writer (this worker is the only one)
        mgr = self._mgr
        if mgr._block_id[idx] != self._tid:
            return mgr._held(idx)
        return _NOOP

    def write(self, idx: int):
        # only rows some foreign block reads need exclusive publication
        mgr = self._mgr
        if mgr._shared[idx]:
            return mgr._held(idx)
        return _NOOP


def _shared_array(ctx, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
    """Allocate a fork-shared ndarray backed by a RawArray."""
    count = int(np.prod(shape))
    raw = ctx.RawArray("b", count * np.dtype(dtype).itemsize)
    return np.frombuffer(raw, dtype=dtype).reshape(shape)


class ProcessPACGA:
    """Process-parallel PA-CGA over a shared-memory population.

    Construction allocates the shared buffers and initializes the
    population in the parent; :meth:`run` forks the workers.
    """

    engine_name = "processes"

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        obs=None,
        hooks=None,
    ):
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "ProcessPACGA requires the 'fork' start method (POSIX); "
                "use ThreadedPACGA or SimulatedPACGA instead"
            ) from exc
        grid = (config or CGAConfig()).grid
        n = grid.size
        shared = (
            _shared_array(self._ctx, np.int32, (n, instance.ntasks)),
            _shared_array(self._ctx, np.float64, (n, instance.nmachines)),
            _shared_array(self._ctx, np.float64, (n,)),
        )
        ctx = build_context(
            instance,
            config,
            seed=seed,
            workers=(config or CGAConfig()).n_threads,
            pop_arrays=shared,
            obs=obs,
        )
        self.instance = instance
        self.config = ctx.config
        self.hooks = as_hooks(hooks)
        self.grid = ctx.grid
        self.neighbors = ctx.neighbors
        self.blocks = ctx.blocks
        self.orders = ctx.orders
        self.ops = ctx.ops
        self._init_rng, self._worker_rngs = ctx.init_rng, ctx.worker_rngs
        self.pop = ctx.pop
        self.crosses = ctx.crosses
        self._block_id, self._shared_read = partition_ownership(
            self.neighbors, self.blocks, n
        )
        #: cells whose breeding touches any cross-block row at all;
        #: everything else runs the lock-free fast path
        self._needs_locks = self.crosses | self._shared_read
        self.locks = _BoundaryLockManager(self._ctx, self._block_id, self._shared_read)
        self.obs = ctx.obs

    def run(self, stop: StopCondition) -> RunResult:
        """Fork one worker per block and evolve until ``stop``."""
        n = self.config.n_threads
        budget = Budget(stop)
        eval_share = budget.eval_share(n)

        eval_counts = self._ctx.RawArray("l", n)
        gen_counts = self._ctx.RawArray("l", n)
        obs = self.obs
        live_evals = self._ctx.RawArray("l", n) if obs is not None else None
        telemetry_q = self._ctx.SimpleQueue() if obs is not None else None
        # fork-shared heartbeat counters: children beat, the parent's
        # watchdog/publisher read — no queue traffic while running
        board = attach_runtime(
            self,
            n,
            lambda: (None, int(sum(live_evals))),
            counters=self._ctx.RawArray("l", n),
            done=self._ctx.RawArray("b", n),
        )
        budget.start()
        t0 = time.perf_counter()

        def body(tid: int, scope) -> None:
            block = self.orders[tid]
            rng = self._worker_rngs[tid]
            pop, ops, neighbors = self.pop, self.ops, self.neighbors
            needs = self._needs_locks
            # boundary cells go through this worker's lock view; interior
            # cells take evolve_individual's lock-free fast path
            locks = self.locks.for_worker(tid)
            rec = None
            tracer = None
            if obs is not None:
                from repro.obs.instrument import instrumented_ops
                from repro.obs.metrics import MetricRecorder
                from repro.obs.trace import ThreadTracer

                # process-private collectors; shipped back over the queue
                rec = MetricRecorder(str(tid))
                locks = TrackedLockManager(locks).bind(rec)
                ops = instrumented_ops(ops, rec)
                tracer = ThreadTracer(tid, t0) if obs.tracer is not None else None
                crosses = self.crosses
            evals = 0
            gens = 0
            while not budget.worker_exhausted(evals, gens, eval_share):
                if rec is None:
                    for idx in block:
                        i = int(idx)
                        if needs[i]:
                            evolve_individual(pop, i, neighbors[i], ops, rng, locks)
                        else:
                            evolve_individual(pop, i, neighbors[i], ops, rng)
                        evals += 1
                    gens += 1
                else:
                    sweep_start = time.perf_counter()
                    boundary = 0
                    for idx in block:
                        i = int(idx)
                        if needs[i]:
                            evolve_individual(pop, i, neighbors[i], ops, rng, locks)
                        else:
                            evolve_individual(pop, i, neighbors[i], ops, rng)
                        evals += 1
                        if crosses[i]:
                            boundary += 1
                    sweep_end = time.perf_counter()
                    gens += 1
                    rec.observe("sweep_us", (sweep_end - sweep_start) * 1e6)
                    rec.inc("sweeps")
                    rec.inc("boundary_evals", boundary)
                    if scope is not None:
                        scope.record("sweep", f"boundary={boundary}", float(gens))
                    if board is not None:
                        board.beat(tid)
                    if tracer is not None:
                        tracer.complete(
                            "sweep",
                            sweep_start - t0,
                            sweep_end - sweep_start,
                            {"generation": gens},
                        )
                    live_evals[tid] = evals
            eval_counts[tid] = evals
            gen_counts[tid] = gens
            if board is not None:
                board.mark_done(tid)  # budget exhausted != stalled
            if scope is not None:
                scope.record("budget.done", value=float(gens))
            if rec is not None:
                locks.flush()  # publish buffered lock totals before snapshotting
                telemetry_q.put(
                    (tid, rec.snapshot(), tracer.events if tracer is not None else [])
                )

        def worker(tid: int) -> None:
            if obs is not None:
                # per-process flight ring / crash hooks / samplers; must
                # be constructed post-fork to observe this worker
                with obs.process_scope(f"w{tid}") as scope:
                    body(tid, scope)
            else:
                body(tid, None)

        try:
            if n == 1:
                # no point forking a single worker; run inline — the
                # observer's own "main" hooks already cover this process
                body(0, None)
            else:
                procs = [
                    self._ctx.Process(target=worker, args=(tid,), name=f"pacga-w{tid}")
                    for tid in range(n)
                ]
                for p in procs:
                    p.start()
                if obs is not None:
                    # the parent samples the shared-memory population while
                    # the workers run (they only write telemetry at exit)
                    while any(p.is_alive() for p in procs):
                        total = int(sum(live_evals))
                        if self.sampler_due(total):
                            obs.maybe_sample(
                                total, lambda: obs.engine_row(self, 0, total)
                            )
                        time.sleep(0.02)
                for p in procs:
                    p.join()
                failed = [
                    (tid, p) for tid, p in enumerate(procs) if p.exitcode != 0
                ]
                if failed:
                    if obs is not None:
                        tid0, p0 = failed[0]
                        obs.meta.setdefault(
                            "interrupted_by",
                            {
                                "role": f"w{tid0}",
                                "pid": p0.pid,
                                "exitcode": p0.exitcode,
                            },
                        )
                    raise RuntimeError(
                        f"PA-CGA workers failed: {[p.name for _, p in failed]}"
                    )
        except BaseException:
            if obs is not None:
                obs.stop_runtime()
            raise
        elapsed = time.perf_counter() - t0

        if obs is not None:
            while not telemetry_q.empty():
                tid, snapshot, events = telemetry_q.get()
                from repro.obs.metrics import MetricRecorder

                obs.registry.adopt(MetricRecorder.from_snapshot(snapshot))
                if obs.tracer is not None:
                    obs.tracer.adopt(tid, events, f"pacga-w{tid}")
            # stop after adopting the workers' snapshots: the final
            # live.json publish then matches the finalized bundle
            obs.stop_runtime()

        best_idx, best_fit = self.pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=self.pop.s[best_idx].copy(),
            evaluations=int(sum(eval_counts)),
            generations=int(min(gen_counts)) if n else 0,
            elapsed_s=elapsed,
            history=[],
            extra={
                "per_thread_evaluations": list(eval_counts),
                "per_thread_generations": list(gen_counts),
                "n_threads": n,
            },
        )
        return finish_run(
            self, result, engine_name=self.engine_name, meta={"n_threads": n}
        )

    def sampler_due(self, evaluations: int) -> bool:
        """Cheap parent-side cadence check (avoids provider invocation)."""
        return self.obs is not None and self.obs.sampler.due(
            evaluations, self.obs.elapsed()
        )

"""Deterministic virtual-time simulation of PA-CGA.

A discrete-event scheduler interleaves ``n_threads`` *logical* threads:
each holds a block of the population, sweeps it in fixed line order and
is charged a modeled duration per breeding step
(:class:`repro.parallel.costmodel.CostModel`).  The logical thread with
the smallest virtual clock always acts next, so the execution is a
fully deterministic function of the seed — yet the *interleaving* of
block updates, the cross-boundary information flow and the
time-budgeted evaluation counts behave like the paper's real threads.

Fidelity notes (matching §3.2/§4.2):

* threads check the stop condition only after a *full block sweep*, so
  they overrun the budget by up to one sweep, exactly like the paper's
  "we accept this approximation";
* neighborhoods cross block boundaries, so a logical thread sees
  offspring written by others mid-sweep (asynchronous model);
* with ``n_threads=1`` the simulation replays the canonical
  asynchronous CGA, sweep for sweep.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.neighborhood import neighbor_table
from repro.cga.population import Population
from repro.cga.sweep import sweep_order
from repro.heuristics.minmin import min_min
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.rng import spawn_rngs

__all__ = ["SimulatedPACGA"]

#: µs → s conversion for the virtual clock.
_US = 1e-6


class SimulatedPACGA:
    """PA-CGA under a virtual-time discrete-event scheduler.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    config:
        Algorithm parameterization (``n_threads`` = logical threads).
    seed:
        Seed-tree root; spawns one init stream plus two per logical
        thread (genetics, cost jitter) so changing the cost model never
        perturbs the genetic stream.
    cost_model:
        Virtual platform (default: the calibrated Xeon E5440 model).
    history_stride:
        Record a history row every this many block completions
        (1 = every completion; raise it for long runs).
    contention:
        How cross-thread synchronization is charged:

        * ``"meanfield"`` (default) — a deterministic surcharge on every
          boundary-crossing step (``t_boundary · sqrt(n−1)``), the
          calibrated model behind Fig. 4;
        * ``"tracked"`` — true lock bookkeeping in virtual time: each
          individual carries read/write lock-release times, steps queue
          behind actual conflicts, and cross-block accesses pay a
          cacheline-transfer charge.  Contention then *emerges* from
          the interleaving instead of being parameterized — the
          validation ablation compares both (DESIGN.md A7).
    obs:
        Optional :class:`repro.obs.Observer`.  The simulator records per
        logical-thread metrics and stamps trace spans with *virtual*
        clocks, so the exported timeline shows modeled time; in
        ``tracked`` mode the emergent lock waits land in the
        ``lock.*_wait_s_total`` counters.
    """

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        cost_model: CostModel = XEON_E5440,
        history_stride: int = 1,
        contention: str = "meanfield",
        obs=None,
    ):
        if history_stride < 1:
            raise ValueError(f"history_stride must be >= 1, got {history_stride}")
        if contention not in ("meanfield", "tracked"):
            raise ValueError(
                f"contention must be 'meanfield' or 'tracked', got {contention!r}"
            )
        self.contention = contention
        self.instance = instance
        self.config = config or CGAConfig()
        self.cost_model = cost_model
        self.history_stride = history_stride
        self.grid = self.config.grid
        self.neighbors = neighbor_table(self.grid, self.config.neighborhood)
        n = self.config.n_threads
        self.blocks = self.grid.partition_scheme(n, self.config.partition)
        self.orders = [
            sweep_order(block, self.config.sweep, block_id=i)
            for i, block in enumerate(self.blocks)
        ]
        self.ops = self.config.resolve()

        # per-individual flag: does the neighborhood leave the block?
        block_id = np.empty(self.grid.size, dtype=np.int64)
        for bid, block in enumerate(self.blocks):
            block_id[block] = bid
        self.crosses = (block_id[self.neighbors] != block_id[:, None]).any(axis=1)
        self.boundary_fraction = float(self.crosses.mean()) if n > 1 else 0.0

        rngs = spawn_rngs(seed, 1 + 2 * n)
        self._init_rng = rngs[0]
        self._gene_rngs = rngs[1 : 1 + n]
        self._jitter_rngs = rngs[1 + n :]

        self.pop = Population(instance, self.grid)
        seeds = [min_min(instance)] if self.config.seed_with_minmin else None
        self.pop.init_random(self._init_rng, seed_schedules=seeds, fitness_fn=self.ops.fitness)

        from repro.obs.observer import resolve_observer

        self.obs = resolve_observer(self.config, obs)

    # ------------------------------------------------------------------
    def run(self, stop: StopCondition) -> RunResult:
        """Simulate until the virtual budget or evaluation cap is hit.

        ``stop.virtual_time`` bounds every logical thread's clock (the
        paper's 90 s wall-clock criterion, in modeled seconds);
        ``stop.max_evaluations`` caps total evaluations;
        ``stop.max_generations`` caps the slowest thread's sweep count.
        At least one of the three must be set.
        """
        if stop.virtual_time is None and stop.max_evaluations is None and stop.max_generations is None:
            raise ValueError(
                "SimulatedPACGA needs virtual_time, max_evaluations or max_generations"
            )
        n = self.config.n_threads
        budget = stop.virtual_time
        pop, ops, neighbors, model = self.pop, self.ops, self.neighbors, self.cost_model
        ls_depth = (
            self.config.ls_iterations * self.config.p_ls if self.config.local_search else 0.0
        )

        clocks = [0.0] * n
        positions = [0] * n
        gens = [0] * n
        evals = [0] * n
        completions = 0
        obs = self.obs
        recs = None
        if obs is not None:
            # one recorder and trace lane per *logical* thread; spans are
            # stamped with virtual clocks, so the exported timeline shows
            # modeled time, not wall time
            recs = [obs.recorder(tid) for tid in range(n)]
            tracers = [obs.thread_tracer(tid, f"sim-{tid}") for tid in range(n)]
            sweep_starts = [0.0] * n
        tracked = self.contention == "tracked" and n > 1
        if tracked:
            # virtual release times of each individual's locks (seconds)
            write_until = np.zeros(self.grid.size)
            read_until = np.zeros(self.grid.size)
            read_hold = model.t_read_hold * _US
            write_hold = model.t_write_hold * _US
            # cacheline ping-pong grows with the number of other cores
            # sharing the lines (MESI invalidation traffic)
            import math as _math

            cacheline = model.t_cacheline * _math.sqrt(n - 1) * _US
            conflict_wait_total = 0.0
            conflicts = 0
        history: list[tuple[float, int, float, float]] = []
        _, best0 = pop.best()
        history.append((0.0, 0, best0, pop.mean_fitness()))

        # (clock, tid) heap; tid breaks ties deterministically
        heap: list[tuple[float, int]] = [(0.0, tid) for tid in range(n)]
        heapq.heapify(heap)

        total_evals = 0
        while heap:
            clock, tid = heapq.heappop(heap)
            block = self.orders[tid]
            pos = positions[tid]
            if pos == 0:
                # stop checks happen only at sweep boundaries (§3.2)
                if budget is not None and clock >= budget:
                    continue
                if stop.max_generations is not None and gens[tid] >= stop.max_generations:
                    continue
            if stop.max_evaluations is not None and total_evals >= stop.max_evaluations:
                continue

            if recs is not None and pos == 0:
                sweep_starts[tid] = clock

            idx = int(block[pos])
            evolve_individual(pop, idx, neighbors[idx], ops, self._gene_rngs[tid])
            if tracked:
                # base computation (cache pressure + uncontended lock ops)
                base = (
                    model.compute_cost(ls_depth) * model.cache_factor(n) + model.t_lock
                )
                if model.jitter_sigma > 0:
                    base *= float(
                        self._jitter_rngs[tid].lognormal(0.0, model.jitter_sigma)
                    )
                base_s = base * _US
                row = neighbors[idx]
                # cacheline transfers for cross-block neighbor traffic
                extra = cacheline if self.crosses[idx] else 0.0
                # read locks queue behind in-flight writes on the targets
                read_wait = 0.0
                for r in row:
                    wait = write_until[r] - clock
                    if wait > read_wait:
                        read_wait = wait
                if read_wait > 0:
                    conflict_wait_total += read_wait
                    conflicts += 1
                else:
                    read_wait = 0.0
                reads_done = clock + read_wait + read_hold
                for r in row:
                    if read_until[r] < reads_done:
                        read_until[r] = reads_done
                # the replacement write queues behind readers and writers
                write_start = clock + read_wait + base_s + extra
                blocked_until = max(read_until[idx], write_until[idx])
                write_wait = blocked_until - write_start
                if write_wait > 0:
                    conflict_wait_total += write_wait
                    conflicts += 1
                    write_start = blocked_until
                write_until[idx] = write_start + write_hold
                clock = write_start + write_hold
                if recs is not None:
                    r = recs[tid]
                    if read_wait > 0:
                        r.inc("lock.read_wait_s_total", read_wait)
                        r.inc("lock.conflicts")
                    if write_wait > 0:
                        r.inc("lock.write_wait_s_total", write_wait)
                        r.inc("lock.conflicts")
            else:
                cost = model.step_cost(
                    n, ls_depth, bool(self.crosses[idx]), self._jitter_rngs[tid]
                )
                clock += cost * _US
            clocks[tid] = clock
            evals[tid] += 1
            total_evals += 1
            if recs is not None:
                rec = recs[tid]
                rec.inc("breeding.evaluations")
                rec.inc("breeding.steps")
                if self.crosses[idx]:
                    rec.inc("boundary_evals")

            pos += 1
            if pos == len(block):
                pos = 0
                gens[tid] += 1
                completions += 1
                if completions % self.history_stride == 0:
                    _, best = pop.best()
                    history.append(
                        (total_evals / pop.size, total_evals, best, pop.mean_fitness())
                    )
                if recs is not None:
                    rec = recs[tid]
                    dur = clock - sweep_starts[tid]
                    rec.inc("sweeps")
                    rec.observe("sweep_us", dur / _US)
                    if tracers[tid] is not None:
                        tracers[tid].complete(
                            "sweep", sweep_starts[tid], dur, {"generation": gens[tid]}
                        )
                    obs.maybe_sample(
                        total_evals,
                        lambda: {
                            **obs.engine_row(self, min(gens), total_evals),
                            "virtual_t_s": clock,
                        },
                        t_s=clock,
                    )
            positions[tid] = pos
            heapq.heappush(heap, (clock, tid))

        best_idx, best_fit = pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=pop.s[best_idx].copy(),
            evaluations=total_evals,
            generations=min(gens) if gens else 0,
            elapsed_s=max(clocks) if clocks else 0.0,
            history=history,
            extra={
                "per_thread_evaluations": evals,
                "per_thread_generations": gens,
                "per_thread_clocks": clocks,
                "n_threads": n,
                "boundary_fraction": self.boundary_fraction,
                "virtual_time": budget,
                "contention": self.contention,
                **(
                    {
                        "lock_conflicts": conflicts,
                        "conflict_wait_s": conflict_wait_total,
                    }
                    if tracked
                    else {}
                ),
            },
        )
        if obs is not None:
            v_final = max(clocks) if clocks else 0.0
            obs.maybe_sample(
                total_evals,
                lambda: {
                    **obs.engine_row(self, result.generations, total_evals),
                    "virtual_t_s": v_final,
                },
                t_s=v_final,
                force=True,
            )
            obs.record_result(result)
            obs.meta.setdefault("engine", "sim")
            obs.meta.setdefault("n_threads", n)
            obs.meta.setdefault("contention", self.contention)
            obs.meta.setdefault("instance", getattr(self.instance, "name", None))
            if obs.auto_finalize:
                obs.finalize()
        return result

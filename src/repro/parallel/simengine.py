"""Deterministic virtual-time simulation of PA-CGA.

A discrete-event scheduler interleaves ``n_threads`` *logical* threads:
each holds a block of the population, sweeps it in fixed line order and
is charged a modeled duration per breeding step
(:class:`repro.parallel.costmodel.CostModel`).  The logical thread with
the smallest virtual clock always acts next, so the execution is a
fully deterministic function of the seed — yet the *interleaving* of
block updates, the cross-boundary information flow and the
time-budgeted evaluation counts behave like the paper's real threads.

Fidelity notes (matching §3.2/§4.2):

* threads check the stop condition only after a *full block sweep*, so
  they overrun the budget by up to one sweep, exactly like the paper's
  "we accept this approximation";
* neighborhoods cross block boundaries, so a logical thread sees
  offspring written by others mid-sweep (asynchronous model);
* with ``n_threads=1`` the simulation replays the canonical
  asynchronous CGA, sweep for sweep.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.hooks import as_hooks
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.runtime.context import build_context, finish_run

__all__ = ["SimulatedPACGA"]

#: µs → s conversion for the virtual clock.
_US = 1e-6


class SimulatedPACGA:
    """PA-CGA under a virtual-time discrete-event scheduler.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    config:
        Algorithm parameterization (``n_threads`` = logical threads).
    seed:
        Seed-tree root; spawns one init stream plus two per logical
        thread (genetics, cost jitter) so changing the cost model never
        perturbs the genetic stream.
    cost_model:
        Virtual platform (default: the calibrated Xeon E5440 model).
    history_stride:
        Record a history row every this many block completions
        (1 = every completion; raise it for long runs).
    contention:
        How cross-thread synchronization is charged:

        * ``"meanfield"`` (default) — a deterministic surcharge on every
          boundary-crossing step (``t_boundary · sqrt(n−1)``), the
          calibrated model behind Fig. 4;
        * ``"tracked"`` — true lock bookkeeping in virtual time: each
          individual carries read/write lock-release times, steps queue
          behind actual conflicts, and cross-block accesses pay a
          cacheline-transfer charge.  Contention then *emerges* from
          the interleaving instead of being parameterized — the
          validation ablation compares both (DESIGN.md A7).
    obs:
        Optional :class:`repro.obs.Observer`.  The simulator records per
        logical-thread metrics and stamps trace spans with *virtual*
        clocks, so the exported timeline shows modeled time; in
        ``tracked`` mode the emergent lock waits land in the
        ``lock.*_wait_s_total`` counters.
    """

    engine_name = "sim"

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        cost_model: CostModel = XEON_E5440,
        history_stride: int = 1,
        contention: str = "meanfield",
        obs=None,
    ):
        if history_stride < 1:
            raise ValueError(f"history_stride must be >= 1, got {history_stride}")
        if contention not in ("meanfield", "tracked"):
            raise ValueError(
                f"contention must be 'meanfield' or 'tracked', got {contention!r}"
            )
        self.contention = contention
        self.cost_model = cost_model
        self.history_stride = history_stride
        ctx = build_context(
            instance,
            config,
            seed=seed,
            workers=(config or CGAConfig()).n_threads,
            jitter=True,
            obs=obs,
        )
        self.instance = instance
        self.config = ctx.config
        self.hooks = as_hooks(None)
        self.grid = ctx.grid
        self.neighbors = ctx.neighbors
        self.blocks = ctx.blocks
        self.orders = ctx.orders
        self.ops = ctx.ops
        #: per-individual flag: does the neighborhood leave the block?
        self.crosses = ctx.crosses
        self.boundary_fraction = ctx.boundary_fraction
        self._init_rng = ctx.init_rng
        self._gene_rngs = ctx.worker_rngs
        self._jitter_rngs = ctx.jitter_rngs
        self.pop = ctx.pop
        self._resume: dict | None = None
        self._ckpt = None
        self.obs = ctx.obs

    # ------------------------------------------------------------------
    # checkpoint protocol (runtime.checkpoint)
    # ------------------------------------------------------------------
    def arm_checkpoint(self, every, saver) -> None:
        """Install (or clear) a sweep-completion checkpoint callback."""
        self._ckpt = None if saver is None else (every, saver)

    def capture_state(self) -> dict:
        """RNG streams plus, mid-run, the full virtual-time scheduler.

        The simulator's clocks re-zero at every ``run`` start, so a
        resumable snapshot must carry the whole discrete-event state:
        per-thread clocks, sweep positions, counters, the event heap and
        (in ``tracked`` mode) the per-individual lock-release times.
        """
        sched = getattr(self, "_sched", None)
        progress = None
        if sched is not None:
            progress = {
                "contention": self.contention,
                "clocks": list(sched["clocks"]),
                "positions": list(sched["positions"]),
                "gens": list(sched["gens"]),
                "evals": list(sched["evals"]),
                "completions": sched["completions"](),
                "total_evals": sched["total_evals"](),
                "heap": [[c, t] for c, t in sched["heap"]],
                "history": [list(row) for row in sched["history"]],
            }
            if sched.get("write_until") is not None:
                progress["write_until"] = sched["write_until"].tolist()
                progress["read_until"] = sched["read_until"].tolist()
                progress["conflict_wait_s"] = sched["conflict_wait_s"]()
                progress["conflicts"] = sched["conflicts"]()
        return {
            "rng_streams": {
                "gene": [r.bit_generator.state for r in self._gene_rngs],
                "jitter": [r.bit_generator.state for r in self._jitter_rngs],
            },
            "progress": progress,
            "engine_options": {
                "history_stride": self.history_stride,
                "contention": self.contention,
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a :meth:`capture_state` payload; next ``run`` resumes it."""
        streams = payload["rng_streams"]
        if len(streams["gene"]) != len(self._gene_rngs):
            raise ValueError(
                f"checkpoint has {len(streams['gene'])} logical threads, "
                f"engine has {len(self._gene_rngs)}"
            )
        for rng, state in zip(self._gene_rngs, streams["gene"]):
            rng.bit_generator.state = state
        for rng, state in zip(self._jitter_rngs, streams["jitter"]):
            rng.bit_generator.state = state
        progress = payload.get("progress")
        if progress is not None and progress.get("contention") != self.contention:
            raise ValueError(
                f"checkpoint was taken with contention="
                f"{progress.get('contention')!r}, engine has {self.contention!r}"
            )
        self._resume = progress

    # ------------------------------------------------------------------
    def run(self, stop: StopCondition) -> RunResult:
        """Simulate until the virtual budget or evaluation cap is hit.

        ``stop.virtual_time`` bounds every logical thread's clock (the
        paper's 90 s wall-clock criterion, in modeled seconds);
        ``stop.max_evaluations`` caps total evaluations;
        ``stop.max_generations`` caps the slowest thread's sweep count.
        At least one of the three must be set.
        """
        if stop.virtual_time is None and stop.max_evaluations is None and stop.max_generations is None:
            raise ValueError(
                "SimulatedPACGA needs virtual_time, max_evaluations or max_generations"
            )
        n = self.config.n_threads
        budget = stop.virtual_time
        pop, ops, neighbors, model = self.pop, self.ops, self.neighbors, self.cost_model
        ls_depth = (
            self.config.ls_iterations * self.config.p_ls if self.config.local_search else 0.0
        )

        resume, self._resume = self._resume, None
        if resume is None:
            clocks = [0.0] * n
            positions = [0] * n
            gens = [0] * n
            evals = [0] * n
            completions = 0
        else:
            clocks = [float(c) for c in resume["clocks"]]
            positions = [int(p) for p in resume["positions"]]
            gens = [int(g) for g in resume["gens"]]
            evals = [int(e) for e in resume["evals"]]
            completions = int(resume["completions"])
        obs = self.obs
        recs = None
        if obs is not None:
            # one recorder and trace lane per *logical* thread; spans are
            # stamped with virtual clocks, so the exported timeline shows
            # modeled time, not wall time
            recs = [obs.recorder(tid) for tid in range(n)]
            tracers = [obs.thread_tracer(tid, f"sim-{tid}") for tid in range(n)]
            sweep_starts = [0.0] * n
        tracked = self.contention == "tracked" and n > 1
        write_until = read_until = None
        if tracked:
            # virtual release times of each individual's locks (seconds)
            if resume is None:
                write_until = np.zeros(self.grid.size)
                read_until = np.zeros(self.grid.size)
                conflict_wait_total = 0.0
                conflicts = 0
            else:
                write_until = np.asarray(resume["write_until"], dtype=np.float64)
                read_until = np.asarray(resume["read_until"], dtype=np.float64)
                conflict_wait_total = float(resume["conflict_wait_s"])
                conflicts = int(resume["conflicts"])
            read_hold = model.t_read_hold * _US
            write_hold = model.t_write_hold * _US
            # cacheline ping-pong grows with the number of other cores
            # sharing the lines (MESI invalidation traffic)
            import math as _math

            cacheline = model.t_cacheline * _math.sqrt(n - 1) * _US
        history: list[tuple[float, int, float, float]] = []
        if resume is None:
            _, best0 = pop.best()
            history.append((0.0, 0, best0, pop.mean_fitness()))
            # (clock, tid) heap; tid breaks ties deterministically
            heap: list[tuple[float, int]] = [(0.0, tid) for tid in range(n)]
            total_evals = 0
        else:
            history.extend(tuple(row) for row in resume["history"])
            heap = [(float(c), int(tid)) for c, tid in resume["heap"]]
            total_evals = int(resume["total_evals"])
            # threads that hit the old run's stop were dropped from the
            # heap; re-seed them at their frozen clocks so a resume with
            # a larger budget lets them evolve again
            pending = {tid for _, tid in heap}
            heap.extend(
                (float(clocks[tid]), tid) for tid in range(n) if tid not in pending
            )
        heapq.heapify(heap)

        # live scheduler state, readable by capture_state at the sweep
        # boundaries where the checkpoint callback fires
        self._sched = {
            "clocks": clocks,
            "positions": positions,
            "gens": gens,
            "evals": evals,
            "heap": heap,
            "history": history,
            "completions": lambda: completions,
            "total_evals": lambda: total_evals,
            "write_until": write_until,
            "read_until": read_until,
            "conflict_wait_s": (lambda: conflict_wait_total) if tracked else None,
            "conflicts": (lambda: conflicts) if tracked else None,
        }
        while heap:
            clock, tid = heapq.heappop(heap)
            block = self.orders[tid]
            pos = positions[tid]
            if pos == 0:
                # stop checks happen only at sweep boundaries (§3.2)
                if budget is not None and clock >= budget:
                    continue
                if stop.max_generations is not None and gens[tid] >= stop.max_generations:
                    continue
            if stop.max_evaluations is not None and total_evals >= stop.max_evaluations:
                continue

            if recs is not None and pos == 0:
                sweep_starts[tid] = clock

            idx = int(block[pos])
            evolve_individual(pop, idx, neighbors[idx], ops, self._gene_rngs[tid])
            if tracked:
                # base computation (cache pressure + uncontended lock ops)
                base = (
                    model.compute_cost(ls_depth) * model.cache_factor(n) + model.t_lock
                )
                if model.jitter_sigma > 0:
                    base *= float(
                        self._jitter_rngs[tid].lognormal(0.0, model.jitter_sigma)
                    )
                base_s = base * _US
                row = neighbors[idx]
                # cacheline transfers for cross-block neighbor traffic
                extra = cacheline if self.crosses[idx] else 0.0
                # read locks queue behind in-flight writes on the targets
                read_wait = 0.0
                for r in row:
                    wait = write_until[r] - clock
                    if wait > read_wait:
                        read_wait = wait
                if read_wait > 0:
                    conflict_wait_total += read_wait
                    conflicts += 1
                else:
                    read_wait = 0.0
                reads_done = clock + read_wait + read_hold
                for r in row:
                    if read_until[r] < reads_done:
                        read_until[r] = reads_done
                # the replacement write queues behind readers and writers
                write_start = clock + read_wait + base_s + extra
                blocked_until = max(read_until[idx], write_until[idx])
                write_wait = blocked_until - write_start
                if write_wait > 0:
                    conflict_wait_total += write_wait
                    conflicts += 1
                    write_start = blocked_until
                write_until[idx] = write_start + write_hold
                clock = write_start + write_hold
                if recs is not None:
                    r = recs[tid]
                    if read_wait > 0:
                        r.inc("lock.read_wait_s_total", read_wait)
                        r.inc("lock.conflicts")
                    if write_wait > 0:
                        r.inc("lock.write_wait_s_total", write_wait)
                        r.inc("lock.conflicts")
            else:
                cost = model.step_cost(
                    n, ls_depth, bool(self.crosses[idx]), self._jitter_rngs[tid]
                )
                clock += cost * _US
            clocks[tid] = clock
            evals[tid] += 1
            total_evals += 1
            if recs is not None:
                rec = recs[tid]
                rec.inc("breeding.evaluations")
                rec.inc("breeding.steps")
                if self.crosses[idx]:
                    rec.inc("boundary_evals")

            pos += 1
            completed = pos == len(block)
            if completed:
                pos = 0
                gens[tid] += 1
                completions += 1
                if completions % self.history_stride == 0:
                    _, best = pop.best()
                    history.append(
                        (total_evals / pop.size, total_evals, best, pop.mean_fitness())
                    )
                if recs is not None:
                    rec = recs[tid]
                    dur = clock - sweep_starts[tid]
                    rec.inc("sweeps")
                    rec.observe("sweep_us", dur / _US)
                    if tracers[tid] is not None:
                        tracers[tid].complete(
                            "sweep", sweep_starts[tid], dur, {"generation": gens[tid]}
                        )
                    obs.maybe_sample(
                        total_evals,
                        lambda: {
                            **obs.engine_row(self, min(gens), total_evals),
                            "virtual_t_s": clock,
                        },
                        t_s=clock,
                    )
            positions[tid] = pos
            heapq.heappush(heap, (clock, tid))
            if completed and self._ckpt is not None and completions % self._ckpt[0] == 0:
                # the heap now holds every pending event again, so the
                # snapshot is a consistent scheduler state
                self._ckpt[1](self)

        best_idx, best_fit = pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=pop.s[best_idx].copy(),
            evaluations=total_evals,
            generations=min(gens) if gens else 0,
            elapsed_s=max(clocks) if clocks else 0.0,
            history=history,
            extra={
                "per_thread_evaluations": evals,
                "per_thread_generations": gens,
                "per_thread_clocks": clocks,
                "n_threads": n,
                "boundary_fraction": self.boundary_fraction,
                "virtual_time": budget,
                "contention": self.contention,
                **(
                    {
                        "lock_conflicts": conflicts,
                        "conflict_wait_s": conflict_wait_total,
                    }
                    if tracked
                    else {}
                ),
            },
        )
        return finish_run(
            self,
            result,
            engine_name=self.engine_name,
            meta={"n_threads": n, "contention": self.contention},
            t_s=(max(clocks) if clocks else 0.0) if obs is not None else None,
        )

"""PA-CGA on real OS threads (the paper's architecture, §3.2).

The population is partitioned into contiguous row-major blocks, one per
thread; every thread sweeps its block in fixed line order with *no*
generation barrier, and per-individual RW locks make cross-block
neighborhood access safe — exactly Algorithms 2 and 3.

CPython note: the GIL serializes the pure-Python breeding loop, so this
engine demonstrates correctness under true concurrency (races would
corrupt the CT invariants, and the test suite checks they never do) but
not wall-clock speedup; use :class:`repro.parallel.processes.ProcessPACGA`
for real parallelism or :class:`repro.parallel.simengine.SimulatedPACGA`
for the paper's performance model.

Observability: pass ``obs=repro.obs.Observer(...)`` and every worker
gets a private metric recorder (evals, sweep latency, boundary reads,
phase timings via instrumented operators), the per-individual locks are
wrapped in a :class:`~repro.parallel.rwlock.TrackedLockManager` for
wait/hold timing, and worker 0 samples the convergence time series.
With ``obs=None`` the original untimed loop runs — the two code paths
are kept separate so the disabled mode costs nothing.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.hooks import as_hooks
from repro.cga.neighborhood import neighbor_table
from repro.cga.population import Population
from repro.cga.sweep import sweep_order
from repro.heuristics.minmin import min_min
from repro.parallel.rwlock import LockManager, TrackedLockManager
from repro.rng import spawn_rngs

__all__ = ["ThreadedPACGA"]


class ThreadedPACGA:
    """Parallel asynchronous cellular GA on ``config.n_threads`` threads.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    config:
        Algorithm parameterization; ``config.n_threads`` blocks are
        created (Table 1 uses 1–4).
    seed:
        Root of the per-thread seed tree (thread ``t`` receives spawn
        ``t``, plus one stream for population init).
    obs:
        Optional :class:`repro.obs.Observer` for run telemetry.  With
        live export or a stall deadline configured on the observer, the
        run additionally publishes ``live.json``/OpenMetrics and runs
        the worker-heartbeat watchdog.
    hooks:
        Optional :class:`~repro.cga.hooks.EngineHooks` (or bare
        callable); this engine dispatches ``on_stall`` (from the
        watchdog monitor thread) and ``on_stop``.
    """

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        obs=None,
        hooks=None,
    ):
        self.instance = instance
        self.config = config or CGAConfig()
        self.hooks = as_hooks(hooks)
        self.grid = self.config.grid
        self.neighbors = neighbor_table(self.grid, self.config.neighborhood)
        self.blocks = self.grid.partition_scheme(
            self.config.n_threads, self.config.partition
        )
        self.orders = [
            sweep_order(block, self.config.sweep, block_id=i)
            for i, block in enumerate(self.blocks)
        ]
        self.ops = self.config.resolve()
        rngs = spawn_rngs(seed, self.config.n_threads + 1)
        self._init_rng, self._thread_rngs = rngs[0], rngs[1:]
        self.pop = Population(instance, self.grid)
        seeds = [min_min(instance)] if self.config.seed_with_minmin else None
        self.pop.init_random(self._init_rng, seed_schedules=seeds, fitness_fn=self.ops.fitness)
        self.locks = LockManager(self.grid.size)

        from repro.obs.observer import resolve_observer

        self.obs = resolve_observer(self.config, obs)
        if self.obs is not None:
            # lock wait/hold timing routes to each acquiring thread's
            # private recorder (bound in the worker)
            self.locks = TrackedLockManager(self.locks)
            block_id = np.empty(self.grid.size, dtype=np.int64)
            for bid, block in enumerate(self.blocks):
                block_id[block] = bid
            #: does cell idx's neighborhood leave its own block?
            self.crosses = (block_id[self.neighbors] != block_id[:, None]).any(axis=1)

    def run(self, stop: StopCondition) -> RunResult:
        """Algorithm 2: parallel block evolution until ``stop``.

        Wall-time and evaluation budgets are supported; the evaluation
        budget is split evenly across threads (each thread checks its
        share after a full block sweep, mirroring the paper's
        "check the time after evolving the whole block" approximation).
        """
        n = self.config.n_threads
        eval_share = None
        if stop.max_evaluations is not None:
            eval_share = max(1, stop.max_evaluations // n)
        gen_cap = stop.max_generations
        wall = stop.wall_time_s

        eval_counts = [0] * n
        gen_counts = [0] * n
        obs = self.obs
        evals_live = [0] * n  # sweep-granular progress, read by the sampler
        board = None
        if obs is not None and obs.runtime_wanted:
            from repro.obs.watchdog import HeartbeatBoard

            board = HeartbeatBoard(n)

            def progress() -> dict:
                # lock-free snapshot, approximate by design (same rule
                # as the sampler thread)
                _, best = self.pop.best()
                beats = board.read()
                return {
                    "generation": min(beats) if beats else 0,
                    "evaluations": sum(evals_live),
                    "best": best,
                    "heartbeats": beats,
                    "workers_done": [bool(d) for d in board.done],
                }

            def fire_stall(event) -> None:
                if self.hooks.on_stall is not None:
                    self.hooks.on_stall(self, event)

            obs.start_runtime(board, progress, on_stall=fire_stall)
        t0 = time.perf_counter()

        def worker(tid: int) -> None:
            block = self.orders[tid]
            rng = self._thread_rngs[tid]
            pop, ops, neighbors, locks = self.pop, self.ops, self.neighbors, self.locks
            evals = 0
            gens = 0
            while True:
                if wall is not None and time.perf_counter() - t0 >= wall:
                    break
                if eval_share is not None and evals >= eval_share:
                    break
                if gen_cap is not None and gens >= gen_cap:
                    break
                for idx in block:
                    evolve_individual(pop, int(idx), neighbors[idx], ops, rng, locks)
                    evals += 1
                gens += 1
            eval_counts[tid] = evals
            gen_counts[tid] = gens

        def instrumented_worker(tid: int) -> None:
            from repro.obs.instrument import instrumented_ops

            block = self.orders[tid]
            rng = self._thread_rngs[tid]
            pop, neighbors = self.pop, self.neighbors
            rec = obs.recorder(tid)
            # the bound view skips the thread-local lookup per acquisition
            locks = self.locks.bind(rec)
            ops = instrumented_ops(self.ops, rec)
            tracer = obs.thread_tracer(tid, f"pacga-{tid}")
            crosses = self.crosses
            perf = time.perf_counter
            evals = 0
            gens = 0
            boundary = 0
            while True:
                if wall is not None and perf() - t0 >= wall:
                    break
                if eval_share is not None and evals >= eval_share:
                    break
                if gen_cap is not None and gens >= gen_cap:
                    break
                sweep_start = perf()
                for idx in block:
                    i = int(idx)
                    evolve_individual(pop, i, neighbors[i], ops, rng, locks)
                    evals += 1
                    if crosses[i]:
                        boundary += 1
                sweep_end = perf()
                gens += 1
                if board is not None:
                    board.beat(tid)
                rec.observe("sweep_us", (sweep_end - sweep_start) * 1e6)
                rec.inc("sweeps")
                if tracer is not None:
                    tracer.complete(
                        "sweep",
                        sweep_start - obs.epoch,
                        sweep_end - sweep_start,
                        {"generation": gens},
                    )
                evals_live[tid] = evals
                if tid == 0:
                    # a single designated sampler thread: the population
                    # snapshot is read lock-free (approximate by design)
                    total = sum(evals_live)
                    obs.maybe_sample(
                        total, lambda: obs.engine_row(self, gens, total)
                    )
            rec.counters["boundary_evals"] = rec.counters.get("boundary_evals", 0.0) + boundary
            locks.flush()  # publish this thread's buffered lock wait/hold totals
            if board is not None:
                board.mark_done(tid)  # budget exhausted != stalled
            eval_counts[tid] = evals
            gen_counts[tid] = gens

        target = worker if obs is None else instrumented_worker
        threads = [
            threading.Thread(target=target, args=(tid,), name=f"pacga-{tid}")
            for tid in range(n)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            if obs is not None:
                # final live.json publish happens after the workers'
                # recorders have quiesced, so live counts == bundle counts
                obs.stop_runtime()
        elapsed = time.perf_counter() - t0

        best_idx, best_fit = self.pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=self.pop.s[best_idx].copy(),
            evaluations=sum(eval_counts),
            generations=min(gen_counts) if gen_counts else 0,
            elapsed_s=elapsed,
            history=[],
            extra={
                "per_thread_evaluations": eval_counts,
                "per_thread_generations": gen_counts,
                "n_threads": n,
            },
        )
        if obs is not None:
            obs.maybe_sample(
                result.evaluations,
                lambda: obs.engine_row(self, result.generations, result.evaluations),
                force=True,
            )
            obs.record_result(result)
            obs.meta.setdefault("engine", "threads")
            obs.meta.setdefault("n_threads", n)
            obs.meta.setdefault("instance", getattr(self.instance, "name", None))
            if obs.auto_finalize:
                obs.finalize()
        if self.hooks.on_stop is not None:
            self.hooks.on_stop(self, result)
        return result

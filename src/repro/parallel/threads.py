"""PA-CGA on real OS threads (the paper's architecture, §3.2).

The population is partitioned into contiguous row-major blocks, one per
thread; every thread sweeps its block in fixed line order with *no*
generation barrier, and per-individual RW locks make cross-block
neighborhood access safe — exactly Algorithms 2 and 3.

CPython note: the GIL serializes the pure-Python breeding loop, so this
engine demonstrates correctness under true concurrency (races would
corrupt the CT invariants, and the test suite checks they never do) but
not wall-clock speedup; use :class:`repro.parallel.processes.ProcessPACGA`
for real parallelism or :class:`repro.parallel.simengine.SimulatedPACGA`
for the paper's performance model.

Observability: pass ``obs=repro.obs.Observer(...)`` and every worker
gets a private metric recorder (evals, sweep latency, boundary reads,
phase timings via instrumented operators), the per-individual locks are
wrapped in a :class:`~repro.parallel.rwlock.TrackedLockManager` for
wait/hold timing, and worker 0 samples the convergence time series.
With ``obs=None`` the original untimed loop runs — the two code paths
are kept separate so the disabled mode costs nothing.

Determinism: free-running threads are *not* reproducible — the GIL
hands the interpreter between workers at arbitrary bytecode boundaries,
so two runs with the same seed interleave block updates differently.
``lockstep=True`` trades the concurrency for determinism: workers take
turns in thread-id order, one full block sweep per turn, in the calling
thread.  Genetics, budget split and per-thread RNG streams are
identical to the free-running mode; only the interleaving is pinned.
This is the mode the universal checkpoint layer
(:mod:`repro.runtime.checkpoint`) snapshots and resumes bit-exactly.
"""

from __future__ import annotations

import threading
import time

from repro.cga.config import CGAConfig, StopCondition
from repro.cga.engine import RunResult, evolve_individual
from repro.cga.hooks import as_hooks
from repro.parallel.rwlock import LockManager, TrackedLockManager
from repro.runtime.budget import Budget
from repro.runtime.context import (
    attach_runtime,
    build_context,
    detach_runtime,
    finish_run,
)

__all__ = ["ThreadedPACGA"]


class ThreadedPACGA:
    """Parallel asynchronous cellular GA on ``config.n_threads`` threads.

    Parameters
    ----------
    instance:
        ETC instance to schedule.
    config:
        Algorithm parameterization; ``config.n_threads`` blocks are
        created (Table 1 uses 1–4).
    seed:
        Root of the per-thread seed tree (thread ``t`` receives spawn
        ``t``, plus one stream for population init).
    obs:
        Optional :class:`repro.obs.Observer` for run telemetry.  With
        live export or a stall deadline configured on the observer, the
        run additionally publishes ``live.json``/OpenMetrics and runs
        the worker-heartbeat watchdog.
    hooks:
        Optional :class:`~repro.cga.hooks.EngineHooks` (or bare
        callable); this engine dispatches ``on_stall`` (from the
        watchdog monitor thread) and ``on_stop``.
    lockstep:
        Run the workers serialized in deterministic round-robin order
        instead of free-running OS threads (see module docstring).
    """

    engine_name = "threads"

    def __init__(
        self,
        instance,
        config: CGAConfig | None = None,
        seed: int | None = 0,
        obs=None,
        hooks=None,
        lockstep: bool = False,
    ):
        ctx = build_context(
            instance, config, seed=seed, workers=(config or CGAConfig()).n_threads, obs=obs
        )
        self.instance = instance
        self.config = ctx.config
        self.hooks = as_hooks(hooks)
        self.lockstep = lockstep
        self.grid = ctx.grid
        self.neighbors = ctx.neighbors
        self.blocks = ctx.blocks
        self.orders = ctx.orders
        self.ops = ctx.ops
        self._init_rng, self._thread_rngs = ctx.init_rng, ctx.worker_rngs
        self.pop = ctx.pop
        self.locks = LockManager(self.grid.size)
        #: does cell idx's neighborhood leave its own block?
        self.crosses = ctx.crosses
        n = self.config.n_threads
        self._eval_counts = [0] * n
        self._gen_counts = [0] * n
        self._resume: dict | None = None
        self._ckpt = None
        self.obs = ctx.obs
        if self.obs is not None:
            # lock wait/hold timing routes to each acquiring thread's
            # private recorder (bound in the worker)
            self.locks = TrackedLockManager(self.locks)

    # ------------------------------------------------------------------
    # checkpoint protocol (runtime.checkpoint)
    # ------------------------------------------------------------------
    def arm_checkpoint(self, every, saver) -> None:
        """Install a round-boundary checkpoint callback (lockstep only)."""
        if saver is not None and not self.lockstep:
            raise ValueError(
                "mid-run checkpoints require lockstep=True: free-running "
                "threads interleave nondeterministically and cannot be "
                "snapshotted at a consistent boundary"
            )
        self._ckpt = None if saver is None else (every, saver)

    def capture_state(self) -> dict:
        """Per-thread RNG streams plus the cumulative worker counters."""
        return {
            "rng_streams": {
                "workers": [r.bit_generator.state for r in self._thread_rngs]
            },
            "progress": {
                "eval_counts": list(self._eval_counts),
                "gen_counts": list(self._gen_counts),
            },
            "engine_options": {"lockstep": self.lockstep},
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a :meth:`capture_state` payload; next ``run`` resumes it."""
        states = payload["rng_streams"]["workers"]
        if len(states) != len(self._thread_rngs):
            raise ValueError(
                f"checkpoint has {len(states)} worker streams, "
                f"engine has {len(self._thread_rngs)}"
            )
        for rng, state in zip(self._thread_rngs, states):
            rng.bit_generator.state = state
        progress = payload.get("progress")
        if progress and any(progress.get("eval_counts", ())):
            self._resume = {
                "eval_counts": [int(e) for e in progress["eval_counts"]],
                "gen_counts": [int(g) for g in progress["gen_counts"]],
            }
        else:
            self._resume = None

    # ------------------------------------------------------------------
    def run(self, stop: StopCondition) -> RunResult:
        """Algorithm 2: parallel block evolution until ``stop``.

        Wall-time and evaluation budgets are supported; the evaluation
        budget is split evenly across threads (each thread checks its
        share after a full block sweep, mirroring the paper's
        "check the time after evolving the whole block" approximation).
        """
        resume, self._resume = self._resume, None
        n = self.config.n_threads
        self._eval_counts = list(resume["eval_counts"]) if resume else [0] * n
        self._gen_counts = list(resume["gen_counts"]) if resume else [0] * n
        if self.lockstep:
            return self._run_lockstep(stop)
        return self._run_free(stop)

    def _result(self, budget: Budget) -> RunResult:
        eval_counts, gen_counts = self._eval_counts, self._gen_counts
        best_idx, best_fit = self.pop.best()
        result = RunResult(
            best_fitness=best_fit,
            best_assignment=self.pop.s[best_idx].copy(),
            evaluations=sum(eval_counts),
            generations=min(gen_counts) if gen_counts else 0,
            elapsed_s=budget.elapsed,
            history=[],
            extra={
                "per_thread_evaluations": list(eval_counts),
                "per_thread_generations": list(gen_counts),
                "n_threads": self.config.n_threads,
                "lockstep": self.lockstep,
            },
        )
        return finish_run(
            self, result, engine_name=self.engine_name,
            meta={"n_threads": self.config.n_threads},
        )

    # ------------------------------------------------------------------
    def _run_lockstep(self, stop: StopCondition) -> RunResult:
        """Deterministic serialized mode: round-robin block sweeps.

        Workers act in thread-id order, one full block sweep per turn,
        so the interleaving (and therefore the run) is a pure function
        of the seed.  Budget semantics match the free-running mode:
        per-worker evaluation shares, checked at sweep boundaries.
        """
        n = self.config.n_threads
        budget = Budget(stop)
        share = budget.eval_share(n)
        evals, gens = self._eval_counts, self._gen_counts
        pop, ops, neighbors, locks = self.pop, self.ops, self.neighbors, self.locks
        board = attach_runtime(self, n, lambda: (min(gens), sum(evals)))
        budget.start()
        rounds = 0
        try:
            active = [True] * n
            while any(active):
                for tid in range(n):
                    if not active[tid]:
                        continue
                    if budget.worker_exhausted(evals[tid], gens[tid], share):
                        active[tid] = False
                        if board is not None:
                            board.mark_done(tid)
                        continue
                    rng = self._thread_rngs[tid]
                    for idx in self.orders[tid]:
                        evolve_individual(pop, int(idx), neighbors[idx], ops, rng, locks)
                        evals[tid] += 1
                    gens[tid] += 1
                    if board is not None:
                        board.beat(tid)
                rounds += 1
                if self._ckpt is not None and rounds % self._ckpt[0] == 0 and any(active):
                    self._ckpt[1](self)
        finally:
            detach_runtime(self, board)
        return self._result(budget)

    # ------------------------------------------------------------------
    def _run_free(self, stop: StopCondition) -> RunResult:
        """Free-running OS threads (the paper's concurrent execution)."""
        n = self.config.n_threads
        budget = Budget(stop)
        eval_share = budget.eval_share(n)
        eval_counts, gen_counts = self._eval_counts, self._gen_counts
        obs = self.obs
        evals_live = list(eval_counts)  # sweep-granular, read by the sampler
        board = attach_runtime(self, n, lambda: (None, sum(evals_live)))
        budget.start()

        def worker(tid: int) -> None:
            block = self.orders[tid]
            rng = self._thread_rngs[tid]
            pop, ops, neighbors, locks = self.pop, self.ops, self.neighbors, self.locks
            evals = eval_counts[tid]
            gens = gen_counts[tid]
            while not budget.worker_exhausted(evals, gens, eval_share):
                for idx in block:
                    evolve_individual(pop, int(idx), neighbors[idx], ops, rng, locks)
                    evals += 1
                gens += 1
            eval_counts[tid] = evals
            gen_counts[tid] = gens

        def instrumented_worker(tid: int) -> None:
            from repro.obs.instrument import instrumented_ops

            block = self.orders[tid]
            rng = self._thread_rngs[tid]
            pop, neighbors = self.pop, self.neighbors
            rec = obs.recorder(tid)
            # the bound view skips the thread-local lookup per acquisition
            locks = self.locks.bind(rec)
            ops = instrumented_ops(self.ops, rec)
            tracer = obs.thread_tracer(tid, f"pacga-{tid}")
            crosses = self.crosses
            perf = time.perf_counter
            evals = eval_counts[tid]
            gens = gen_counts[tid]
            boundary = 0
            while not budget.worker_exhausted(evals, gens, eval_share):
                sweep_start = perf()
                for idx in block:
                    i = int(idx)
                    evolve_individual(pop, i, neighbors[i], ops, rng, locks)
                    evals += 1
                    if crosses[i]:
                        boundary += 1
                sweep_end = perf()
                gens += 1
                if board is not None:
                    board.beat(tid)
                rec.observe("sweep_us", (sweep_end - sweep_start) * 1e6)
                rec.inc("sweeps")
                if tracer is not None:
                    tracer.complete(
                        "sweep",
                        sweep_start - obs.epoch,
                        sweep_end - sweep_start,
                        {"generation": gens},
                    )
                evals_live[tid] = evals
                if tid == 0:
                    # a single designated sampler thread: the population
                    # snapshot is read lock-free (approximate by design)
                    total = sum(evals_live)
                    obs.maybe_sample(
                        total, lambda: obs.engine_row(self, gens, total)
                    )
            rec.counters["boundary_evals"] = rec.counters.get("boundary_evals", 0.0) + boundary
            locks.flush()  # publish this thread's buffered lock wait/hold totals
            if board is not None:
                board.mark_done(tid)  # budget exhausted != stalled
            eval_counts[tid] = evals
            gen_counts[tid] = gens

        target = worker if obs is None else instrumented_worker
        threads = [
            threading.Thread(target=target, args=(tid,), name=f"pacga-{tid}")
            for tid in range(n)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            # final live.json publish happens after the workers'
            # recorders have quiesced, so live counts == bundle counts
            detach_runtime(self, board)
        return self._result(budget)

"""Calibrate a :class:`CostModel` against the current machine.

The shipped :data:`repro.parallel.costmodel.XEON_E5440` reproduces the
*paper's* platform.  On real multicore hardware you may want Fig. 4
for *your* machine: this module measures the per-step costs of the
actual breeding loop — base breeding, one H2LL pass, uncontended lock
traffic — and returns a :class:`CostModel` with those computation
constants (the contention and cache terms keep the paper-calibrated
defaults unless overridden; measuring true cross-core contention needs
real cores, which CI containers rarely expose).
"""

from __future__ import annotations

import time
from dataclasses import replace


from repro.cga.config import CGAConfig
from repro.cga.engine import NullLocks, evolve_individual
from repro.cga.neighborhood import neighbor_table
from repro.cga.population import Population
from repro.etc.model import ETCMatrix
from repro.parallel.costmodel import XEON_E5440, CostModel
from repro.parallel.rwlock import LockManager
from repro.rng import make_rng

__all__ = ["measure_cost_model", "time_breeding_step"]


def time_breeding_step(
    instance: ETCMatrix,
    ls_iterations: int,
    samples: int = 2000,
    seed: int = 0,
    locks: bool = False,
) -> float:
    """Mean wall time of one breeding step, in microseconds.

    Runs the genuine ``evolve_individual`` over a warm population so
    the measurement includes exactly what the virtual clock charges.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    config = CGAConfig(
        grid_rows=8, grid_cols=8, ls_iterations=ls_iterations, seed_with_minmin=False
    )
    rng = make_rng(seed)
    grid = config.grid
    pop = Population(instance, grid)
    pop.init_random(rng)
    neighbors = neighbor_table(grid, config.neighborhood)
    ops = config.resolve()
    lock_mgr = LockManager(grid.size) if locks else NullLocks()
    # warm-up pass (allocations, caches, branch predictors)
    for idx in range(grid.size):
        evolve_individual(pop, idx, neighbors[idx], ops, rng, lock_mgr)
    t0 = time.perf_counter()
    n = grid.size
    for i in range(samples):
        idx = i % n
        evolve_individual(pop, idx, neighbors[idx], ops, rng, lock_mgr)
    return (time.perf_counter() - t0) / samples * 1e6


def measure_cost_model(
    instance: ETCMatrix,
    samples: int = 2000,
    seed: int = 0,
    base: CostModel = XEON_E5440,
) -> CostModel:
    """Fit the computation constants of a CostModel to this machine.

    * ``t_breed``  — step time with 0 LS iterations, lock-free;
    * ``t_ls_iter`` — slope of step time vs LS depth (measured at 10);
    * ``t_lock``  — extra cost of running the same steps through real
      (uncontended) RW locks.

    Contention (``t_boundary``) and cache terms are inherited from
    ``base`` — they cannot be measured without real parallel cores.
    """
    t0 = time_breeding_step(instance, 0, samples, seed, locks=False)
    t10 = time_breeding_step(instance, 10, samples, seed, locks=False)
    t0_locked = time_breeding_step(instance, 0, samples, seed, locks=True)
    t_ls = max((t10 - t0) / 10.0, 0.0)
    t_lock = max(t0_locked - t0, 0.0)
    return replace(base, t_breed=t0, t_ls_iter=t_ls, t_lock=t_lock)

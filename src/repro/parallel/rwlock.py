"""Readers-writer lock and per-individual lock manager.

The paper synchronizes concurrent access to individuals with a POSIX
``pthread_rwlock`` (§3.2): concurrent reads are allowed, reads never
overlap writes, writes never overlap writes.  Python's stdlib has no RW
lock, so this is a classic writer-preference implementation on a
:class:`threading.Condition` — writer preference matters because the
replacement write at the end of every breeding loop must not starve
behind the much more frequent neighbor reads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from time import perf_counter as _perf

__all__ = ["RWLock", "LockManager", "TrackedRWLock", "TrackedLockManager"]


class RWLock:
    """Writer-preference readers-writer lock.

    Invariants: ``_readers >= 0``; ``_writer`` implies ``_readers == 0``;
    pending writers block new readers.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the read section, waking writers when the last one exits."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side ----------------------------------------------------
    def acquire_write(self) -> None:
        """Block until exclusive, with preference over new readers."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Leave the write section and wake everyone."""
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without matching acquire_write")
            self._writer = False
            self._cond.notify_all()

    # -- context managers -------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


def _record(recorder, kind: str, wait_s: float, hold_s: float) -> None:
    """Fold one acquisition's wait/hold into a metric recorder.

    ``recorder`` is duck-typed (``inc``/``observe``, e.g.
    :class:`repro.obs.MetricRecorder`) so the lock layer stays free of
    any observability import.  Emits, per ``kind`` in {read, write}::

        lock.<kind>_acquires           counter
        lock.<kind>_wait_s_total       counter (seconds)
        lock.<kind>_hold_s_total       counter (seconds)
        lock.<kind>_wait_us            histogram (microseconds)
    """
    recorder.inc(f"lock.{kind}_acquires")
    recorder.inc(f"lock.{kind}_wait_s_total", wait_s)
    recorder.inc(f"lock.{kind}_hold_s_total", hold_s)
    recorder.observe(f"lock.{kind}_wait_us", wait_s * 1e6)


class TrackedRWLock(RWLock):
    """A :class:`RWLock` that times acquisition waits and hold spans.

    The timing decorator path of the observability layer — and the one
    implementation shared by product code and the contention tests, so
    the semantics asserted in ``tests/test_tracked_contention.py`` are
    the semantics the engines ship.  ``recorder`` must be private to
    the measuring thread (single-owner use) or tolerate merged counts;
    engines that share locks across threads use
    :class:`TrackedLockManager`, which routes each acquisition to the
    *acquiring* thread's recorder instead.
    """

    __slots__ = ("recorder",)

    def __init__(self, recorder) -> None:
        super().__init__()
        self.recorder = recorder

    @contextmanager
    def read_locked(self):
        """Shared section, timed into the recorder."""
        t0 = time.perf_counter()
        self.acquire_read()
        t1 = time.perf_counter()
        try:
            yield
        finally:
            self.release_read()
            _record(self.recorder, "read", t1 - t0, time.perf_counter() - t1)

    @contextmanager
    def write_locked(self):
        """Exclusive section, timed into the recorder."""
        t0 = time.perf_counter()
        self.acquire_write()
        t1 = time.perf_counter()
        try:
            yield
        finally:
            self.release_write()
            _record(self.recorder, "write", t1 - t0, time.perf_counter() - t1)


class _TimedAcquire:
    """Slotted timing wrapper around one lock acquisition.

    A hand-rolled context manager (not ``@contextmanager``) because this
    sits on the hottest path of the instrumented engines: one generator
    object per neighbor read is measurable overhead at PA-CGA rates.
    """

    __slots__ = ("_cm", "_stats", "_t0", "_t1")

    def __init__(self, cm, stats):
        self._cm = cm
        self._stats = stats

    def __enter__(self):
        self._t0 = _perf()
        out = self._cm.__enter__()
        self._t1 = _perf()
        return out

    def __exit__(self, exc_type, exc, tb):
        out = self._cm.__exit__(exc_type, exc, tb)
        end = _perf()
        st = self._stats
        wait = self._t1 - self._t0
        st.sampled += 1
        st.wait_s += wait
        st.hold_s += end - self._t1
        st.observe_wait(wait * 1e6)
        return out


class _LockStats:
    """Per-thread, per-kind accumulator for lock wait/hold times.

    Acquisition *counts* are exact; wait/hold *timing* is sampled — one
    acquisition in ``mask + 1`` is clocked, the way Go's mutex profiler
    and ``perf`` keep profiling off the hot path.  Writes use
    ``mask=0`` (every acquisition timed: rare and load-bearing for the
    writer-preference analysis); the far more frequent neighbor reads
    use ``mask=7``.  On :meth:`flush` the sampled wait/hold sums are
    scaled by the inverse sampling rate, giving unbiased total
    estimates; the wait histogram keeps raw sampled observations.
    :class:`_TimedAcquire` mutates the attributes directly.
    """

    __slots__ = ("kind", "mask", "acquires", "sampled", "wait_s", "hold_s", "observe_wait")

    def __init__(self, kind: str, recorder, mask: int = 0):
        self.kind = kind
        self.mask = mask
        self.acquires = 0
        self.sampled = 0
        self.wait_s = 0.0
        self.hold_s = 0.0
        self.observe_wait = recorder.hist(f"lock.{kind}_wait_us").observe

    def flush(self, recorder) -> None:
        """Publish the accumulated totals as counters (idempotent adds)."""
        scale = float(self.mask + 1)
        recorder.inc(f"lock.{self.kind}_acquires", self.acquires)
        recorder.inc(f"lock.{self.kind}_timed", self.sampled)
        recorder.inc(f"lock.{self.kind}_wait_s_total", self.wait_s * scale)
        recorder.inc(f"lock.{self.kind}_hold_s_total", self.hold_s * scale)
        self.acquires = 0
        self.sampled = 0
        self.wait_s = 0.0
        self.hold_s = 0.0


class _BoundLocks:
    """One thread's pre-bound view of a :class:`TrackedLockManager`.

    Returned by :meth:`TrackedLockManager.bind`; hot loops should hold
    onto it and call ``read``/``write`` here, skipping the
    ``threading.local`` lookup the manager itself must pay per call.
    """

    __slots__ = ("_read", "_write", "_recorder", "read_stats", "write_stats")

    #: time one read acquisition in 8; see :class:`_LockStats`
    READ_SAMPLE_MASK = 7

    def __init__(self, base, recorder):
        self._read = base.read
        self._write = base.write
        self._recorder = recorder
        self.read_stats = _LockStats("read", recorder, mask=self.READ_SAMPLE_MASK)
        self.write_stats = _LockStats("write", recorder)

    def read(self, idx: int):
        """Shared access to individual ``idx``; timing is sampled."""
        st = self.read_stats
        st.acquires += 1
        if (st.acquires - 1) & st.mask:
            return self._read(idx)
        return _TimedAcquire(self._read(idx), st)

    def write(self, idx: int):
        """Timed exclusive access to individual ``idx``."""
        st = self.write_stats
        st.acquires += 1
        return _TimedAcquire(self._write(idx), st)

    def flush(self) -> None:
        """Publish the accumulated wait/hold totals as counters."""
        self.read_stats.flush(self._recorder)
        self.write_stats.flush(self._recorder)


class TrackedLockManager:
    """Timing decorator around any read/write lock manager.

    Wraps the two-method ``read(idx)``/``write(idx)`` protocol and
    charges each acquisition to the recorder the *calling thread* bound
    via :meth:`bind` — per-thread recording keeps the instrumentation
    itself lock-free (the no-added-contention rule of ``repro.obs``).
    Threads that never bind pass through untimed.  Wait/hold totals
    accumulate thread-locally; they land in the recorder's counters on
    :meth:`flush`.  ``bind`` also returns the thread's
    :class:`_BoundLocks` view, which skips the per-call thread-local
    lookup — worker hot loops should use that directly.
    """

    __slots__ = ("_base", "_local")

    def __init__(self, base: "LockManager"):
        self._base = base
        self._local = threading.local()

    def __len__(self) -> int:
        return len(self._base)

    def bind(self, recorder) -> "_BoundLocks":
        """Attach the calling thread's private metric recorder."""
        bound = _BoundLocks(self._base, recorder)
        self._local.bound = bound
        return bound

    def flush(self) -> None:
        """Publish the calling thread's accumulated lock totals."""
        bound = getattr(self._local, "bound", None)
        if bound is not None:
            bound.flush()

    def read(self, idx: int):
        """Timed shared access to individual ``idx``."""
        bound = getattr(self._local, "bound", None)
        if bound is None:
            return self._base.read(idx)
        return bound.read(idx)

    def write(self, idx: int):
        """Timed exclusive access to individual ``idx``."""
        bound = getattr(self._local, "bound", None)
        if bound is None:
            return self._base.write(idx)
        return bound.write(idx)


class LockManager:
    """One RW lock per individual, the granularity of the paper.

    Implements the two-method protocol of
    :class:`repro.cga.engine.NullLocks`, so ``evolve_individual`` works
    unchanged under real concurrency.
    """

    __slots__ = ("_locks",)

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one lock, got {n}")
        self._locks = [RWLock() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._locks)

    def read(self, idx: int):
        """Context manager: shared access to individual ``idx``."""
        return self._locks[idx].read_locked()

    def write(self, idx: int):
        """Context manager: exclusive access to individual ``idx``."""
        return self._locks[idx].write_locked()

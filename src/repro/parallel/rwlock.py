"""Readers-writer lock and per-individual lock manager.

The paper synchronizes concurrent access to individuals with a POSIX
``pthread_rwlock`` (§3.2): concurrent reads are allowed, reads never
overlap writes, writes never overlap writes.  Python's stdlib has no RW
lock, so this is a classic writer-preference implementation on a
:class:`threading.Condition` — writer preference matters because the
replacement write at the end of every breeding loop must not starve
behind the much more frequent neighbor reads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock", "LockManager"]


class RWLock:
    """Writer-preference readers-writer lock.

    Invariants: ``_readers >= 0``; ``_writer`` implies ``_readers == 0``;
    pending writers block new readers.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the read section, waking writers when the last one exits."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side ----------------------------------------------------
    def acquire_write(self) -> None:
        """Block until exclusive, with preference over new readers."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Leave the write section and wake everyone."""
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without matching acquire_write")
            self._writer = False
            self._cond.notify_all()

    # -- context managers -------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class LockManager:
    """One RW lock per individual, the granularity of the paper.

    Implements the two-method protocol of
    :class:`repro.cga.engine.NullLocks`, so ``evolve_individual`` works
    unchanged under real concurrency.
    """

    __slots__ = ("_locks",)

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one lock, got {n}")
        self._locks = [RWLock() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._locks)

    def read(self, idx: int):
        """Context manager: shared access to individual ``idx``."""
        return self._locks[idx].read_locked()

    def write(self, idx: int):
        """Context manager: exclusive access to individual ``idx``."""
        return self._locks[idx].write_locked()

"""Population-wide H2LL local search (batch Algorithm 4).

One H2LL pass for *every* individual is a handful of array ops: a
row-argmax for the loaded machines, an inverse-CDF draw for the random
task on each, an ``argpartition`` over the CT matrix for the N
least-loaded candidate machines, and one ETC gather for the candidate
scan.  The scalar reference (:func:`repro.cga.local_search.h2ll`)
iterates candidates in ascending-load order and keeps the first
improving machine on ties; the batch kernel takes the argmin over the
candidate set, so tie-breaks can differ — every accepted move still
strictly reduces that row's makespan, the invariant the equivalence
tests assert.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["batch_h2ll", "BATCH_LOCAL_SEARCHES", "resolve_batch_local_search"]

BatchLocalSearch = Callable[
    [np.ndarray, np.ndarray, ETCMatrix, np.random.Generator, int, int | None], int
]

#: rejection-sampling draws per row before falling back to an exact scan.
_PICK_DRAWS = 64


def _random_task_on(
    s: np.ndarray, machine: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random task assigned to ``machine[p]`` in every row ``p``.

    Returns ``(task, found)``; rows whose machine holds no task get
    ``found=False``.  Rejection sampling: the first hit among K uniform
    task draws is uniform over the row's task set, and with the typical
    ``ntasks/nmachines`` load a row misses all K draws with probability
    ``(1 - 1/nm)^K`` — the few misses fall back to an exact segmented
    scan restricted to those rows.  This avoids the O(P·ntasks)
    membership scan that dominated the profile.
    """
    P, nt = s.shape
    rows = np.arange(P)
    # float-multiply draw, the same pick idiom as the scalar h2ll
    draws = (rng.random((P, _PICK_DRAWS)) * nt).astype(np.int64)
    hit = s[rows[:, None], draws] == machine[:, None]
    first = hit.argmax(axis=1)
    found = hit[rows, first]
    task = draws[rows, first]
    miss = np.flatnonzero(~found)
    if miss.size:
        idx_r, idx_t = np.nonzero(s[miss] == machine[miss, None])
        if idx_r.size:
            counts = np.bincount(idx_r, minlength=miss.size)
            starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            target = (rng.random(miss.size) * counts).astype(np.int64)
            picked = idx_t[np.minimum(starts + target, idx_t.size - 1)]
            nonempty = counts > 0
            task[miss[nonempty]] = picked[nonempty]
            found[miss[nonempty]] = True
    return task, found


def batch_h2ll(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    iterations: int = 5,
    n_candidates: int | None = None,
) -> int:
    """Run ``iterations`` H2LL passes on every row in place.

    Returns the total number of moves applied across the population.
    Each pass costs O(P·ntasks) for the task pick plus O(P·N) for the
    candidate scan — independent of how many rows actually move.
    """
    if iterations <= 0:
        return 0
    P = s.shape[0]
    nm = instance.nmachines
    ncand = n_candidates if n_candidates is not None else max(1, nm // 2)
    ncand = min(ncand, nm - 1) or 1
    etc = instance.etc
    rows = np.arange(P)
    rows2d = rows[:, None]
    moves = 0
    for _ in range(iterations):
        worst = ct.argmax(axis=1)
        task, found = _random_task_on(s, worst, rng)
        if not found.any():
            break  # ready times alone define every makespan
        # N least-loaded machines per row (unordered within the set)
        cand = np.argpartition(ct, ncand - 1, axis=1)[:, :ncand]
        scores = ct[rows2d, cand] + etc[task[:, None], cand]
        ki = scores.argmin(axis=1)
        best_mac = cand[rows, ki]
        best_score = scores[rows, ki]
        makespan = ct[rows, worst]
        apply = found & (best_score < makespan) & (best_mac != worst)
        r = np.flatnonzero(apply)
        if r.size:
            tr, wr, br = task[r], worst[r], best_mac[r]
            ct[r, wr] -= etc[tr, wr]
            ct[r, br] = best_score[r]
            s[r, tr] = br
            moves += int(r.size)
    return moves


#: registry keyed by the same names as :data:`repro.cga.local_search.LOCAL_SEARCHES`.
BATCH_LOCAL_SEARCHES: dict[str, BatchLocalSearch] = {
    "h2ll": batch_h2ll,
}


def resolve_batch_local_search(name: str) -> BatchLocalSearch:
    """Look up a batch local-search kernel by scalar-registry name."""
    try:
        return BATCH_LOCAL_SEARCHES[name]
    except KeyError:
        raise KeyError(
            f"no batch local-search kernel for {name!r}; known: {', '.join(BATCH_LOCAL_SEARCHES)}"
        ) from None

"""Batch crossover masks and batch mutations.

Crossover is factored as in the scalar operators: the *shape* of the
operator is a boolean ``(P, ntasks)`` inheritance mask (True = take the
gene from parent 2), and the child's CT follows from parent 1's by the
incremental delta rule (:func:`repro.kernels.batch_ct.batch_ct_delta`).
Mutations update ``(s, ct)`` in place with one O(1)-per-row scatter,
mirroring :mod:`repro.cga.mutation`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = [
    "crossover_mask",
    "BATCH_CROSSOVER_MASKS",
    "resolve_batch_crossover",
    "batch_move_mutation",
    "batch_swap_mutation",
    "batch_rebalance_mutation",
    "BATCH_MUTATIONS",
    "resolve_batch_mutation",
]

MaskFn = Callable[[int, int, np.random.Generator], np.ndarray]
BatchMutation = Callable[[np.ndarray, np.ndarray, ETCMatrix, np.random.Generator, np.ndarray], None]


# ----------------------------------------------------------------------
# crossover masks
# ----------------------------------------------------------------------
def _one_point_mask(P: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """opx: suffix from parent 2, cut drawn in [1, n-1] per row."""
    if n < 2:
        return np.zeros((P, n), dtype=bool)
    cuts = rng.integers(1, n, size=P)
    return np.arange(n)[None, :] >= cuts[:, None]


def _two_point_mask(P: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """tpx: parent 2's genes inside a random half-open window per row."""
    if n < 2:
        return np.zeros((P, n), dtype=bool)
    cuts = rng.integers(0, n + 1, size=(P, 2))
    a = cuts.min(axis=1)[:, None]
    b = cuts.max(axis=1)[:, None]
    cols = np.arange(n)[None, :]
    return (cols >= a) & (cols < b)


def _uniform_mask(P: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """uniform: each gene from either parent with p = 1/2."""
    return rng.random((P, n)) < 0.5


#: registry keyed by the same names as :data:`repro.cga.crossover.CROSSOVERS`.
BATCH_CROSSOVER_MASKS: dict[str, MaskFn] = {
    "opx": _one_point_mask,
    "tpx": _two_point_mask,
    "uniform": _uniform_mask,
}


def resolve_batch_crossover(name: str) -> MaskFn:
    """Look up a batch crossover mask generator by scalar-registry name."""
    try:
        return BATCH_CROSSOVER_MASKS[name]
    except KeyError:
        raise KeyError(
            f"no batch crossover kernel for {name!r}; known: {', '.join(BATCH_CROSSOVER_MASKS)}"
        ) from None


def crossover_mask(
    name: str, P: int, n: int, rng: np.random.Generator, active: np.ndarray | None = None
) -> np.ndarray:
    """Inheritance mask for P simultaneous crossovers.

    ``active`` (the per-row ``p_comb`` coin flips) zeroes the mask of
    rows that skip recombination, so those children are parent-1 clones
    exactly as in the scalar breeding step.
    """
    mask = resolve_batch_crossover(name)(P, n, rng)
    if active is not None:
        mask &= active[:, None]
    return mask


# ----------------------------------------------------------------------
# mutations
# ----------------------------------------------------------------------
def batch_move_mutation(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    active: np.ndarray,
) -> None:
    """Move one random task to one random machine in every active row."""
    P = s.shape[0]
    t = rng.integers(0, instance.ntasks, size=P)
    m = rng.integers(0, instance.nmachines, size=P, dtype=s.dtype)
    rows = np.arange(P)
    old = s[rows, t]
    r = np.flatnonzero(active & (old != m))
    if r.size == 0:
        return
    tr, mr, oldr = t[r], m[r], old[r]
    etc = instance.etc
    ct[r, oldr] -= etc[tr, oldr]
    ct[r, mr] += etc[tr, mr]
    s[r, tr] = mr


def batch_swap_mutation(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    active: np.ndarray,
) -> None:
    """Exchange the machines of two random distinct tasks per active row."""
    nt = instance.ntasks
    if nt < 2:
        return
    P = s.shape[0]
    ta = rng.integers(0, nt, size=P)
    tb = rng.integers(0, nt - 1, size=P)
    tb += tb >= ta  # distinct pair, uniform over the other nt-1 tasks
    rows = np.arange(P)
    ma = s[rows, ta]
    mb = s[rows, tb]
    r = np.flatnonzero(active & (ma != mb))
    if r.size == 0:
        return
    tar, tbr, mar, mbr = ta[r], tb[r], ma[r], mb[r]
    etc = instance.etc
    ct[r, mar] += etc[tbr, mar] - etc[tar, mar]
    ct[r, mbr] += etc[tar, mbr] - etc[tbr, mbr]
    s[r, tar] = mbr
    s[r, tbr] = mar


def batch_rebalance_mutation(
    s: np.ndarray,
    ct: np.ndarray,
    instance: ETCMatrix,
    rng: np.random.Generator,
    active: np.ndarray,
) -> None:
    """Move a random task off every active row's most loaded machine."""
    from repro.kernels.batch_ls import _random_task_on

    P = s.shape[0]
    worst = ct.argmax(axis=1)
    t, found = _random_task_on(s, worst, rng)
    if not found.any():
        return
    m = rng.integers(0, instance.nmachines, size=P, dtype=s.dtype)
    r = np.flatnonzero(active & found & (m != worst))
    if r.size == 0:
        return
    tr, mr, wr = t[r], m[r], worst[r]
    etc = instance.etc
    ct[r, wr] -= etc[tr, wr]
    ct[r, mr] += etc[tr, mr]
    s[r, tr] = mr


#: registry keyed by the same names as :data:`repro.cga.mutation.MUTATIONS`.
BATCH_MUTATIONS: dict[str, BatchMutation] = {
    "move": batch_move_mutation,
    "swap": batch_swap_mutation,
    "rebalance": batch_rebalance_mutation,
}


def resolve_batch_mutation(name: str) -> BatchMutation:
    """Look up a batch mutation kernel by scalar-registry name."""
    try:
        return BATCH_MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"no batch mutation kernel for {name!r}; known: {', '.join(BATCH_MUTATIONS)}"
        ) from None

"""Batch fitness kernels.

Makespan is a row-max over the CT matrix; the weighted objective needs
the mean flowtime of every individual, computed here for the whole
population with one global lexsort + segmented cumulative sum instead
of a per-machine Python loop (the scalar reference is
:func:`repro.cga.fitness.weighted_fitness`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cga.fitness import DEFAULT_LAMBDA
from repro.etc.model import ETCMatrix

__all__ = [
    "batch_makespan",
    "batch_mean_flowtime",
    "batch_weighted_fitness",
    "BATCH_FITNESS",
    "resolve_batch_fitness",
]

BatchFitness = Callable[[np.ndarray, np.ndarray, ETCMatrix], np.ndarray]


def batch_makespan(S: np.ndarray, ct: np.ndarray, instance: ETCMatrix) -> np.ndarray:
    """Makespan of every individual (eq. 3): a row-max over CT."""
    return ct.max(axis=1)


def batch_mean_flowtime(S: np.ndarray, instance: ETCMatrix) -> np.ndarray:
    """Mean SPT flowtime of every individual, ``(P, ntasks) -> (P,)``.

    Every (individual, machine) pair is one segment of the globally
    sorted task list; sorting once by ``(row, machine, time)`` and
    taking a segmented cumulative sum evaluates all P individuals in a
    single O(P·n log(P·n)) pass.  Per segment the flowtime is
    ``sum_k (ready + prefix_sum_k)``, identical to the scalar rule.
    """
    nt, nm = instance.ntasks, instance.nmachines
    S = np.asarray(S)
    P = S.shape[0]
    v = instance.etc[np.arange(nt)[None, :], S].ravel()  # ETC of each task on its machine
    key = (np.arange(P)[:, None] * nm + S).ravel()  # (row, machine) segment id
    order = np.lexsort((v, key))
    sv = v[order].reshape(P, nt)  # sorted by key => each row's nt entries contiguous
    sk = key[order]
    cs = np.cumsum(sv, axis=1)  # row-local prefix sums (bounds rounding per row)
    flow = cs.sum(axis=1)
    # per (row, machine) segment: the internal prefix sum at position j is
    # cs[j] - cs[segment start - 1], so the segment's flowtime correction is
    # count * (ready - prefix before the segment)
    starts = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
    counts = np.diff(np.append(starts, sk.size))
    seg_row = sk[starts] // nm
    seg_machine = sk[starts] % nm
    cs_flat = cs.ravel()
    before = np.concatenate(([0.0], cs_flat))[starts]
    before = np.where(starts - seg_row * nt > 0, before, 0.0)  # row-start segments
    np.add.at(flow, seg_row, counts * (instance.ready_times[seg_machine] - before))
    return flow / nt


def batch_weighted_fitness(
    S: np.ndarray, ct: np.ndarray, instance: ETCMatrix, lam: float = DEFAULT_LAMBDA
) -> np.ndarray:
    """Weighted makespan + mean flowtime for every individual."""
    return lam * ct.max(axis=1) + (1.0 - lam) * batch_mean_flowtime(S, instance)


#: registry keyed by the same names as :data:`repro.cga.fitness.FITNESS`.
BATCH_FITNESS: dict[str, BatchFitness] = {
    "makespan": batch_makespan,
    "makespan+flowtime": batch_weighted_fitness,
}


def resolve_batch_fitness(name: str) -> BatchFitness:
    """Look up a batch fitness kernel by scalar-registry name."""
    try:
        return BATCH_FITNESS[name]
    except KeyError:
        raise KeyError(
            f"no batch fitness kernel for {name!r}; known: {', '.join(BATCH_FITNESS)}"
        ) from None

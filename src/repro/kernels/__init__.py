"""Batch, whole-population NumPy kernels.

The scalar operators in :mod:`repro.cga` breed one cell at a time —
clear, lock-friendly, and the semantic reference for everything here —
but a synchronous generation is embarrassingly data-parallel: all
``pop_size`` selections, crossovers, mutations, local-search passes and
evaluations can be expressed as a handful of array operations over the
flat population buffers (``s``: ``(P, ntasks)``, ``ct``:
``(P, nmachines)``, ``fitness``: ``(P,)``) that
:class:`repro.cga.population.Population` already stores.

Every kernel is the batch analogue of a scalar operator and is gated by
equivalence tests (``tests/test_kernels.py``): batch completion times
must match :func:`repro.scheduling.schedule.compute_completion_times`
row by row, batch CT deltas must match :meth:`Schedule.apply_delta`,
and the batch H2LL pass must preserve the same invariants as
:func:`repro.cga.local_search.h2ll` (makespan never increases, CT stays
exact).  :class:`repro.cga.vectorized.VectorizedSyncCGA` composes these
kernels into a whole-generation engine.
"""

from repro.kernels.batch_ct import (
    batch_completion_times,
    batch_ct_delta,
    batch_resync_drift,
)
from repro.kernels.batch_fitness import (
    BATCH_FITNESS,
    batch_makespan,
    batch_mean_flowtime,
    batch_weighted_fitness,
    resolve_batch_fitness,
)
from repro.kernels.batch_select import (
    BATCH_SELECTIONS,
    batch_best_two,
    batch_center_plus_best,
    batch_random_pair,
    batch_tournament_pair,
    resolve_batch_selection,
)
from repro.kernels.batch_variation import (
    BATCH_CROSSOVER_MASKS,
    BATCH_MUTATIONS,
    batch_move_mutation,
    batch_rebalance_mutation,
    batch_swap_mutation,
    crossover_mask,
    resolve_batch_crossover,
    resolve_batch_mutation,
)
from repro.kernels.batch_ls import BATCH_LOCAL_SEARCHES, batch_h2ll, resolve_batch_local_search

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: replacement-rule name -> vectorized accept mask (child fit vs incumbent fit).
BATCH_REPLACEMENTS = {
    "if-better": lambda child, cur: child < cur,
    "if-not-worse": lambda child, cur: child <= cur,
    "always": lambda child, cur: np.ones(child.shape, dtype=bool),
}


@dataclass(frozen=True)
class BatchOps:
    """The resolved batch-kernel suite for one engine configuration.

    Produced by :func:`resolve_batch_ops`; both
    :class:`repro.cga.vectorized.VectorizedSyncCGA` and the
    shared-memory block engine (:mod:`repro.parallel.shm`) breed from
    the same suite, so "does this config have batch kernels?" is
    answered in exactly one place.  ``cross_mask`` draws the boolean
    inheritance masks (``(P, n, rng, active) -> mask``) and
    ``recombine`` applies them with the problem's CT derivation
    (``(instance, child_s, child_ct, p2_s, mask) -> new_s``).
    """

    select: Callable
    fitness: Callable
    mutate: Callable
    local_search: Callable | None
    accept: Callable
    cross_mask: Callable
    recombine: Callable


def _masked(mask_fn: Callable) -> Callable:
    """Bind a mask generator into the (P, n, rng, active) call shape."""

    def cross_mask(P, n, rng, active=None):
        mask = mask_fn(P, n, rng)
        if active is not None:
            mask &= active[:, None]
        return mask

    return cross_mask


def resolve_batch_ops(config, problem=None) -> BatchOps:
    """Resolve a config's operator *names* against a problem's batch suite.

    ``config`` only needs the operator-name attributes of
    ``repro.cga.config.CGAConfig`` (duck-typed to keep this package
    import-independent of ``repro.cga``).  ``problem`` defaults to the
    config's registered problem (the independent workload when the
    config predates the problem field).  Raises ``ValueError`` for any
    operator without a batch kernel — never a silent fallback.
    """
    if problem is None:
        from repro.problems import resolve_problem

        problem = resolve_problem(getattr(config, "problem", "independent"))
    if not problem.has_batch_kernels:
        raise ValueError(
            f"problem {problem.name!r} provides no batch-kernel suite; "
            f"use a scalar engine"
        )
    try:
        select = resolve_batch_selection(config.selection)
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    try:
        fitness = problem.batch_fitness[config.fitness]
        mutate = problem.batch_mutations[config.mutation]
        local_search = (
            problem.batch_local_searches[config.local_search]
            if config.local_search is not None
            else None
        )
    except KeyError as exc:
        raise ValueError(
            f"no batch kernel for {exc.args[0]!r} on problem {problem.name!r}"
        ) from None
    if config.crossover not in problem.batch_cross_masks:
        raise ValueError(
            f"no batch crossover kernel for {config.crossover!r} "
            f"on problem {problem.name!r}"
        )
    try:
        accept = BATCH_REPLACEMENTS[config.replacement]
    except KeyError:
        raise ValueError(
            f"no batch replacement rule for {config.replacement!r}"
        ) from None
    return BatchOps(
        select,
        fitness,
        mutate,
        local_search,
        accept,
        _masked(problem.batch_cross_masks[config.crossover]),
        problem.batch_recombine,
    )


__all__ = [
    "BATCH_REPLACEMENTS",
    "BatchOps",
    "resolve_batch_ops",
    "batch_completion_times",
    "batch_ct_delta",
    "batch_resync_drift",
    "BATCH_FITNESS",
    "batch_makespan",
    "batch_mean_flowtime",
    "batch_weighted_fitness",
    "resolve_batch_fitness",
    "BATCH_SELECTIONS",
    "batch_best_two",
    "batch_center_plus_best",
    "batch_random_pair",
    "batch_tournament_pair",
    "resolve_batch_selection",
    "BATCH_CROSSOVER_MASKS",
    "BATCH_MUTATIONS",
    "batch_move_mutation",
    "batch_rebalance_mutation",
    "batch_swap_mutation",
    "crossover_mask",
    "resolve_batch_crossover",
    "resolve_batch_mutation",
    "BATCH_LOCAL_SEARCHES",
    "batch_h2ll",
    "resolve_batch_local_search",
]

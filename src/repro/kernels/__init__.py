"""Batch, whole-population NumPy kernels.

The scalar operators in :mod:`repro.cga` breed one cell at a time —
clear, lock-friendly, and the semantic reference for everything here —
but a synchronous generation is embarrassingly data-parallel: all
``pop_size`` selections, crossovers, mutations, local-search passes and
evaluations can be expressed as a handful of array operations over the
flat population buffers (``s``: ``(P, ntasks)``, ``ct``:
``(P, nmachines)``, ``fitness``: ``(P,)``) that
:class:`repro.cga.population.Population` already stores.

Every kernel is the batch analogue of a scalar operator and is gated by
equivalence tests (``tests/test_kernels.py``): batch completion times
must match :func:`repro.scheduling.schedule.compute_completion_times`
row by row, batch CT deltas must match :meth:`Schedule.apply_delta`,
and the batch H2LL pass must preserve the same invariants as
:func:`repro.cga.local_search.h2ll` (makespan never increases, CT stays
exact).  :class:`repro.cga.vectorized.VectorizedSyncCGA` composes these
kernels into a whole-generation engine.
"""

from repro.kernels.batch_ct import (
    batch_completion_times,
    batch_ct_delta,
    batch_resync_drift,
)
from repro.kernels.batch_fitness import (
    BATCH_FITNESS,
    batch_makespan,
    batch_mean_flowtime,
    batch_weighted_fitness,
    resolve_batch_fitness,
)
from repro.kernels.batch_select import (
    BATCH_SELECTIONS,
    batch_best_two,
    batch_center_plus_best,
    batch_random_pair,
    batch_tournament_pair,
    resolve_batch_selection,
)
from repro.kernels.batch_variation import (
    BATCH_CROSSOVER_MASKS,
    BATCH_MUTATIONS,
    batch_move_mutation,
    batch_rebalance_mutation,
    batch_swap_mutation,
    crossover_mask,
    resolve_batch_crossover,
    resolve_batch_mutation,
)
from repro.kernels.batch_ls import BATCH_LOCAL_SEARCHES, batch_h2ll, resolve_batch_local_search

__all__ = [
    "batch_completion_times",
    "batch_ct_delta",
    "batch_resync_drift",
    "BATCH_FITNESS",
    "batch_makespan",
    "batch_mean_flowtime",
    "batch_weighted_fitness",
    "resolve_batch_fitness",
    "BATCH_SELECTIONS",
    "batch_best_two",
    "batch_center_plus_best",
    "batch_random_pair",
    "batch_tournament_pair",
    "resolve_batch_selection",
    "BATCH_CROSSOVER_MASKS",
    "BATCH_MUTATIONS",
    "batch_move_mutation",
    "batch_rebalance_mutation",
    "batch_swap_mutation",
    "crossover_mask",
    "resolve_batch_crossover",
    "resolve_batch_mutation",
    "BATCH_LOCAL_SEARCHES",
    "batch_h2ll",
    "resolve_batch_local_search",
]

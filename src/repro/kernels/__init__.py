"""Batch, whole-population NumPy kernels.

The scalar operators in :mod:`repro.cga` breed one cell at a time —
clear, lock-friendly, and the semantic reference for everything here —
but a synchronous generation is embarrassingly data-parallel: all
``pop_size`` selections, crossovers, mutations, local-search passes and
evaluations can be expressed as a handful of array operations over the
flat population buffers (``s``: ``(P, ntasks)``, ``ct``:
``(P, nmachines)``, ``fitness``: ``(P,)``) that
:class:`repro.cga.population.Population` already stores.

Every kernel is the batch analogue of a scalar operator and is gated by
equivalence tests (``tests/test_kernels.py``): batch completion times
must match :func:`repro.scheduling.schedule.compute_completion_times`
row by row, batch CT deltas must match :meth:`Schedule.apply_delta`,
and the batch H2LL pass must preserve the same invariants as
:func:`repro.cga.local_search.h2ll` (makespan never increases, CT stays
exact).  :class:`repro.cga.vectorized.VectorizedSyncCGA` composes these
kernels into a whole-generation engine.
"""

from repro.kernels.batch_ct import (
    batch_completion_times,
    batch_ct_delta,
    batch_resync_drift,
)
from repro.kernels.batch_fitness import (
    BATCH_FITNESS,
    batch_makespan,
    batch_mean_flowtime,
    batch_weighted_fitness,
    resolve_batch_fitness,
)
from repro.kernels.batch_select import (
    BATCH_SELECTIONS,
    batch_best_two,
    batch_center_plus_best,
    batch_random_pair,
    batch_tournament_pair,
    resolve_batch_selection,
)
from repro.kernels.batch_variation import (
    BATCH_CROSSOVER_MASKS,
    BATCH_MUTATIONS,
    batch_move_mutation,
    batch_rebalance_mutation,
    batch_swap_mutation,
    crossover_mask,
    resolve_batch_crossover,
    resolve_batch_mutation,
)
from repro.kernels.batch_ls import BATCH_LOCAL_SEARCHES, batch_h2ll, resolve_batch_local_search

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: replacement-rule name -> vectorized accept mask (child fit vs incumbent fit).
BATCH_REPLACEMENTS = {
    "if-better": lambda child, cur: child < cur,
    "if-not-worse": lambda child, cur: child <= cur,
    "always": lambda child, cur: np.ones(child.shape, dtype=bool),
}


@dataclass(frozen=True)
class BatchOps:
    """The resolved batch-kernel suite for one engine configuration.

    Produced by :func:`resolve_batch_ops`; both
    :class:`repro.cga.vectorized.VectorizedSyncCGA` and the
    shared-memory block engine (:mod:`repro.parallel.shm`) breed from
    the same suite, so "does this config have batch kernels?" is
    answered in exactly one place.
    """

    select: Callable
    fitness: Callable
    mutate: Callable
    local_search: Callable | None
    accept: Callable


def resolve_batch_ops(config) -> BatchOps:
    """Resolve a config's operator *names* against the batch registries.

    ``config`` only needs the operator-name attributes of
    ``repro.cga.config.CGAConfig`` (duck-typed to keep this package
    import-independent of ``repro.cga``).  Raises ``ValueError`` for
    any operator without a batch kernel — never a silent fallback.
    """
    try:
        select = resolve_batch_selection(config.selection)
        fitness = resolve_batch_fitness(config.fitness)
        mutate = resolve_batch_mutation(config.mutation)
        local_search = (
            resolve_batch_local_search(config.local_search)
            if config.local_search is not None
            else None
        )
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    if config.crossover not in BATCH_CROSSOVER_MASKS:
        raise ValueError(f"no batch crossover kernel for {config.crossover!r}")
    try:
        accept = BATCH_REPLACEMENTS[config.replacement]
    except KeyError:
        raise ValueError(
            f"no batch replacement rule for {config.replacement!r}"
        ) from None
    return BatchOps(select, fitness, mutate, local_search, accept)


__all__ = [
    "BATCH_REPLACEMENTS",
    "BatchOps",
    "resolve_batch_ops",
    "batch_completion_times",
    "batch_ct_delta",
    "batch_resync_drift",
    "BATCH_FITNESS",
    "batch_makespan",
    "batch_mean_flowtime",
    "batch_weighted_fitness",
    "resolve_batch_fitness",
    "BATCH_SELECTIONS",
    "batch_best_two",
    "batch_center_plus_best",
    "batch_random_pair",
    "batch_tournament_pair",
    "resolve_batch_selection",
    "BATCH_CROSSOVER_MASKS",
    "BATCH_MUTATIONS",
    "batch_move_mutation",
    "batch_rebalance_mutation",
    "batch_swap_mutation",
    "crossover_mask",
    "resolve_batch_crossover",
    "resolve_batch_mutation",
    "BATCH_LOCAL_SEARCHES",
    "batch_h2ll",
    "resolve_batch_local_search",
]

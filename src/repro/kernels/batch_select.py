"""Batch parent selection over the precomputed neighbor table.

Each kernel maps the ``(P, k)`` neighborhood-fitness matrix (gathered
as ``pop.fitness[neighbor_table]``) to two ``(P,)`` arrays of *local*
neighborhood positions, best first — the batch analogue of the scalar
selectors in :mod:`repro.cga.selection`.  All P selections use one RNG
draw block per generation, so a vectorized run is statistically (not
bitwise) equivalent to P sequential scalar draws.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "batch_best_two",
    "batch_tournament_pair",
    "batch_random_pair",
    "batch_center_plus_best",
    "BATCH_SELECTIONS",
    "resolve_batch_selection",
]

BatchSelector = Callable[[np.ndarray, np.random.Generator], tuple[np.ndarray, np.ndarray]]


def _check(fit: np.ndarray) -> None:
    if fit.ndim != 2 or fit.shape[1] < 2:
        raise ValueError(f"need a (P, k>=2) neighborhood-fitness matrix, got {fit.shape}")


def batch_best_two(fit: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """The two fittest members of every neighborhood (the paper's operator).

    Stable sort along the neighborhood axis, ties broken by position —
    row-for-row identical to :func:`repro.cga.selection.best_two`.
    """
    _check(fit)
    order = np.argsort(fit, axis=1, kind="stable")
    return order[:, 0], order[:, 1]


def batch_tournament_pair(
    fit: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Two independent binary tournaments per neighborhood."""
    _check(fit)
    P, k = fit.shape
    contenders = rng.integers(0, k, size=(P, 4))
    rows = np.arange(P)
    first = np.where(
        fit[rows, contenders[:, 0]] <= fit[rows, contenders[:, 1]],
        contenders[:, 0],
        contenders[:, 1],
    )
    second = np.where(
        fit[rows, contenders[:, 2]] <= fit[rows, contenders[:, 3]],
        contenders[:, 2],
        contenders[:, 3],
    )
    return first, second


def batch_random_pair(
    fit: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Two distinct uniformly random members per neighborhood."""
    _check(fit)
    P, k = fit.shape
    a = rng.integers(0, k, size=P)
    b = rng.integers(0, k - 1, size=P)
    b += b >= a  # skip over a, keeping b uniform on the other k-1 positions
    return a, b


def batch_center_plus_best(
    fit: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Every cell mates with its best *other* neighbor (center kept)."""
    _check(fit)
    P = fit.shape[0]
    others = 1 + fit[:, 1:].argmin(axis=1)
    rows = np.arange(P)
    center_better = fit[rows, 0] < fit[rows, others]
    first = np.where(center_better, 0, others)
    second = np.where(center_better, others, 0)
    return first, second


#: registry keyed by the same names as :data:`repro.cga.selection.SELECTIONS`.
BATCH_SELECTIONS: dict[str, BatchSelector] = {
    "best2": batch_best_two,
    "tournament": batch_tournament_pair,
    "random": batch_random_pair,
    "center+best": batch_center_plus_best,
}


def resolve_batch_selection(name: str) -> BatchSelector:
    """Look up a batch selector; raises for selectors with no batch kernel."""
    try:
        return BATCH_SELECTIONS[name]
    except KeyError:
        raise KeyError(
            f"no batch selection kernel for {name!r}; known: {', '.join(BATCH_SELECTIONS)}"
        ) from None

"""Batch completion-time kernels.

The scalar reference is :func:`repro.scheduling.schedule.compute_completion_times`
(one ``np.add.at`` scatter per individual).  For a whole population the
scatter is expressed as a single :func:`numpy.bincount` over the
flattened ``(P * nmachines)`` index space — bincount compiles to one C
loop and is several times faster than ``np.add.at`` on this workload.
"""

from __future__ import annotations

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["batch_completion_times", "batch_ct_delta", "batch_resync_drift"]


def _as_batch(S: np.ndarray, ntasks: int) -> np.ndarray:
    S = np.asarray(S)
    if S.ndim != 2 or S.shape[1] != ntasks:
        raise ValueError(f"S must be (P, ntasks={ntasks}), got {S.shape}")
    return S


def batch_completion_times(instance: ETCMatrix, S: np.ndarray) -> np.ndarray:
    """Completion times of every individual: ``(P, ntasks) -> (P, nmachines)``.

    ``out[p, m] = ready[m] + sum of ETC[t, m] over tasks t with
    S[p, t] = m`` — eq. 2 applied to the whole population with one
    flattened ``bincount`` scatter-add.
    """
    nt, nm = instance.ntasks, instance.nmachines
    S = _as_batch(S, nt)
    P = S.shape[0]
    vals = instance.etc[np.arange(nt)[None, :], S]  # (P, nt) gather
    flat_idx = (np.arange(P)[:, None] * nm + S).ravel()
    ct = np.bincount(flat_idx, weights=vals.ravel(), minlength=P * nm)
    return ct.reshape(P, nm) + instance.ready_times[None, :]


def batch_ct_delta(
    instance: ETCMatrix,
    ct: np.ndarray,
    old_S: np.ndarray,
    new_S: np.ndarray,
) -> None:
    """Update ``ct`` in place for a batch reassignment ``old_S -> new_S``.

    The vectorized analogue of :meth:`Schedule.apply_delta`: only the
    genes where the two assignment matrices disagree contribute, so the
    cost is O(#changed genes) scatter work regardless of ``ntasks``.
    """
    nt, nm = instance.ntasks, instance.nmachines
    old_S = _as_batch(old_S, nt)
    new_S = _as_batch(new_S, nt)
    if old_S.shape != new_S.shape:
        raise ValueError("old_S and new_S must have the same shape")
    P = old_S.shape[0]
    if ct.shape != (P, nm):
        raise ValueError(f"ct must be (P={P}, nmachines={nm}), got {ct.shape}")
    rows, tasks = np.nonzero(old_S != new_S)
    if rows.size == 0:
        return
    old = old_S[rows, tasks]
    new = new_S[rows, tasks]
    etc = instance.etc
    size = P * nm
    sub = np.bincount(rows * nm + old, weights=etc[tasks, old], minlength=size)
    add = np.bincount(rows * nm + new, weights=etc[tasks, new], minlength=size)
    ct += (add - sub).reshape(P, nm)


def batch_resync_drift(instance: ETCMatrix, S: np.ndarray, ct: np.ndarray) -> float:
    """Largest |incremental CT - recomputed CT| over the population.

    The batch analogue of :meth:`Schedule.resync`'s drift report, used
    to assert the CT invariant (~1e-9 relative) after long chains of
    incremental kernel updates.
    """
    fresh = batch_completion_times(instance, S)
    return float(np.abs(fresh - ct).max(initial=0.0))

"""Instance file I/O.

Two on-disk formats are supported:

* the **annotated format** written by this library: a ``#``-comment
  header carrying the instance name, a ``ntasks nmachines`` line, then
  one row of the ETC matrix per line (task-major);
* the **flat Braun format** of the original benchmark distribution:
  ``ntasks * nmachines`` numbers, one per line, task-major, with no
  dimensions — the caller must supply the shape.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.etc.model import ETCMatrix

__all__ = ["save_instance", "load_instance", "save_braun_flat", "load_braun_flat"]


def save_instance(matrix: ETCMatrix, path: str | os.PathLike) -> None:
    """Write an instance in the annotated format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if matrix.name:
            fh.write(f"# {matrix.name}\n")
        fh.write(f"{matrix.ntasks} {matrix.nmachines}\n")
        for row in matrix.etc:
            fh.write(" ".join(f"{v:.17g}" for v in row))
            fh.write("\n")


def load_instance(path: str | os.PathLike) -> ETCMatrix:
    """Read an instance written by :func:`save_instance`."""
    path = Path(path)
    name = ""
    with path.open("r", encoding="utf-8") as fh:
        line = fh.readline()
        if line.startswith("#"):
            name = line[1:].strip()
            line = fh.readline()
        try:
            ntasks, nmachines = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise ValueError(f"{path}: malformed dimension line {line!r}") from exc
        data = np.loadtxt(fh, dtype=np.float64, ndmin=2)
    if data.shape != (ntasks, nmachines):
        raise ValueError(
            f"{path}: header says {ntasks}x{nmachines} but body has shape {data.shape}"
        )
    return ETCMatrix(etc=data, name=name)


def save_braun_flat(matrix: ETCMatrix, path: str | os.PathLike) -> None:
    """Write the original flat Braun format (one value per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for v in matrix.etc.ravel():
            fh.write(f"{v:.17g}\n")


def load_braun_flat(
    path: str | os.PathLike, ntasks: int, nmachines: int, name: str = ""
) -> ETCMatrix:
    """Read a flat Braun file; the shape must be supplied by the caller."""
    path = Path(path)
    data = np.loadtxt(path, dtype=np.float64)
    expected = ntasks * nmachines
    if data.size != expected:
        raise ValueError(f"{path}: expected {expected} values, found {data.size}")
    return ETCMatrix(etc=data.reshape(ntasks, nmachines), name=name or path.stem)

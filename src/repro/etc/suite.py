"""Benchmark suites: multiple replicas of each instance class.

The original Braun distribution ships numbered replicas
(``u_c_hihi.0`` … ``u_c_hihi.k``); the paper evaluates on replica 0 of
each class.  Larger statistical studies want the full factorial, so
:func:`braun_suite` regenerates any number of replicas per class,
deterministically, with the replica index folded into the seed.

Replica 0 of each class is *exactly* the instance the registry's
:func:`repro.etc.registry.load_benchmark` returns, so results join up.
"""

from __future__ import annotations

from repro.etc.generator import ETCGeneratorSpec, generate_etc, rescale_to_range
from repro.etc.model import ETCMatrix
from repro.etc.registry import (
    BENCHMARK_INSTANCES,
    BENCHMARK_NMACHINES,
    BENCHMARK_NTASKS,
    load_benchmark,
)
from repro.rng import hash_name, stream_for

__all__ = ["replica_name", "load_replica", "braun_suite", "class_names"]


def class_names() -> list[str]:
    """The twelve class stems, e.g. ``u_c_hihi``."""
    return [name.rsplit(".", 1)[0] for name in BENCHMARK_INSTANCES]


def replica_name(class_stem: str, replica: int) -> str:
    """Instance name of one replica, e.g. ``u_c_hihi.3``."""
    if replica < 0:
        raise ValueError(f"replica must be >= 0, got {replica}")
    return f"{class_stem}.{replica}"


def load_replica(class_stem: str, replica: int) -> ETCMatrix:
    """Regenerate replica ``replica`` of one class.

    Replica 0 delegates to the cached registry loader; higher replicas
    reuse the class's published pj range (the distribution family is
    identical, only the draw differs).
    """
    base_name = f"{class_stem}.0"
    if base_name not in BENCHMARK_INSTANCES:
        raise KeyError(
            f"unknown class {class_stem!r}; known: {', '.join(class_names())}"
        )
    if replica == 0:
        return load_benchmark(base_name)
    info = BENCHMARK_INSTANCES[base_name]
    name = replica_name(class_stem, replica)
    spec = ETCGeneratorSpec(
        ntasks=BENCHMARK_NTASKS,
        nmachines=BENCHMARK_NMACHINES,
        consistency=info.consistency,
        task_het=info.task_het,
        machine_het=info.machine_het,
    )
    rng = stream_for(hash_name(name) & 0x7FFFFFFF, 0)
    raw = generate_etc(spec, rng=rng, name=name)
    return rescale_to_range(raw, info.pj_min, info.pj_max)


def braun_suite(replicas: int = 1) -> dict[str, ETCMatrix]:
    """The full factorial: ``replicas`` instances of every class.

    Returns a name → instance mapping in class-major, replica-minor
    order (``u_c_hihi.0``, ``u_c_hihi.1``, …, ``u_s_lolo.{k-1}``).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    suite: dict[str, ETCMatrix] = {}
    for stem in class_names():
        for r in range(replicas):
            inst = load_replica(stem, r)
            suite[inst.name] = inst
    return suite

"""The ETC matrix model (Braun et al. 2001, §2.1 of the paper).

An instance of the independent-task scheduling problem is fully
described by:

* the expected-time-to-compute matrix ``ETC[t][m]``,
* optionally a per-machine ready time (when machine ``m`` finishes its
  previously assigned work).

The paper stores the *transposed* matrix (machine-major) in the hot
path because H2LL and the incremental completion-time updates scan
"next few tasks on the same machine", which is contiguous in the
transposed layout (§3.3, measured 5–10 % faster).  :class:`ETCMatrix`
keeps both layouts as C-contiguous arrays so callers pick the one whose
access pattern is row-contiguous.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Consistency", "ETCMatrix"]


class Consistency(enum.Enum):
    """Consistency class of an ETC matrix (Ali et al. 2000).

    ``CONSISTENT``: if machine ``a`` runs *one* task faster than machine
    ``b``, it runs *every* task faster.  ``SEMI_CONSISTENT``: contains a
    consistent sub-matrix (even-indexed columns, by construction).
    ``INCONSISTENT``: anything else.
    """

    CONSISTENT = "c"
    SEMI_CONSISTENT = "s"
    INCONSISTENT = "i"


@dataclass(frozen=True)
class ETCMatrix:
    """Immutable ETC instance.

    Parameters
    ----------
    etc:
        ``(ntasks, nmachines)`` array of positive expected execution
        times (task-major).
    ready_times:
        Optional ``(nmachines,)`` array of machine ready times
        (defaults to all-zero, as in the benchmark instances).
    name:
        Human-readable instance name (e.g. ``u_c_hihi.0``).
    """

    etc: np.ndarray
    ready_times: np.ndarray = None  # type: ignore[assignment]
    name: str = ""
    #: machine-major copy, C-contiguous; the hot-path layout of §3.3.
    etc_t: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        etc = np.ascontiguousarray(self.etc, dtype=np.float64)
        if etc.ndim != 2:
            raise ValueError(f"ETC must be 2-D, got shape {etc.shape}")
        if etc.shape[0] < 1 or etc.shape[1] < 1:
            raise ValueError(f"ETC must be non-empty, got shape {etc.shape}")
        if not np.all(np.isfinite(etc)):
            raise ValueError("ETC contains non-finite values")
        if np.any(etc <= 0):
            raise ValueError("ETC values must be strictly positive")
        object.__setattr__(self, "etc", etc)
        object.__setattr__(self, "etc_t", np.ascontiguousarray(etc.T))
        if self.ready_times is None:
            ready = np.zeros(etc.shape[1], dtype=np.float64)
        else:
            ready = np.ascontiguousarray(self.ready_times, dtype=np.float64)
            if ready.shape != (etc.shape[1],):
                raise ValueError(
                    f"ready_times shape {ready.shape} does not match nmachines={etc.shape[1]}"
                )
            if np.any(ready < 0) or not np.all(np.isfinite(ready)):
                raise ValueError("ready_times must be finite and non-negative")
        object.__setattr__(self, "ready_times", ready)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def ntasks(self) -> int:
        """Number of independent tasks."""
        return self.etc.shape[0]

    @property
    def nmachines(self) -> int:
        """Number of heterogeneous machines."""
        return self.etc.shape[1]

    @property
    def pj_min(self) -> float:
        """Smallest processing time in the matrix (Blazewicz lower bound)."""
        return float(self.etc.min())

    @property
    def pj_max(self) -> float:
        """Largest processing time in the matrix (Blazewicz upper bound)."""
        return float(self.etc.max())

    # ------------------------------------------------------------------
    # structural classification
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """True iff the machine ordering is identical for every task.

        Equivalent to: there exists a permutation of machine columns
        making every row non-decreasing; i.e. all rows sort the machines
        the same way.  We test the standard benchmark property: rows are
        simultaneously ordered by any one row's machine ranking.
        """
        order = np.argsort(self.etc[0], kind="stable")
        reordered = self.etc[:, order]
        return bool(np.all(np.diff(reordered, axis=1) >= 0))

    def is_semi_consistent(self) -> bool:
        """True iff the even-indexed-column sub-matrix is consistent.

        This matches the benchmark construction, where every other
        column is sorted to embed a consistent sub-matrix.
        """
        sub = self.etc[:, ::2]
        if sub.shape[1] < 2:
            return False  # no non-trivial sub-matrix to be consistent
        order = np.argsort(sub[0], kind="stable")
        reordered = sub[:, order]
        return bool(np.all(np.diff(reordered, axis=1) >= 0))

    def consistency(self) -> Consistency:
        """Classify the matrix as consistent / semi-consistent / inconsistent."""
        if self.is_consistent():
            return Consistency.CONSISTENT
        if self.is_semi_consistent():
            return Consistency.SEMI_CONSISTENT
        return Consistency.INCONSISTENT

    # ------------------------------------------------------------------
    # heterogeneity metrics (Ali et al. 2000 use value ranges; we report
    # the coefficient of variation, the modern summary)
    # ------------------------------------------------------------------
    def task_heterogeneity(self) -> float:
        """Mean over machines of the coefficient of variation across tasks."""
        col_mean = self.etc.mean(axis=0)
        col_std = self.etc.std(axis=0)
        return float(np.mean(col_std / col_mean))

    def machine_heterogeneity(self) -> float:
        """Mean over tasks of the coefficient of variation across machines."""
        row_mean = self.etc.mean(axis=1)
        row_std = self.etc.std(axis=1)
        return float(np.mean(row_std / row_mean))

    # ------------------------------------------------------------------
    # notation & bounds
    # ------------------------------------------------------------------
    def blazewicz_notation(self) -> str:
        """Blazewicz et al. (1983) three-field notation used by the paper.

        Consistent matrices are uniform-machine problems (``Q``);
        inconsistent and semi-consistent ones are unrelated machines
        (``R``).
        """
        env = "Q" if self.consistency() is Consistency.CONSISTENT else "R"
        return f"{env}{self.nmachines}|{self.pj_min:.2f} <= pj <= {self.pj_max:.2f}|Cmax"

    def makespan_lower_bound(self) -> float:
        """Simple lower bound on the optimal makespan.

        max( best-machine work / nmachines spread , longest single task ):
        the total work if every task ran on its fastest machine divided
        evenly, and the unavoidable cost of the hardest single task.
        """
        best = self.etc.min(axis=1)
        lb_area = float(best.sum() / self.nmachines)
        lb_task = float(best.max())
        return max(lb_area, lb_task)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ETCMatrix):
            return NotImplemented
        return (
            self.etc.shape == other.etc.shape
            and bool(np.array_equal(self.etc, other.etc))
            and bool(np.array_equal(self.ready_times, other.ready_times))
        )

    def __hash__(self) -> int:  # frozen dataclass with arrays: hash by identity-ish digest
        return hash((self.name, self.etc.shape, float(self.etc.sum())))

    def __repr__(self) -> str:
        label = self.name or "<unnamed>"
        return (
            f"ETCMatrix({label}, {self.ntasks}x{self.nmachines}, "
            f"{self.consistency().name.lower()}, pj in [{self.pj_min:.2f}, {self.pj_max:.2f}])"
        )

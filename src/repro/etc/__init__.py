"""ETC (Expected Time to Compute) benchmark substrate.

Implements the instance model of Braun et al. (2001) used by the paper:
an ``ntasks × nmachines`` matrix ``ETC[t][m]`` giving the expected
execution time of task ``t`` on machine ``m``, plus the range-based
generator of Ali et al. (2000) that produces the twelve
``u_x_yyzz.0`` benchmark classes, Braun-format file I/O, and a registry
that deterministically regenerates each published instance.
"""

from repro.etc.model import ETCMatrix, Consistency
from repro.etc.generator import ETCGeneratorSpec, generate_etc, rescale_to_range
from repro.etc.io import load_instance, save_instance, load_braun_flat, save_braun_flat
from repro.etc.registry import (
    BENCHMARK_INSTANCES,
    InstanceInfo,
    instance_names,
    load_benchmark,
    make_instance,
)
from repro.etc.suite import braun_suite, class_names, load_replica

__all__ = [
    "ETCMatrix",
    "Consistency",
    "ETCGeneratorSpec",
    "generate_etc",
    "rescale_to_range",
    "load_instance",
    "save_instance",
    "load_braun_flat",
    "save_braun_flat",
    "BENCHMARK_INSTANCES",
    "InstanceInfo",
    "instance_names",
    "load_benchmark",
    "make_instance",
    "braun_suite",
    "class_names",
    "load_replica",
]

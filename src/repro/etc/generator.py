"""Range-based ETC generator (Ali et al. 2000; Braun et al. 2001).

The benchmark classes are produced by the *range-based* method:

1. draw a baseline vector ``tau[t] ~ U(1, R_task)`` — one value per task;
2. each row is ``ETC[t][m] = tau[t] * U(1, R_mach)``;
3. post-process for consistency:
   * consistent: sort every row ascending (machine 0 is globally
     fastest, machine M-1 globally slowest);
   * semi-consistent: sort the even-indexed columns of every row
     (embeds a consistent sub-matrix);
   * inconsistent: leave as drawn.

Braun's heterogeneity ranges: ``R_task = 3000`` (hi) / ``100`` (lo),
``R_mach = 1000`` (hi) / ``10`` (lo).

Because the original instance *files* are not redistributable here, the
registry regenerates each class from a name-derived seed and then
rescales the matrix to the exact ``pj`` range the paper publishes in
Blazewicz notation (see :func:`rescale_to_range`); a strictly
increasing affine map preserves the consistency structure and the
relative optimization landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.etc.model import Consistency, ETCMatrix
from repro.rng import make_rng

__all__ = [
    "TASK_HETEROGENEITY_RANGES",
    "MACHINE_HETEROGENEITY_RANGES",
    "ETCGeneratorSpec",
    "generate_etc",
    "generate_etc_cvb",
    "CVBSpec",
    "rescale_to_range",
]

#: Braun et al. range parameter for task heterogeneity.
TASK_HETEROGENEITY_RANGES = {"hi": 3000.0, "lo": 100.0}
#: Braun et al. range parameter for machine heterogeneity.
MACHINE_HETEROGENEITY_RANGES = {"hi": 1000.0, "lo": 10.0}


@dataclass(frozen=True)
class ETCGeneratorSpec:
    """Parameters of one range-based generation.

    ``task_het`` and ``machine_het`` are ``"hi"``/``"lo"`` labels or raw
    positive range values.
    """

    ntasks: int = 512
    nmachines: int = 16
    consistency: Consistency = Consistency.INCONSISTENT
    task_het: str | float = "hi"
    machine_het: str | float = "hi"

    def task_range(self) -> float:
        """Upper bound of the baseline-vector distribution."""
        return _resolve_range(self.task_het, TASK_HETEROGENEITY_RANGES, "task_het")

    def machine_range(self) -> float:
        """Upper bound of the per-row multiplier distribution."""
        return _resolve_range(self.machine_het, MACHINE_HETEROGENEITY_RANGES, "machine_het")


def _resolve_range(value: str | float, table: dict[str, float], what: str) -> float:
    if isinstance(value, str):
        try:
            return table[value]
        except KeyError:
            raise ValueError(f"{what} must be 'hi', 'lo' or a number, got {value!r}") from None
    v = float(value)
    if v <= 1.0:
        raise ValueError(f"{what} range must be > 1, got {v}")
    return v


def generate_etc(
    spec: ETCGeneratorSpec,
    rng: np.random.Generator | int | None = None,
    name: str = "",
) -> ETCMatrix:
    """Generate one ETC matrix with the range-based method.

    The draw order is fixed (baseline vector first, then the full
    multiplier matrix row-major) so a given ``(spec, seed)`` pair always
    yields the same matrix across platforms.
    """
    if spec.ntasks < 1 or spec.nmachines < 1:
        raise ValueError(f"instance must have >=1 task and machine, got {spec}")
    gen = make_rng(rng)
    tau = gen.uniform(1.0, spec.task_range(), size=spec.ntasks)
    mult = gen.uniform(1.0, spec.machine_range(), size=(spec.ntasks, spec.nmachines))
    etc = tau[:, None] * mult
    etc = _apply_consistency(etc, spec.consistency)
    return ETCMatrix(etc=etc, name=name)


def _apply_consistency(etc: np.ndarray, consistency: Consistency) -> np.ndarray:
    if consistency is Consistency.CONSISTENT:
        return np.sort(etc, axis=1)
    if consistency is Consistency.SEMI_CONSISTENT:
        out = etc.copy()
        out[:, ::2] = np.sort(etc[:, ::2], axis=1)
        return out
    return etc


@dataclass(frozen=True)
class CVBSpec:
    """Parameters of the coefficient-of-variation-based method.

    Ali et al.'s second generator: instead of uniform ranges, task and
    machine heterogeneity are expressed as coefficients of variation of
    gamma distributions — statistically cleaner control over
    heterogeneity (the range-based method couples mean and spread).

    ``v_task`` / ``v_machine`` are the CoVs (typical: 0.1 = lo,
    0.6 = hi); ``mean_task`` sets the scale.
    """

    ntasks: int = 512
    nmachines: int = 16
    consistency: Consistency = Consistency.INCONSISTENT
    v_task: float = 0.6
    v_machine: float = 0.6
    mean_task: float = 1000.0

    def __post_init__(self) -> None:
        if self.ntasks < 1 or self.nmachines < 1:
            raise ValueError("instance must have >= 1 task and machine")
        if self.v_task <= 0 or self.v_machine <= 0:
            raise ValueError("coefficients of variation must be positive")
        if self.mean_task <= 0:
            raise ValueError("mean_task must be positive")


def generate_etc_cvb(
    spec: CVBSpec,
    rng: np.random.Generator | int | None = None,
    name: str = "",
) -> ETCMatrix:
    """Generate an ETC matrix with the CVB method (Ali et al. 2000).

    1. draw a task baseline ``q[t] ~ Gamma(alpha_task, beta_task)``
       with ``alpha = 1 / v_task²`` and ``beta = mean_task / alpha``;
    2. each row ``ETC[t][m] ~ Gamma(alpha_mach, q[t] / alpha_mach)``
       with ``alpha_mach = 1 / v_machine²``;
    3. consistency post-processing identical to the range-based method.
    """
    gen = make_rng(rng)
    alpha_task = 1.0 / (spec.v_task**2)
    beta_task = spec.mean_task / alpha_task
    alpha_mach = 1.0 / (spec.v_machine**2)
    q = gen.gamma(shape=alpha_task, scale=beta_task, size=spec.ntasks)
    q = np.maximum(q, np.finfo(np.float64).tiny)
    etc = gen.gamma(
        shape=alpha_mach,
        scale=(q / alpha_mach)[:, None],
        size=(spec.ntasks, spec.nmachines),
    )
    etc = np.maximum(etc, np.finfo(np.float64).tiny)
    etc = _apply_consistency(etc, spec.consistency)
    return ETCMatrix(etc=etc, name=name)


def rescale_to_range(matrix: ETCMatrix, pj_min: float, pj_max: float) -> ETCMatrix:
    """Affinely map the matrix values onto ``[pj_min, pj_max]``.

    The map ``x -> a*x + b`` with ``a > 0`` is strictly increasing, so
    it preserves consistency classification and the relative ordering of
    all schedules whose makespans are linear in the values.  Used by the
    registry to pin generated instances to the exact published
    Blazewicz ranges.
    """
    if not (0 < pj_min < pj_max):
        raise ValueError(f"need 0 < pj_min < pj_max, got [{pj_min}, {pj_max}]")
    lo, hi = matrix.pj_min, matrix.pj_max
    if hi <= lo:
        raise ValueError("cannot rescale a constant matrix to a non-degenerate range")
    a = (pj_max - pj_min) / (hi - lo)
    b = pj_min - a * lo
    scaled = a * matrix.etc + b
    # guard against floating-point undershoot at the bottom edge
    np.clip(scaled, pj_min, pj_max, out=scaled)
    return ETCMatrix(etc=scaled, ready_times=matrix.ready_times, name=matrix.name)

"""Registry of the twelve Braun benchmark instances used by the paper.

The paper evaluates on ``u_x_yyzz.0`` for x ∈ {c, i, s}, yy/zz ∈
{hi, lo} with 512 tasks × 16 machines, and publishes the exact
processing-time range of every instance in Blazewicz notation
(§4.1).  The original files cannot be shipped here, so
:func:`load_benchmark` regenerates each class deterministically
(seeded by the instance name) and rescales it onto the published
range — see DESIGN.md §4 for why this preserves the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.etc.generator import ETCGeneratorSpec, generate_etc, rescale_to_range
from repro.etc.model import Consistency, ETCMatrix
from repro.rng import hash_name, stream_for

__all__ = [
    "InstanceInfo",
    "BENCHMARK_INSTANCES",
    "instance_names",
    "load_benchmark",
    "make_instance",
]

#: Tasks / machines of every benchmark instance in the paper.
BENCHMARK_NTASKS = 512
BENCHMARK_NMACHINES = 16


@dataclass(frozen=True)
class InstanceInfo:
    """Published metadata of one benchmark instance (paper §4.1)."""

    name: str
    consistency: Consistency
    task_het: str
    machine_het: str
    pj_min: float
    pj_max: float

    @property
    def blazewicz(self) -> str:
        """Published Blazewicz notation for the instance."""
        env = "Q" if self.consistency is Consistency.CONSISTENT else "R"
        return f"{env}{BENCHMARK_NMACHINES}|{self.pj_min} <= pj <= {self.pj_max}|Cmax"


def _info(name: str, pj_min: float, pj_max: float) -> InstanceInfo:
    # name pattern: u_<x>_<yy><zz>.0
    _, cons, het = name.split("_")
    het = het.split(".")[0]
    return InstanceInfo(
        name=name,
        consistency=Consistency(cons),
        task_het=het[:2],
        machine_het=het[2:],
        pj_min=pj_min,
        pj_max=pj_max,
    )


#: The 12 instances with the pj ranges published in the paper (§4.1).
BENCHMARK_INSTANCES: dict[str, InstanceInfo] = {
    info.name: info
    for info in [
        _info("u_c_hihi.0", 26.48, 2892648.25),
        _info("u_c_hilo.0", 10.01, 29316.04),
        _info("u_c_lohi.0", 12.59, 99633.62),
        _info("u_c_lolo.0", 1.44, 975.30),
        _info("u_i_hihi.0", 75.44, 2968769.25),
        _info("u_i_hilo.0", 16.00, 29914.19),
        _info("u_i_lohi.0", 13.21, 98323.66),
        _info("u_i_lolo.0", 1.03, 973.09),
        _info("u_s_hihi.0", 185.37, 2980246.00),
        _info("u_s_hilo.0", 5.63, 29346.51),
        _info("u_s_lohi.0", 4.02, 98586.44),
        _info("u_s_lolo.0", 1.69, 969.27),
    ]
}


def instance_names() -> list[str]:
    """The 12 benchmark instance names in the paper's reporting order."""
    return list(BENCHMARK_INSTANCES)


@lru_cache(maxsize=32)
def load_benchmark(name: str) -> ETCMatrix:
    """Deterministically regenerate a published benchmark instance.

    The result is cached: instances are immutable and several
    experiments share them.
    """
    try:
        info = BENCHMARK_INSTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark instance {name!r}; known: {', '.join(BENCHMARK_INSTANCES)}"
        ) from None
    spec = ETCGeneratorSpec(
        ntasks=BENCHMARK_NTASKS,
        nmachines=BENCHMARK_NMACHINES,
        consistency=info.consistency,
        task_het=info.task_het,
        machine_het=info.machine_het,
    )
    rng = stream_for(hash_name(name) & 0x7FFFFFFF, 0)
    raw = generate_etc(spec, rng=rng, name=name)
    return rescale_to_range(raw, info.pj_min, info.pj_max)


def make_instance(
    ntasks: int,
    nmachines: int,
    consistency: str | Consistency = "i",
    task_het: str | float = "hi",
    machine_het: str | float = "hi",
    seed: int | None = 0,
    name: str = "",
) -> ETCMatrix:
    """Convenience constructor for arbitrary-size instances.

    Used by examples and the "bigger problem instances" future-work
    experiments (paper §5): same generator, free dimensions.
    """
    cons = Consistency(consistency) if isinstance(consistency, str) else consistency
    spec = ETCGeneratorSpec(
        ntasks=ntasks,
        nmachines=nmachines,
        consistency=cons,
        task_het=task_het,
        machine_het=machine_het,
    )
    label = name or f"u_{cons.value}_{_het_label(task_het)}{_het_label(machine_het)}.gen"
    return generate_etc(spec, rng=seed, name=label)


def _het_label(value: str | float) -> str:
    return value if isinstance(value, str) else f"{value:g}"

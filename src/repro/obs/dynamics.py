"""Search-dynamics observability: operator attribution + grid snapshots.

PRs 2–3 observe the *runtime* (phase latencies, locks, heartbeats);
this module observes the *algorithm* — the evidence layer the paper's
async-vs-sync comparison actually argues from:

* **Operator attribution** — per-operator attempt / success /
  fitness-delta counters under a shared ``op.<phase>.<metric>`` naming
  scheme.  The scalar breeding path records them through
  :func:`repro.obs.instrument.instrumented_ops`; the batch kernels
  (vectorized engine, shm block workers) fold whole-generation masks
  through :func:`record_batch_attribution`.  Both paths produce the
  same keys with the same semantics, so attribution is engine-uniform
  and the parity test can demand identical success counts in lockstep.
* **Grid dynamics** — :class:`GridDynamics` turns periodic per-cell
  fitness snapshots into a ``grid.jsonl`` stream (fitness / age /
  improvement-count arrays per row) plus derived takeover-fraction and
  fitness-entropy fields.
* **Timeline estimators** — :func:`takeover_curve`,
  :func:`estimate_takeover_generation` and
  :func:`selection_pressure_timeline` distill the grid rows into the
  takeover-front and selection-pressure curves the cellular-GA
  literature uses to compare update schemes.

Credit assignment follows the standard adaptive-operator-selection
rule: every operator that touched an accepted child shares the full
fitness improvement (no splitting), so a crossover-then-LS success
credits both operators.  Counters live in plain recorder dicts — the
same lock-free, merge-on-read discipline as the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

__all__ = [
    "ATTRIBUTION_PHASES",
    "record_batch_attribution",
    "attribution_summary",
    "GridDynamics",
    "takeover_fraction",
    "fitness_entropy",
    "takeover_curve",
    "estimate_takeover_generation",
    "selection_pressure_timeline",
    "entropy_timeline",
    "load_grid_rows",
]

#: attribution phases, in breeding order.  Keys are
#: ``op.<phase>.attempts`` / ``.successes`` / ``.delta``; the configured
#: operator *name* for each phase lives in the run's config/meta, not in
#: the key, so scalar and batch paths emit byte-identical key sets.
ATTRIBUTION_PHASES = ("crossover", "mutation", "ls", "replacement")


def _credit(counters: dict, phase: str, attempts: int, successes: int, delta: float) -> None:
    base = f"op.{phase}."
    counters[base + "attempts"] = counters.get(base + "attempts", 0.0) + attempts
    counters[base + "successes"] = counters.get(base + "successes", 0.0) + successes
    counters[base + "delta"] = counters.get(base + "delta", 0.0) + delta


def record_batch_attribution(
    counters: dict,
    accept: np.ndarray,
    child_fit: np.ndarray,
    incumbent_fit: np.ndarray,
    crossover: np.ndarray | None = None,
    mutation: np.ndarray | None = None,
    ls: np.ndarray | None = None,
) -> None:
    """Fold one batch generation's operator outcomes into ``counters``.

    ``accept`` is the replacement mask, ``child_fit`` /
    ``incumbent_fit`` the per-row fitness pair the replacement rule
    compared, and ``crossover`` / ``mutation`` / ``ls`` the boolean
    applied-masks of each variation phase (None = phase disabled this
    generation).  Must be called *before* the accepted children are
    written back, while ``incumbent_fit`` still holds the incumbents.

    Exactly mirrors the scalar path in
    :func:`repro.obs.instrument.instrumented_ops`: attempts = rows the
    operator touched, successes = touched rows whose child replaced the
    incumbent, delta = summed fitness improvement of those rows.
    """
    accept = np.asarray(accept, dtype=bool)
    delta = np.asarray(incumbent_fit, dtype=float) - np.asarray(child_fit, dtype=float)
    for phase, mask in (("crossover", crossover), ("mutation", mutation), ("ls", ls)):
        if mask is None:
            continue
        mask = np.asarray(mask, dtype=bool)
        hit = mask & accept
        _credit(
            counters,
            phase,
            int(mask.sum()),
            int(hit.sum()),
            float(delta[hit].sum()),
        )
    _credit(
        counters,
        "replacement",
        int(accept.size),
        int(accept.sum()),
        float(delta[accept].sum()),
    )


def attribution_summary(counters: dict) -> list[dict]:
    """The ``op.*`` counters as one row per phase (report/TUI shape).

    Rows appear in breeding order and only for phases that recorded at
    least one attempt; each carries ``phase``, ``attempts``,
    ``successes``, ``success_rate`` and ``delta`` (total fitness
    improvement credited to the phase).
    """
    rows = []
    for phase in ATTRIBUTION_PHASES:
        attempts = counters.get(f"op.{phase}.attempts", 0.0)
        if not attempts:
            continue
        successes = counters.get(f"op.{phase}.successes", 0.0)
        rows.append(
            {
                "phase": phase,
                "attempts": int(attempts),
                "successes": int(successes),
                "success_rate": successes / attempts,
                "delta": counters.get(f"op.{phase}.delta", 0.0),
            }
        )
    return rows


# -- grid snapshots --------------------------------------------------------

def takeover_fraction(fitness: np.ndarray, rel_tol: float = 1e-12) -> float:
    """Fraction of cells holding the current best fitness.

    The discrete takeover front of the takeover-time literature: how
    much of the grid the best solution class has conquered.  ``rel_tol``
    absorbs float noise from incremental CT updates.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.size == 0:
        return 0.0
    best = float(fitness.min())
    return float((fitness <= best + abs(best) * rel_tol).sum() / fitness.size)


def fitness_entropy(fitness: np.ndarray, bins: int = 16) -> float:
    """Normalized Shannon entropy of the cell-fitness distribution.

    1.0 = cells spread evenly over the observed fitness range, 0.0 =
    every cell in one bucket (a converged/collapsed grid).  Uses the
    snapshot's own min–max range, so the measure tracks *relative*
    diversity as the population improves.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.size == 0:
        return 0.0
    if not np.isfinite(fitness).all():
        # engines are sampled zero-copy mid-run; tolerate transient
        # not-yet-evaluated cells rather than crash the sampler
        fitness = fitness[np.isfinite(fitness)]
        if fitness.size == 0:
            return 0.0
    lo, hi = float(fitness.min()), float(fitness.max())
    span = hi - lo
    # a span within a few ulps cannot be split into `bins` finite-sized
    # histogram bins — the grid is numerically converged
    if span <= max(abs(lo), abs(hi), 1.0) * bins * np.finfo(np.float64).eps:
        return 0.0
    counts, _ = np.histogram(fitness, bins=bins, range=(lo, hi))
    p = counts[counts > 0] / fitness.size
    return float(-(p * np.log(p)).sum() / math.log(bins))


class GridDynamics:
    """Per-cell search-dynamics tracker fed by periodic fitness snapshots.

    Each :meth:`snapshot` call diffs the population fitness vector
    against the previous snapshot to maintain per-cell improvement
    counts and ages, then emits one JSON-ready row (streamed to
    ``grid.jsonl`` when ``stream_to`` is given, retained in memory up
    to ``keep_rows`` either way).  Diff-based tracking costs the engine
    hot path nothing and works identically for every engine family —
    including forked shm workers, whose population the parent reads
    zero-copy.

    ``age`` counts *snapshots* since a cell's fitness last changed (not
    generations: the parallel engines sample at evaluation cadence
    where a global generation number is ill-defined).
    """

    def __init__(self, rows: int, cols: int, stream_to=None, keep_rows: int = 512):
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        if keep_rows < 2:
            raise ValueError(f"keep_rows must be >= 2, got {keep_rows}")
        self.shape = (int(rows), int(cols))
        n = rows * cols
        self.improvements = np.zeros(n, dtype=np.int64)
        self._age = np.zeros(n, dtype=np.int64)
        self._prev: np.ndarray | None = None
        self.rows: list[dict] = []
        self.keep_rows = keep_rows
        self.n_total = 0
        self.stream_path = Path(stream_to) if stream_to is not None else None
        self._sink = None

    @property
    def latest(self) -> dict | None:
        """The newest emitted row (None before the first snapshot)."""
        return self.rows[-1] if self.rows else None

    def snapshot(self, fitness: np.ndarray, generation: int, t_s: float) -> dict:
        """Diff ``fitness`` against the last snapshot and emit one row."""
        # always copy: shm engines hand over a live view of the shared
        # fitness arena, and every statistic below must see one
        # consistent read (np.histogram re-reads its input after range
        # checking — a concurrent worker write in between turns into
        # negative bin indices and a crash)
        fitness = np.array(fitness, dtype=float)
        if fitness.size != self.shape[0] * self.shape[1]:
            raise ValueError(
                f"fitness has {fitness.size} cells, grid is {self.shape[0]}x{self.shape[1]}"
            )
        if self._prev is None:
            changed = np.zeros(fitness.size, dtype=bool)
            improved = changed
        else:
            changed = fitness != self._prev
            improved = fitness < self._prev
        self.improvements[improved] += 1
        self._age += 1
        self._age[changed] = 0
        self._prev = fitness.copy()
        row = {
            "t_s": float(t_s),
            "generation": int(generation),
            "shape": list(self.shape),
            "best": float(fitness.min()),
            "mean": float(fitness.mean()),
            "takeover_fraction": takeover_fraction(fitness),
            "fitness_entropy": fitness_entropy(fitness),
            "fitness": np.round(fitness, 4).tolist(),
            "age": self._age.tolist(),
            "improvements": self.improvements.tolist(),
        }
        if self.stream_path is not None:
            if self._sink is None:
                self.stream_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(self.stream_path, "w", encoding="utf-8")
            self._sink.write(json.dumps(row) + "\n")
            self._sink.flush()
        if len(self.rows) >= self.keep_rows:
            del self.rows[1]  # keep row 0 (the baseline) and the newest tail
        self.rows.append(row)
        self.n_total += 1
        return row

    def close(self) -> None:
        """Flush and close the streaming sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None


# -- derived timelines -----------------------------------------------------

def takeover_curve(rows: list[dict]) -> list[tuple[float, float]]:
    """``(t_s, takeover_fraction)`` per grid row — the takeover front."""
    return [
        (row["t_s"], row["takeover_fraction"])
        for row in rows
        if "takeover_fraction" in row
    ]


def estimate_takeover_generation(rows: list[dict], threshold: float = 0.5) -> int | None:
    """First snapshot generation where the best class holds ``threshold``
    of the grid (None if the run never got there) — the discrete
    takeover-time estimator used to compare update schemes."""
    for row in rows:
        if row.get("takeover_fraction", 0.0) >= threshold:
            return int(row.get("generation", 0))
    return None


def selection_pressure_timeline(rows: list[dict]) -> list[dict]:
    """Takeover growth rate between consecutive snapshots.

    The classic selection-pressure proxy: faster takeover front growth
    = higher pressure (async sweeps should show a steeper early slope
    than sync — the paper's central dynamics claim).  Each entry maps a
    snapshot to ``d(takeover_fraction)/d(snapshot)``.
    """
    out = []
    prev = None
    for row in rows:
        frac = row.get("takeover_fraction")
        if frac is None:
            continue
        if prev is not None:
            out.append(
                {
                    "t_s": row["t_s"],
                    "generation": row.get("generation", 0),
                    "takeover_fraction": frac,
                    "growth": frac - prev,
                }
            )
        prev = frac
    return out


def entropy_timeline(rows: list[dict]) -> list[tuple[float, float]]:
    """``(t_s, fitness_entropy)`` per grid row — diversity decay curve."""
    return [
        (row["t_s"], row["fitness_entropy"]) for row in rows if "fitness_entropy" in row
    ]


def load_grid_rows(bundle_dir) -> list[dict]:
    """Reload the ``grid.jsonl`` rows of a bundle (empty list if absent)."""
    path = Path(bundle_dir) / "grid.jsonl"
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]

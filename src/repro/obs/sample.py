"""Statistical sampling profiler over ``sys._current_frames()``.

``--obs-profile`` (:mod:`repro.obs.profile`) wraps a run in cProfile —
exact, but intrusive (every Python call crosses the tracer) and blind
to forked workers: a cProfile started in the parent never sees a child
process's frames.  This module is the complementary tool: a
**low-overhead statistical sampler** that wakes ``hz`` times a second,
walks every thread's current stack, and counts collapsed stacks.  Cost
is paid at the sampling rate, not per function call, so it is safe to
leave on for real runs — and because each process runs its *own*
sampler, the forked shm/processes workers are first-class: every
worker writes ``flight/samples-<role>.collapsed`` and the observer
merges all of them into one flamegraph-ready ``samples.collapsed`` at
finalize.

Stack frames are labelled ``file.py:firstlineno(func)`` — exactly the
labels :func:`repro.obs.profile.collapse_pstats` emits for cProfile
functions, so the two profilers' outputs are directly comparable (the
test suite asserts the sampler's hot functions agree with cProfile's
on a single-process run).

Collapsed format (``flamegraph.pl`` / speedscope): one line per
distinct stack, ``frame;frame;... <count>``, counts = samples.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

from repro.obs.profile import _func_label

__all__ = [
    "StackSampler",
    "frame_label",
    "merge_collapsed",
    "parse_collapsed",
    "hot_functions",
    "load_merged_samples",
]

#: default sampling interval: 5 ms (200 Hz) keeps overhead well under
#: a percent for the engines' numpy-dominated sweeps
DEFAULT_INTERVAL_S = 0.005

#: daemon threads of the obs stack itself — excluded so the profile
#: shows the engine, not the telemetry
_OBS_THREAD_NAMES = frozenset(
    {"obs-sampler", "obs-resources", "obs-live", "obs-live-http", "obs-watchdog"}
)


def frame_label(frame) -> str:
    """cProfile-compatible label for a live frame."""
    code = frame.f_code
    return _func_label((code.co_filename, code.co_firstlineno, code.co_name))


def _collapse_frame(frame) -> str:
    """The collapsed stack (root->leaf) of one thread's live frame."""
    labels: list[str] = []
    while frame is not None:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return ";".join(labels)


class StackSampler:
    """Samples every thread's stack on a daemon thread.

    Parameters
    ----------
    interval_s:
        Seconds between sampling passes.
    out_path:
        Collapsed-stack file written on :meth:`stop` (None: in-memory).
    role:
        Label used in diagnostics only; the output format is role-free
        so per-worker files merge by plain addition.
    include_obs_threads:
        Sample the telemetry stack's own daemon threads too (off by
        default — the profile should show the engine).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        out_path=None,
        role: str = "main",
        include_obs_threads: bool = False,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.out_path = Path(out_path) if out_path is not None else None
        self.role = role
        self.include_obs_threads = include_obs_threads
        self.counts: Counter[str] = Counter()
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling --------------------------------------------------------
    def sample_once(self) -> int:
        """One pass over every thread; returns stacks recorded."""
        skip = {threading.get_ident()}
        if self._thread is not None:
            skip.add(self._thread.ident)
        excluded_names = set() if self.include_obs_threads else _OBS_THREAD_NAMES
        if excluded_names:
            skip.update(
                t.ident
                for t in threading.enumerate()
                if t.name in excluded_names and t.ident is not None
            )
        recorded = 0
        for tid, frame in list(sys._current_frames().items()):
            if tid in skip:
                continue
            stack = _collapse_frame(frame)
            if stack:
                self.counts[stack] += 1
                recorded += 1
        self.n_samples += 1
        return recorded

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "StackSampler":
        if self._thread is not None:
            return self

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.sample_once()
                except Exception:  # pragma: no cover - keep the run alive
                    pass

        self._stop.clear()
        self._thread = threading.Thread(target=loop, name="obs-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> str:
        """Stop sampling and write/return the collapsed output."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        text = self.collapsed()
        if self.out_path is not None:
            self.out_path.parent.mkdir(parents=True, exist_ok=True)
            self.out_path.write_text(text, encoding="utf-8")
        return text

    def collapsed(self) -> str:
        """Current counts in collapsed-stack format (sorted, stable)."""
        return render_collapsed(self.counts)


# -- collapsed-format helpers ----------------------------------------------

def render_collapsed(counts: dict) -> str:
    """``Counter[stack] -> text`` (one line per stack, sorted)."""
    lines = [f"{stack} {int(n)}" for stack, n in sorted(counts.items()) if n > 0]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Counter:
    """Inverse of :func:`render_collapsed`; tolerant of blank lines."""
    counts: Counter[str] = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, n = line.rpartition(" ")
        if not stack:
            continue
        try:
            counts[stack] += int(n)
        except ValueError:
            continue
    return counts


def merge_collapsed(texts) -> str:
    """Sum several collapsed-stack files into one (plain addition —
    the whole point of the per-worker format)."""
    total: Counter[str] = Counter()
    for text in texts:
        total.update(parse_collapsed(text))
    return render_collapsed(total)


def hot_functions(text: str, top: int = 10) -> list[tuple[str, int]]:
    """Hottest functions by *cumulative* samples (a function appearing
    anywhere in a stack is charged the stack's count, once per stack)."""
    cumulative: Counter[str] = Counter()
    for stack, n in parse_collapsed(text).items():
        for label in set(stack.split(";")):
            cumulative[label] += n
    return cumulative.most_common(top)


def load_merged_samples(bundle) -> str | None:
    """A bundle's merged collapsed stacks: the finalized
    ``samples.collapsed`` if present, else a merge of the per-role
    ``flight/samples-*.collapsed`` files (None when neither exists)."""
    root = Path(bundle)
    merged = root / "samples.collapsed"
    if merged.exists():
        return merged.read_text(encoding="utf-8")
    flight = root / "flight"
    parts = sorted(flight.glob("samples-*.collapsed")) if flight.is_dir() else []
    if not parts:
        return None
    return merge_collapsed(p.read_text(encoding="utf-8") for p in parts)


def profile_workload(fn, interval_s: float = 0.001, min_s: float = 0.2) -> str:
    """Run ``fn`` under a sampler for at least ``min_s`` wall seconds
    and return the collapsed stacks (test/benchmark helper)."""
    sampler = StackSampler(interval_s=interval_s).start()
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < min_s:
        fn()
    return sampler.stop()

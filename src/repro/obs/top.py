"""``repro obs top``: live search-dynamics dashboard in the terminal.

The ``watch`` view (:mod:`repro.obs.live`) prints runtime progress;
``top`` renders the *algorithm*: a per-cell fitness heatmap of the
toroidal grid, the operator success rates from the ``op.*``
attribution counters, and throughput/heartbeat/stall state — all read
from the same :class:`~repro.obs.live.LivePublisher` outputs, so the
dashboard costs a running engine nothing beyond the publisher it
already pays for.

Three source spellings are accepted::

    repro obs top out/bundle          # bundle dir -> out/bundle/live.json
    repro obs top out/bundle/live.json
    repro obs top http://127.0.0.1:9100   # LivePublisher endpoint

Interactive mode draws with stdlib :mod:`curses` (``q`` quits);
``--once`` prints one plain-text frame and exits — the headless path
CI renders from a recorded fixture.  :func:`render_frame` is pure
(snapshot dict in, text out), so the frame content is testable without
a terminal.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.dynamics import attribution_summary

__all__ = ["load_snapshot", "render_heatmap", "render_frame", "top"]

#: fitness ramp, worst cell -> best cell (best is the darkest glyph so
#: the takeover front reads as a growing dark region)
HEAT_RAMP = " .:-=+*#%@"

#: cap on rendered heatmap columns; wider grids are column-subsampled
MAX_HEAT_COLS = 64


def load_snapshot(source: str) -> dict:
    """Load a live snapshot from a bundle dir, a JSON file, or a URL.

    Raises ``OSError`` (file) / ``urllib.error.URLError`` (endpoint) /
    ``json.JSONDecodeError`` on unreadable sources — callers decide
    whether that is fatal (``--once``) or retryable (the live loop).
    """
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        url = source if source.endswith(".json") else source.rstrip("/") + "/live.json"
        with urlopen(url, timeout=5.0) as resp:
            return json.loads(resp.read().decode("utf-8"))
    path = Path(source)
    if path.is_dir():
        path = path / "live.json"
    return json.loads(path.read_text(encoding="utf-8"))


def _heat_char(value: float, lo: float, hi: float) -> str:
    """Map one cell fitness to a ramp glyph (lower fitness = darker)."""
    if hi <= lo:
        return HEAT_RAMP[-1]
    frac = (value - lo) / (hi - lo)  # 0 = best cell, 1 = worst
    idx = int(round((1.0 - frac) * (len(HEAT_RAMP) - 1)))
    return HEAT_RAMP[max(0, min(idx, len(HEAT_RAMP) - 1))]


def render_heatmap(grid_row: dict) -> list[str]:
    """The per-cell fitness field of one grid snapshot as text lines."""
    rows, cols = grid_row["shape"]
    fitness = grid_row["fitness"]
    lo, hi = min(fitness), max(fitness)
    step = max(1, (cols + MAX_HEAT_COLS - 1) // MAX_HEAT_COLS)
    lines = []
    for r in range(rows):
        row = fitness[r * cols : (r + 1) * cols : step]
        lines.append("".join(_heat_char(v, lo, hi) for v in row))
    return lines


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def render_frame(snap: dict) -> str:
    """One dashboard frame from a live snapshot (pure; golden-testable)."""
    meta = snap.get("meta", {})
    progress = snap.get("progress", {})
    counters = snap.get("metrics", {}).get("counters", {})
    lines: list[str] = []

    head = " ".join(
        f"{k}={meta[k]}" for k in ("engine", "instance", "n_threads") if k in meta
    )
    lines.append(f"repro obs top  {head}".rstrip())
    lines.append(f"updated {snap.get('updated_t_s', 0.0):.1f}s into the run")
    lines.append("")

    def num(v, digits=2):
        return f"{v:,.{digits}f}" if isinstance(v, float) else f"{v:,}"

    stats = []
    for key, label in (
        ("generation", "gen"),
        ("evaluations", "evals"),
        ("best", "best"),
        ("evals_per_s", "evals/s"),
    ):
        if progress.get(key) is not None:
            stats.append(f"{label} {num(progress[key])}")
    if stats:
        lines.append("  ".join(stats))

    heartbeats = progress.get("heartbeats")
    if heartbeats:
        done = progress.get("workers_done") or [0] * len(heartbeats)
        states = [
            f"w{w}:{'done' if done[w] else int(beat)}"
            for w, beat in enumerate(heartbeats)
        ]
        line = "workers  " + "  ".join(states)
        # currently-stalled = stalls minus recoveries: both counters are
        # cumulative, so a worker that stalled and then recovered must
        # not leave the banner stuck on a stale episode
        stalls = counters.get("watchdog.stalls", 0)
        recoveries = counters.get("watchdog.recoveries", 0)
        active_stalls = max(0, int(stalls) - int(recoveries))
        if active_stalls:
            line += f"  [STALLS: {active_stalls}]"
        lines.append(line)

    attribution = attribution_summary(counters)
    if attribution:
        lines.append("")
        lines.append("operator success rates")
        for row in attribution:
            lines.append(
                f"  {row['phase']:<11} {_bar(row['success_rate'])} "
                f"{100.0 * row['success_rate']:5.1f}%  "
                f"({row['successes']:,}/{row['attempts']:,}  "
                f"delta {row['delta']:,.1f})"
            )

    grid = snap.get("grid")
    if grid:
        rows, cols = grid["shape"]
        lines.append("")
        lines.append(
            f"grid {rows}x{cols}  best {grid['best']:,.2f}  "
            f"takeover {100.0 * grid['takeover_fraction']:.1f}%  "
            f"entropy {grid['fitness_entropy']:.3f}"
        )
        lines.extend("  " + ln for ln in render_heatmap(grid))
        lines.append(f"  [{HEAT_RAMP}]  worst -> best")

    return "\n".join(lines)


def _curses_loop(source: str, interval_s: float) -> int:
    import curses

    def main(screen) -> int:
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval_s * 1000))
        body = f"(waiting for {source})"
        while True:
            try:
                body = render_frame(load_snapshot(source))
            except Exception as exc:  # noqa: BLE001 - keep polling a live run
                body = f"(unreadable snapshot from {source}: {exc}; retrying)"
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(body.splitlines()[: max_y - 1]):
                screen.addnstr(y, 0, line, max_x - 1)
            footer = "q to quit"
            screen.addnstr(max_y - 1, 0, footer, max_x - 1)
            screen.refresh()
            key = screen.getch()  # blocks up to interval_s (timeout above)
            if key in (ord("q"), ord("Q")):
                return 0

    return curses.wrapper(main)


def top(source: str, interval_s: float = 1.0, once: bool = False, out=None) -> int:
    """``repro obs top`` entry point; returns a CLI exit code."""
    import sys

    stream = sys.stdout if out is None else out
    if once:
        try:
            snap = load_snapshot(source)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            stream.write(f"cannot load a live snapshot from {source}: {exc}\n")
            return 1
        stream.write(render_frame(snap) + "\n")
        return 0
    try:
        return _curses_loop(source, interval_s)
    except KeyboardInterrupt:
        return 0
    except ImportError:  # curses unavailable: degrade to a plain loop
        try:
            while True:
                try:
                    body = render_frame(load_snapshot(source))
                except Exception as exc:  # noqa: BLE001
                    body = f"(unreadable snapshot from {source}: {exc}; retrying)"
                stream.write("\x1b[2J\x1b[H" + body + "\n")
                stream.flush()
                time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0

"""Per-process resource telemetry: ``/proc/self`` sampler + GC pauses.

A long PA-CGA run can die of things no algorithm metric shows: a
worker leaking schedules until the OOM killer takes it, a descriptor
leak from repeated checkpoint opens, ``/dev/shm`` segments piling up
across retries, or GC pauses eating the paper's asynchrony.  This
module samples all of it with **stdlib-only** reads, one daemon
sampler thread per observed process:

* RSS and CPU time from ``/proc/self/status`` / ``/proc/self/stat``
  (graceful fallback to :mod:`resource` off Linux);
* open descriptor count from ``/proc/self/fd``;
* GC generation counts plus *measured* collection pauses via
  ``gc.callbacks`` (wall time between the ``start``/``stop``
  callbacks, summed);
* ``/dev/shm`` bytes held by this repo's named segments
  (``repro-shm-*`` — the shm engine's arenas), so a leak is visible
  while it grows instead of at the post-run leak check.

Each sample is one JSONL row (streamed to the bundle as it fires, so
rows survive a crash), the latest sample and cumulative peaks are kept
for ``live.json``/OpenMetrics, and the peaks feed the run history's
``peak_rss_mb``/``peak_fds`` columns and the
``repro obs check --max-rss-mb/--max-fds`` hard gates.

Row schema (missing fields are omitted, not null)::

    {"t_s": 1.25, "role": "w0", "pid": 4242, "rss_mb": 58.3,
     "cpu_s": 1.07, "fds": 14, "gc_gen0": 12, "gc_gen1": 3,
     "gc_gen2": 0, "gc_collections": 9, "gc_pause_s": 0.004,
     "shm_mb": 1.5}
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "read_proc_status",
    "count_open_fds",
    "shm_segment_bytes",
    "GCPauseTracker",
    "ResourceSampler",
    "load_resource_rows",
    "resource_peaks",
]

#: /dev/shm name prefix of this repo's shared-memory arenas
SHM_PREFIX = "repro-shm-"

#: fields whose running maxima the sampler tracks
PEAK_FIELDS = ("rss_mb", "fds", "shm_mb")


def read_proc_status(proc_root: str = "/proc/self") -> dict:
    """RSS (MiB) and CPU seconds of this process, stdlib-only.

    Prefers the Linux procfs; falls back to ``resource.getrusage`` so
    the sampler still produces rows on non-Linux CI.
    """
    out: dict = {}
    try:
        with open(f"{proc_root}/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    out["rss_mb"] = round(int(line.split()[1]) / 1024.0, 3)
                    break
        with open(f"{proc_root}/stat", "rb") as fh:
            # fields 14/15 (1-based) are utime/stime in clock ticks;
            # split after the parenthesized comm, which may hold spaces
            stat = fh.read().decode("ascii", "replace")
        fields = stat.rsplit(")", 1)[1].split()
        ticks = float(os.sysconf("SC_CLK_TCK"))
        out["cpu_s"] = round((int(fields[11]) + int(fields[12])) / ticks, 3)
    except (OSError, IndexError, ValueError):
        import resource as _resource

        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; Linux is our target
        out["rss_mb"] = round(ru.ru_maxrss / 1024.0, 3)
        out["cpu_s"] = round(ru.ru_utime + ru.ru_stime, 3)
    return out


def count_open_fds(proc_root: str = "/proc/self") -> int | None:
    """Open descriptors of this process (None when procfs is absent)."""
    try:
        return len(os.listdir(f"{proc_root}/fd"))
    except OSError:
        return None


def shm_segment_bytes(prefix: str = SHM_PREFIX, root: str = "/dev/shm") -> int | None:
    """Total bytes of this repo's named ``/dev/shm`` segments."""
    try:
        names = os.listdir(root)
    except OSError:
        return None
    total = 0
    for name in names:
        if name.startswith(prefix):
            try:
                total += os.stat(os.path.join(root, name)).st_size
            except OSError:  # pragma: no cover - racing unlink
                continue
    return total


class GCPauseTracker:
    """Measures garbage-collection pauses via ``gc.callbacks``.

    The interpreter invokes the callbacks synchronously around each
    collection, so the wall time between ``start`` and ``stop`` *is*
    the pause every thread of this process just paid.
    """

    def __init__(self):
        self.collections = 0
        self.pause_s = 0.0
        self._t0: float | None = None
        self._installed = False

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._t0 = time.perf_counter()
        elif phase == "stop" and self._t0 is not None:
            self.pause_s += time.perf_counter() - self._t0
            self.collections += 1
            self._t0 = None

    def install(self) -> "GCPauseTracker":
        if not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._installed = False


class ResourceSampler:
    """One process's resource sampler (pollable, or on a daemon thread).

    Parameters
    ----------
    out_path:
        JSONL file rows are appended (and fsync'd) to; None keeps rows
        in memory only.
    role:
        Row label (``main`` for the coordinating process, ``w<tid>``
        for forked workers).
    every_s:
        Cadence of the background thread (:meth:`start`).
    recorder:
        Optional :class:`~repro.obs.metrics.MetricRecorder`; each
        sample updates ``proc.*`` gauges so the resource state shows
        up in ``metrics.json``, ``live.json`` and the OpenMetrics
        endpoint with zero extra plumbing.
    clock:
        Elapsed-seconds provider stamped into ``t_s`` (defaults to
        seconds since the sampler was created).
    proc_root:
        Procfs root, injectable for tests.
    """

    def __init__(
        self,
        out_path=None,
        role: str = "main",
        every_s: float = 0.5,
        recorder=None,
        clock=None,
        proc_root: str = "/proc/self",
        track_shm: bool = True,
    ):
        if every_s <= 0:
            raise ValueError(f"every_s must be positive, got {every_s}")
        self.out_path = Path(out_path) if out_path is not None else None
        self.role = role
        self.every_s = float(every_s)
        self.recorder = recorder
        epoch = time.perf_counter()
        self.clock = clock if clock is not None else (lambda: time.perf_counter() - epoch)
        self.proc_root = proc_root
        self.track_shm = track_shm
        self.rows: list[dict] = []
        self.latest: dict | None = None
        self.peaks: dict = {}
        self.gc = GCPauseTracker().install()
        self._fh = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()  # sample() callable from signal handlers

    # -- one sample ------------------------------------------------------
    def sample(self) -> dict:
        """Take one sample now; appends, streams, updates peaks/gauges."""
        row: dict = {
            "t_s": round(self.clock(), 3),
            "role": self.role,
            "pid": os.getpid(),
        }
        row.update(read_proc_status(self.proc_root))
        fds = count_open_fds(self.proc_root)
        if fds is not None:
            row["fds"] = fds
        g0, g1, g2 = gc.get_count()
        row.update(
            {
                "gc_gen0": g0,
                "gc_gen1": g1,
                "gc_gen2": g2,
                "gc_collections": self.gc.collections,
                "gc_pause_s": round(self.gc.pause_s, 6),
            }
        )
        if self.track_shm:
            shm = shm_segment_bytes()
            if shm is not None:
                row["shm_mb"] = round(shm / (1024.0 * 1024.0), 3)
        with self._lock:
            for key in PEAK_FIELDS:
                v = row.get(key)
                if v is not None and v > self.peaks.get(f"peak_{key}", -1.0):
                    self.peaks[f"peak_{key}"] = v
            self.latest = row
            self.rows.append(row)
            if len(self.rows) > 4096:  # bounded retention, newest wins
                del self.rows[1:1024]
            if self.out_path is not None:
                if self._fh is None:
                    self.out_path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = open(self.out_path, "a", encoding="utf-8")
                self._fh.write(json.dumps(row) + "\n")
                self._fh.flush()
        rec = self.recorder
        if rec is not None:
            for key in ("rss_mb", "cpu_s", "fds", "shm_mb", "gc_pause_s"):
                if key in row:
                    rec.set_gauge(f"proc.{key}", float(row[key]))
            rec.set_gauge("proc.peak_rss_mb", self.peaks.get("peak_rss_mb", 0.0))
            if "peak_fds" in self.peaks:
                rec.set_gauge("proc.peak_fds", float(self.peaks["peak_fds"]))
        return row

    # -- background thread ----------------------------------------------
    def start(self) -> "ResourceSampler":
        """Sample once, then keep sampling every ``every_s`` seconds."""
        if self._thread is not None:
            return self
        self.sample()

        def loop() -> None:
            while not self._stop.wait(self.every_s):
                try:
                    self.sample()
                except Exception:  # pragma: no cover - keep the run alive
                    pass

        self._stop.clear()
        self._thread = threading.Thread(target=loop, name="obs-resources", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.sample()
        except Exception:  # pragma: no cover
            pass
        self.gc.uninstall()
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- offline readers --------------------------------------------------------

def load_resource_rows(bundle) -> list[dict]:
    """Every resource row of a bundle, across all processes.

    Reads the main process's ``resources.jsonl`` plus the per-worker
    ``flight/resources-<role>.jsonl`` files; rows carry their ``role``.
    """
    root = Path(bundle)
    rows: list[dict] = []
    paths = [root / "resources.jsonl"]
    flight = root / "flight"
    if flight.is_dir():
        paths.extend(sorted(flight.glob("resources-*.jsonl")))
    for path in paths:
        if not path.exists():
            continue
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:  # torn final line after a kill
                    continue
    return rows


def resource_peaks(bundle) -> dict:
    """Cross-process peaks of a bundle's resource rows.

    Returns ``{"peak_rss_mb": ..., "peak_fds": ..., "peak_shm_mb": ...}``
    (keys omitted when no row carried the field) — ``peak_rss_mb`` is
    the max over *any single process*, which is the number the OOM
    killer cares about.
    """
    peaks: dict = {}
    for row in load_resource_rows(bundle):
        for key in PEAK_FIELDS:
            v = row.get(key)
            if v is not None and v > peaks.get(f"peak_{key}", -1.0):
                peaks[f"peak_{key}"] = v
    return peaks

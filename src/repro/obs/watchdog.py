"""Worker heartbeat watchdog: detect stalled PA-CGA workers live.

The paper's asynchronous design has no generation barrier, so a worker
that deadlocks on a per-individual lock (or livelocks inside local
search) silently stops contributing — the run "converges" on whatever
the healthy workers find and nothing distinguishes a stalled thread
from a slow one.  This module makes that failure mode observable:

* :class:`HeartbeatBoard` — one monotone counter per worker, bumped by
  the worker itself once per block sweep (a plain ``list[int]`` for
  threads, a fork-shared ``RawArray`` for the process engine).  Beats
  are single element writes with no locks, so the board follows the
  same no-shared-contention rule as :mod:`repro.obs.metrics`.
* :class:`Watchdog` — a monitor (pollable, or running on its own
  daemon thread) that flags any worker whose heartbeat has not
  advanced within ``deadline_s``.  Each stall episode is reported once:
  a ``watchdog.stalls`` counter and per-worker gauge in the metrics
  stream, an instant event in the worker's trace lane, and the
  :class:`~repro.cga.hooks.EngineHooks.on_stall` callback.  A worker
  whose heartbeat advances again is recorded as a recovery and re-armed.

Workers that finish their budget call :meth:`HeartbeatBoard.mark_done`
so an intentionally idle worker is never reported as stalled.

With ``obs=None`` no board or watchdog is ever constructed — the
engines' uninstrumented worker bodies do not reference this module.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["StallEvent", "HeartbeatBoard", "Watchdog"]


@dataclass(frozen=True)
class StallEvent:
    """One detected stall episode (or its recovery)."""

    #: worker index (the engine's thread/process id)
    worker: int
    #: seconds since the worker's heartbeat last advanced
    stalled_s: float
    #: heartbeat value the worker is stuck at
    heartbeat: int
    #: False for the stall itself, True for the recovery notification
    recovered: bool = False


class HeartbeatBoard:
    """Per-worker monotone heartbeat counters plus done flags.

    Parameters
    ----------
    n_workers:
        Number of workers when the board owns its storage.
    counters / done:
        Optional externally allocated mutable sequences (the process
        engine passes fork-shared ``RawArray`` buffers so children's
        beats are visible to the parent's watchdog).
    """

    __slots__ = ("counters", "done")

    def __init__(
        self,
        n_workers: int,
        counters: Sequence | None = None,
        done: Sequence | None = None,
    ):
        self.counters = counters if counters is not None else [0] * n_workers
        self.done = done if done is not None else [0] * n_workers
        if len(self.counters) != len(self.done):
            raise ValueError("counters and done must have the same length")

    def __len__(self) -> int:
        return len(self.counters)

    def beat(self, worker: int) -> None:
        """Advance ``worker``'s heartbeat (called by the worker itself)."""
        self.counters[worker] += 1

    def mark_done(self, worker: int) -> None:
        """Exempt ``worker`` from stall detection (budget exhausted)."""
        self.done[worker] = 1

    def read(self) -> list[int]:
        """Snapshot all heartbeat values (monitor side)."""
        return [int(c) for c in self.counters]

    def active(self) -> list[bool]:
        """Which workers are still subject to the deadline."""
        return [not bool(d) for d in self.done]


class Watchdog:
    """Flags workers whose heartbeat misses the deadline.

    Parameters
    ----------
    board:
        The :class:`HeartbeatBoard` the workers beat on.
    deadline_s:
        A worker whose heartbeat has not advanced for this long (and is
        not marked done) is reported as stalled.
    on_stall:
        Optional callback receiving each :class:`StallEvent` (stalls
        *and* recoveries); engines adapt this to ``EngineHooks.on_stall``.
    recorder:
        Optional :class:`~repro.obs.metrics.MetricRecorder` (the
        observer's ``"watchdog"`` recorder) for ``watchdog.stalls`` /
        ``watchdog.recoveries`` counters and per-worker stall gauges.
    tracer_for:
        Optional ``worker -> ThreadTracer | None`` resolver; stall and
        recovery instants land in the stalled worker's own trace lane.
    clock:
        Injectable monotonic clock (tests pin it to freeze a worker).
    stack_capture:
        Optional ``StallEvent -> None`` escalation hook invoked for
        *stalls only*, before ``on_stall``: the observer wires it to
        dump every thread's stack into the bundle's flight dir, so the
        evidence of what a stalled worker was doing is captured before
        any engine reacts (e.g. the shm engine's stall-kill).
        Exceptions inside the hook are swallowed — escalation must
        never take the watchdog down.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`; ``stall``
        and ``recovery`` events are recorded into the ring.
    """

    def __init__(
        self,
        board: HeartbeatBoard,
        deadline_s: float,
        on_stall: Callable[[StallEvent], None] | None = None,
        recorder=None,
        tracer_for: Callable[[int], object | None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        stack_capture: Callable[[StallEvent], None] | None = None,
        flight=None,
    ):
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.board = board
        self.deadline_s = float(deadline_s)
        self.on_stall = on_stall
        self.recorder = recorder
        self.tracer_for = tracer_for
        self.clock = clock
        self.stack_capture = stack_capture
        self.flight = flight
        now = clock()
        self._last_beat = board.read()
        self._last_advance = [now] * len(board)
        self._stalled = [False] * len(board)
        self.events: list[StallEvent] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- detection -------------------------------------------------------
    def poll(self, now: float | None = None) -> list[StallEvent]:
        """One monitor pass; returns the newly emitted events."""
        if now is None:
            now = self.clock()
        emitted: list[StallEvent] = []
        beats = self.board.read()
        active = self.board.active()
        for w, beat in enumerate(beats):
            if beat != self._last_beat[w]:
                stall_lasted = now - self._last_advance[w]
                self._last_beat[w] = beat
                self._last_advance[w] = now
                if self._stalled[w]:
                    self._stalled[w] = False
                    emitted.append(self._emit(StallEvent(w, stall_lasted, beat, True)))
                continue
            if not active[w] or self._stalled[w]:
                continue
            stalled_s = now - self._last_advance[w]
            if stalled_s >= self.deadline_s:
                self._stalled[w] = True
                emitted.append(self._emit(StallEvent(w, stalled_s, beat, False)))
        return emitted

    def _emit(self, event: StallEvent) -> StallEvent:
        self.events.append(event)
        rec = self.recorder
        if rec is not None:
            if event.recovered:
                rec.inc("watchdog.recoveries")
                rec.set_gauge(f"watchdog.stalled_s.worker{event.worker}", 0.0)
            else:
                rec.inc("watchdog.stalls")
                rec.set_gauge(
                    f"watchdog.stalled_s.worker{event.worker}", event.stalled_s
                )
        if self.flight is not None:
            self.flight.record(
                "recovery" if event.recovered else "stall",
                f"w{event.worker}",
                event.stalled_s,
            )
        if not event.recovered and self.stack_capture is not None:
            try:
                self.stack_capture(event)
            except Exception:  # pragma: no cover - escalation is best-effort
                pass
        if self.tracer_for is not None:
            tt = self.tracer_for(event.worker)
            if tt is not None:
                tt.instant(
                    "recovery" if event.recovered else "stall",
                    {
                        "worker": event.worker,
                        "stalled_s": round(event.stalled_s, 6),
                        "heartbeat": event.heartbeat,
                    },
                )
        if self.on_stall is not None:
            self.on_stall(event)
        return event

    @property
    def stalled_workers(self) -> list[int]:
        """Workers currently flagged as stalled."""
        return [w for w, s in enumerate(self._stalled) if s]

    # -- background monitor ----------------------------------------------
    def start(self, interval_s: float | None = None) -> "Watchdog":
        """Run :meth:`poll` on a daemon thread every ``interval_s``
        (default: a quarter of the deadline)."""
        if self._thread is not None:
            return self
        interval = interval_s if interval_s is not None else max(self.deadline_s / 4.0, 0.01)

        def monitor() -> None:
            while not self._stop.wait(interval):
                self.poll()

        self._stop.clear()
        self._thread = threading.Thread(target=monitor, name="obs-watchdog", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the monitor thread (idempotent); runs one final poll."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

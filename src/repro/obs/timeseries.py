"""Periodic JSONL time-series sampler for convergence telemetry.

A :class:`TimeSeriesSampler` is ticked from an engine's generation loop
(or a designated worker thread) with the cheap coordinates it already
has — evaluation count and wall/virtual clock — and decides on its own
cadence whether a row is due.  Only when a row fires does it call the
engine-supplied ``provider`` to compute the expensive fields (entropy
diversity, mean fitness, lock-wait aggregates), so sampling cost is
paid at the sampling rate, never per breeding step.

Rows are dicts; the canonical fields emitted by the engines are::

    t_s, generation, evaluations, best, mean, entropy,
    evals_per_s, ls_accept_rate, lock_wait_s, lock_hold_s

but the schema is open — anything JSON-serializable goes through.  The
bundle stores one row per line (JSONL).

Streaming: when constructed with ``stream_to`` (the Observer passes the
bundle's ``timeseries.jsonl``), every emitted row is appended to the
file immediately and flushed — a run that crashes mid-way leaves every
sampled row on disk, and a multi-hour run never holds its full history
in memory: the in-memory ``rows`` list is capped at ``keep_rows``
(evicting from position 1 so the first row — the convergence baseline —
and the newest tail both survive for reports).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Cadence-gated row collector.

    Parameters
    ----------
    every_evals:
        Emit a row each time the evaluation counter advances by at
        least this much (None disables the evaluation cadence).
    every_s:
        Emit a row each time the clock advances by at least this many
        seconds (None disables the time cadence).  Either cadence
        firing produces a row; both clocks then reset.
    stream_to:
        Optional JSONL path; emitted rows are appended (and flushed)
        incrementally instead of being serialized only at
        :meth:`write` time.  The file is truncated on the first emit.
    keep_rows:
        In-memory retention cap when streaming (ignored otherwise: an
        unbounded in-memory sampler stays exact for :meth:`write`).
    """

    def __init__(
        self,
        every_evals: int | None = 256,
        every_s: float | None = None,
        stream_to=None,
        keep_rows: int = 4096,
    ):
        if every_evals is not None and every_evals < 1:
            raise ValueError(f"every_evals must be >= 1, got {every_evals}")
        if every_s is not None and every_s <= 0:
            raise ValueError(f"every_s must be positive, got {every_s}")
        if every_evals is None and every_s is None:
            raise ValueError("need at least one cadence (every_evals or every_s)")
        if keep_rows < 2:
            raise ValueError(f"keep_rows must be >= 2, got {keep_rows}")
        self.every_evals = every_evals
        self.every_s = every_s
        self.rows: list[dict] = []
        self.keep_rows = keep_rows
        self.n_total = 0
        self.stream_path = Path(stream_to) if stream_to is not None else None
        self._sink = None
        self._last_evals = 0
        self._last_t = 0.0

    @property
    def streaming(self) -> bool:
        """Whether rows go to disk incrementally."""
        return self.stream_path is not None

    def due(self, evaluations: int, t_s: float) -> bool:
        """Would a tick at these coordinates emit a row?"""
        if self.every_evals is not None and evaluations - self._last_evals >= self.every_evals:
            return True
        if self.every_s is not None and t_s - self._last_t >= self.every_s:
            return True
        return False

    def tick(
        self,
        evaluations: int,
        t_s: float,
        provider: Callable[[], dict],
        force: bool = False,
    ) -> bool:
        """Emit a row if the cadence says so; returns True when it did.

        ``provider`` is only invoked on emission — keep every expensive
        computation inside it.
        """
        if not force and not self.due(evaluations, t_s):
            return False
        row = {"t_s": t_s, "evaluations": evaluations}
        row.update(provider())
        if self.stream_path is not None:
            if self._sink is None:
                self.stream_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(self.stream_path, "w", encoding="utf-8")
            self._sink.write(json.dumps(row) + "\n")
            self._sink.flush()
            if len(self.rows) >= self.keep_rows:
                # keep row 0 (the baseline) and the newest tail
                del self.rows[1]
        self.rows.append(row)
        self.n_total += 1
        self._last_evals = evaluations
        self._last_t = t_s
        return True

    def __len__(self) -> int:
        """Total rows emitted (including any streamed past the cap)."""
        return self.n_total

    def close(self) -> None:
        """Flush and close the streaming sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def to_jsonl(self) -> str:
        """The retained rows as JSON-lines text (trailing newline)."""
        return "".join(json.dumps(row) + "\n" for row in self.rows)

    def write(self, path) -> None:
        """Serialize the rows to ``path`` as JSONL.

        When streaming to the same path the file is already complete
        (and may hold more rows than memory retains): only flush it.
        """
        path = Path(path)
        if self.stream_path is not None and path == self.stream_path:
            self.close()
            if not path.exists():  # no row ever fired; leave an empty file
                path.parent.mkdir(parents=True, exist_ok=True)
                path.touch()
            return
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

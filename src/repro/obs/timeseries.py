"""Periodic JSONL time-series sampler for convergence telemetry.

A :class:`TimeSeriesSampler` is ticked from an engine's generation loop
(or a designated worker thread) with the cheap coordinates it already
has — evaluation count and wall/virtual clock — and decides on its own
cadence whether a row is due.  Only when a row fires does it call the
engine-supplied ``provider`` to compute the expensive fields (entropy
diversity, mean fitness, lock-wait aggregates), so sampling cost is
paid at the sampling rate, never per breeding step.

Rows are dicts; the canonical fields emitted by the engines are::

    t_s, generation, evaluations, best, mean, entropy,
    evals_per_s, ls_accept_rate, lock_wait_s, lock_hold_s

but the schema is open — anything JSON-serializable goes through.  The
bundle stores one row per line (JSONL) so multi-hour runs stream to
disk and load with one ``json.loads`` per line.
"""

from __future__ import annotations

import json
from typing import Callable

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Cadence-gated row collector.

    Parameters
    ----------
    every_evals:
        Emit a row each time the evaluation counter advances by at
        least this much (None disables the evaluation cadence).
    every_s:
        Emit a row each time the clock advances by at least this many
        seconds (None disables the time cadence).  Either cadence
        firing produces a row; both clocks then reset.
    """

    def __init__(self, every_evals: int | None = 256, every_s: float | None = None):
        if every_evals is not None and every_evals < 1:
            raise ValueError(f"every_evals must be >= 1, got {every_evals}")
        if every_s is not None and every_s <= 0:
            raise ValueError(f"every_s must be positive, got {every_s}")
        if every_evals is None and every_s is None:
            raise ValueError("need at least one cadence (every_evals or every_s)")
        self.every_evals = every_evals
        self.every_s = every_s
        self.rows: list[dict] = []
        self._last_evals = 0
        self._last_t = 0.0

    def due(self, evaluations: int, t_s: float) -> bool:
        """Would a tick at these coordinates emit a row?"""
        if self.every_evals is not None and evaluations - self._last_evals >= self.every_evals:
            return True
        if self.every_s is not None and t_s - self._last_t >= self.every_s:
            return True
        return False

    def tick(
        self,
        evaluations: int,
        t_s: float,
        provider: Callable[[], dict],
        force: bool = False,
    ) -> bool:
        """Emit a row if the cadence says so; returns True when it did.

        ``provider`` is only invoked on emission — keep every expensive
        computation inside it.
        """
        if not force and not self.due(evaluations, t_s):
            return False
        row = {"t_s": t_s, "evaluations": evaluations}
        row.update(provider())
        self.rows.append(row)
        self._last_evals = evaluations
        self._last_t = t_s
        return True

    def __len__(self) -> int:
        return len(self.rows)

    def to_jsonl(self) -> str:
        """All rows as JSON-lines text (trailing newline included)."""
        return "".join(json.dumps(row) + "\n" for row in self.rows)

    def write(self, path) -> None:
        """Serialize the rows to ``path`` as JSONL."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

"""Lock-free per-thread metric recorders and the merge-on-read registry.

The cardinal rule of this subsystem: *instrumentation must not create
the contention it measures*.  Every worker therefore owns a private
:class:`MetricRecorder` — plain dict/list mutation, no locks, no atomic
sections — and :class:`MetricsRegistry` merges the per-thread snapshots
only when a reader asks (end of run, or a sampler tick).  Counter and
histogram merges are exact: integer/float sums over disjoint per-thread
state, so the merged view equals what a single global recorder would
have seen, minus the cache-line ping-pong a global recorder would have
caused.

Three instrument kinds, mirroring the usual statsd/Prometheus trio:

* **counter** — monotonically accumulated float (``inc``);
* **gauge** — last-written value (``set_gauge``; merge keeps each
  thread's value under a ``name{thread=...}`` key plus a global last);
* **histogram** — fixed, shared bucket boundaries chosen at recorder
  creation, so merging is a bucket-wise vector add (``observe``).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_US",
    "Histogram",
    "MetricRecorder",
    "MetricsRegistry",
]

#: default histogram boundaries for microsecond latencies: log-spaced
#: from 1 µs to ~10 s.  Shared boundaries make cross-thread merges a
#: plain vector addition.
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(0, 15)
)


class Histogram:
    """Fixed-bucket histogram with exact sum/min/max bookkeeping.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above ``bounds[-1]``.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US):
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample (C bisection over the fixed edges)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper edge of the bucket holding rank q,
        clamped to the observed max so it never exceeds a real sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                edge = self.bounds[i] if i < len(self.bounds) else self.max
                return min(edge, self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise exact merge; requires identical boundaries."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        """JSON-ready summary (bounds + counts + moments)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class MetricRecorder:
    """One thread's private metric state — mutate freely, never share.

    The owning worker is the only writer; the registry reads it only
    after the worker has quiesced (join) or tolerates a slightly stale
    snapshot (live sampling), which is safe because CPython dict reads
    of float values never observe torn state.
    """

    __slots__ = ("name", "counters", "gauges", "histograms", "_bounds")

    def __init__(
        self,
        name: str = "main",
        histogram_bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
    ):
        self.name = str(name)
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._bounds = tuple(histogram_bounds)

    def inc(self, key: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``key`` (creates it at 0)."""
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, key: str, value: float) -> None:
        """Overwrite gauge ``key``."""
        self.gauges[key] = value

    def observe(self, key: str, value: float) -> None:
        """Record ``value`` into histogram ``key`` (created on demand)."""
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram(self._bounds)
        hist.observe(value)

    def hist(self, key: str) -> Histogram:
        """The histogram for ``key`` (created on demand) — hot-path
        callers pre-bind ``hist(key).observe`` to skip the name lookup
        on every sample."""
        h = self.histograms.get(key)
        if h is None:
            h = self.histograms[key] = Histogram(self._bounds)
        return h

    def snapshot(self) -> dict:
        """Deep-copy the state into a JSON-ready dict."""
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricRecorder":
        """Rebuild a recorder from :meth:`snapshot` output (cross-process)."""
        rec = cls(snap.get("name", "main"))
        rec.counters.update(snap.get("counters", {}))
        rec.gauges.update(snap.get("gauges", {}))
        for key, h in snap.get("histograms", {}).items():
            hist = Histogram(h["bounds"])
            hist.counts = list(h["counts"])
            hist.count = h["count"]
            hist.total = h["sum"]
            hist.min = h["min"] if h["min"] is not None else math.inf
            hist.max = h["max"] if h["max"] is not None else -math.inf
            rec.histograms[key] = hist
        return rec


class MetricsRegistry:
    """Factory + merge point for per-thread recorders.

    ``recorder(thread)`` hands each worker its private instance;
    :meth:`merged` folds all of them into one exact aggregate whenever
    a reader wants the global view.
    """

    def __init__(self, histogram_bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US):
        self._bounds = tuple(histogram_bounds)
        self._recorders: dict[str, MetricRecorder] = {}

    def recorder(self, thread: str | int) -> MetricRecorder:
        """The private recorder for ``thread`` (created on first ask)."""
        key = str(thread)
        rec = self._recorders.get(key)
        if rec is None:
            rec = self._recorders[key] = MetricRecorder(key, self._bounds)
        return rec

    def adopt(self, recorder: MetricRecorder) -> None:
        """Register an externally built recorder (e.g. a forked worker's)."""
        self._recorders[recorder.name] = recorder

    def __len__(self) -> int:
        return len(self._recorders)

    def __iter__(self) -> Iterable[MetricRecorder]:
        return iter(self._recorders.values())

    def merged(self) -> MetricRecorder:
        """Exact cross-thread aggregate: counters/histograms summed."""
        out = MetricRecorder("merged", self._bounds)
        for rec in self._recorders.values():
            for key, v in rec.counters.items():
                out.counters[key] = out.counters.get(key, 0.0) + v
            for key, v in rec.gauges.items():
                out.gauges[f"{key}{{thread={rec.name}}}"] = v
                out.gauges[key] = v  # last writer wins for the global view
            for key, hist in rec.histograms.items():
                tgt = out.histograms.get(key)
                if tgt is None:
                    tgt = out.histograms[key] = Histogram(hist.bounds)
                tgt.merge(hist)
        return out

    def snapshot(self) -> dict:
        """JSON-ready bundle: merged view plus per-thread breakdown."""
        return {
            "merged": self.merged().snapshot(),
            "per_thread": {
                name: rec.snapshot() for name, rec in sorted(self._recorders.items())
            },
        }

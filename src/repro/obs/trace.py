"""Span/instant trace events with a Chrome ``trace_event`` exporter.

Each worker appends events to its own private list (same no-shared-state
rule as :mod:`repro.obs.metrics`); :meth:`Tracer.export` interleaves the
per-thread buffers into the Chrome trace-event JSON format, loadable in
``chrome://tracing`` or https://ui.perfetto.dev — drop the file on the
page and the block-parallel execution timeline renders as one lane per
thread.

Timestamps are microseconds relative to the tracer's epoch.  Real
engines stamp events with ``time.perf_counter``; the virtual-time
simulator passes explicit virtual timestamps instead, so a simulated
interleaving is inspectable with exactly the same tooling.

Format reference: "Trace Event Format" (Google), the ``X`` (complete),
``i`` (instant) and ``M`` (metadata) phases are used here.
"""

from __future__ import annotations

import json
import time
from typing import Any

__all__ = ["ThreadTracer", "Tracer"]


class _Span:
    """Context manager produced by :meth:`ThreadTracer.span`."""

    __slots__ = ("_tracer", "_name", "_args", "_t0")

    def __init__(self, tracer: "ThreadTracer", name: str, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        self._tracer.complete(
            self._name, self._t0 - self._tracer.epoch, t1 - self._t0, self._args
        )


class ThreadTracer:
    """One thread's private event buffer.

    ``tid`` becomes the Chrome trace lane id; all methods are plain list
    appends — no locks anywhere.
    """

    __slots__ = ("tid", "epoch", "events")

    def __init__(self, tid: int, epoch: float):
        self.tid = int(tid)
        self.epoch = epoch
        self.events: list[dict[str, Any]] = []

    def span(self, name: str, args: dict | None = None) -> _Span:
        """``with tracer.span("sweep"):`` — a timed complete event."""
        return _Span(self, name, args)

    def complete(
        self, name: str, start_s: float, dur_s: float, args: dict | None = None
    ) -> None:
        """Record a complete ('X') event from explicit timestamps.

        ``start_s`` is seconds since the tracer epoch — virtual-time
        engines call this directly with simulated clocks.
        """
        ev: dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": start_s * 1e6,
            "dur": dur_s * 1e6,
            "pid": 1,
            "tid": self.tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def instant(self, name: str, args: dict | None = None, at_s: float | None = None) -> None:
        """Record an instant ('i') event, thread-scoped."""
        ts = (time.perf_counter() - self.epoch) if at_s is None else at_s
        ev: dict[str, Any] = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": ts * 1e6,
            "pid": 1,
            "tid": self.tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def counter(self, name: str, values: dict[str, float], at_s: float | None = None) -> None:
        """Record a counter ('C') event — renders as a stacked area lane."""
        ts = (time.perf_counter() - self.epoch) if at_s is None else at_s
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts * 1e6,
                "pid": 1,
                "tid": self.tid,
                "args": dict(values),
            }
        )


class Tracer:
    """Per-thread tracer factory plus the Chrome JSON exporter."""

    def __init__(self, epoch: float | None = None):
        #: perf_counter value all real-time spans are measured against
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._threads: dict[int, ThreadTracer] = {}
        self._thread_names: dict[int, str] = {}

    def thread(self, tid: int, name: str | None = None) -> ThreadTracer:
        """The private tracer for lane ``tid`` (created on first ask)."""
        tt = self._threads.get(tid)
        if tt is None:
            tt = self._threads[tid] = ThreadTracer(tid, self.epoch)
            self._thread_names[tid] = name or f"worker-{tid}"
        return tt

    def adopt(self, tid: int, events: list[dict], name: str | None = None) -> None:
        """Merge events recorded out-of-process (forked workers)."""
        self.thread(tid, name).events.extend(events)

    @property
    def n_events(self) -> int:
        """Total events across all lanes."""
        return sum(len(t.events) for t in self._threads.values())

    def export(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        events: list[dict[str, Any]] = []
        for tid in sorted(self._threads):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": self._thread_names[tid]},
                }
            )
        for tid in sorted(self._threads):
            events.extend(self._threads[tid].events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Serialize :meth:`export` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.export(), fh)

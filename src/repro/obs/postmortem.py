"""``repro obs postmortem``: render a crashed run's black box.

Folds every crash-surviving artifact of a bundle — the mmap'd flight
rings, the per-worker post-mortem records and stack dumps, the
streamed resource rows, ``meta.json``'s ``interrupted`` /
``interrupted_by`` stamps — into one terminal report answering the
three questions a dead parallel run raises: *who* failed (worker,
pid, exception), *what was it doing* (its stack and last flight
events), and *what state was it in* (final RSS / fds / GC sample).

Works on partial bundles by design: ``meta.json`` is optional (a
SIGKILLed parent never finalizes), the rings are readable after any
kind of death, and missing sections render as explicit absences
rather than errors — exit code 0 means "a report was rendered", which
is what the CI smoke job asserts after injecting a worker crash.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.flight import load_flight_dir
from repro.obs.resources import load_resource_rows, resource_peaks

__all__ = ["load_postmortems", "load_stack_dumps", "render_postmortem", "postmortem"]

#: flight events shown per ring by default
DEFAULT_EVENTS = 12


def load_postmortems(bundle) -> list[dict]:
    """Every ``flight/postmortem-*.json`` record of a bundle."""
    root = Path(bundle) / "flight"
    records = []
    if root.is_dir():
        for path in sorted(root.glob("postmortem-*.json")):
            try:
                records.append(json.loads(path.read_text(encoding="utf-8")))
            except (json.JSONDecodeError, OSError):
                continue
    return records


def load_stack_dumps(bundle) -> dict[str, str]:
    """``role -> text`` of the SIGUSR1 / stall-escalation stack dumps."""
    root = Path(bundle) / "flight"
    out = {}
    if root.is_dir():
        for path in sorted(root.glob("stacks-*.txt")):
            role = path.stem.removeprefix("stacks-")
            try:
                out[role] = path.read_text(encoding="utf-8")
            except OSError:  # pragma: no cover
                continue
    return out


def _last_traceback(record: dict, limit: int = 30) -> list[str]:
    exc = record.get("exception") or {}
    tb = exc.get("traceback") or []
    lines = "".join(tb).rstrip("\n").splitlines()
    return lines[-limit:]


def _fmt_resources(row: dict) -> str:
    parts = []
    for key, label in (
        ("rss_mb", "rss"),
        ("cpu_s", "cpu"),
        ("fds", "fds"),
        ("shm_mb", "shm"),
        ("gc_pause_s", "gc-pause"),
    ):
        if row.get(key) is not None:
            unit = "MB" if key.endswith("_mb") else ("s" if key.endswith("_s") else "")
            parts.append(f"{label} {row[key]:g}{unit}")
    return "  ".join(parts) if parts else "(no fields)"


def render_postmortem(bundle, last_events: int = DEFAULT_EVENTS) -> str:
    """The full post-mortem report for one bundle (pure; testable)."""
    root = Path(bundle)
    lines: list[str] = [f"postmortem: {root}"]

    meta: dict = {}
    meta_path = root / "meta.json"
    if meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            lines.append("meta.json   : unreadable (truncated write?)")
    else:
        lines.append("meta.json   : absent (run never finalized)")
    head = "  ".join(
        f"{k}={meta[k]}" for k in ("engine", "instance", "n_threads", "seed") if k in meta
    )
    if head:
        lines.append(f"run         : {head}")
    interrupted = meta.get("interrupted")
    if interrupted:
        lines.append(
            f"interrupted : {interrupted.get('type')}: {interrupted.get('message')}"
        )
    by = meta.get("interrupted_by")
    if by:
        who = "  ".join(f"{k}={v}" for k, v in by.items() if v is not None)
        lines.append(f"raised by   : {who}")
    result = meta.get("result")
    if result:
        lines.append(
            f"result      : best {result.get('best_fitness'):,.2f}  "
            f"evals {result.get('evaluations'):,}  "
            f"gens {result.get('generations')}"
        )

    # -- who crashed -----------------------------------------------------
    postmortems = load_postmortems(root)
    if postmortems:
        for rec in postmortems:
            lines.append("")
            exc = rec.get("exception") or {}
            lines.append(
                f"== crashed {rec.get('role')} (pid {rec.get('pid')}, "
                f"thread {rec.get('thread')}): "
                f"{exc.get('type', '?')}: {exc.get('message', '')}"
            )
            for tb_line in _last_traceback(rec):
                lines.append(f"  {tb_line}")
            res = rec.get("resources")
            if res:
                lines.append(f"  final resources: {_fmt_resources(res)}")
    else:
        lines.append("")
        lines.append("no worker post-mortem records (no in-worker exception caught)")

    # -- stack dumps (SIGUSR1 / stall escalation) ------------------------
    dumps = load_stack_dumps(root)
    for role, text in dumps.items():
        blocks = [b for b in text.split("=== stack dump") if b.strip()]
        lines.append("")
        lines.append(f"== stack dumps for {role}: {len(blocks)} capture(s)")
        if blocks:
            last = "=== stack dump" + blocks[-1]
            body = last.rstrip("\n").splitlines()
            shown = body[:40]
            lines.extend(f"  {ln}" for ln in shown)
            if len(body) > len(shown):
                lines.append(f"  ... ({len(body) - len(shown)} more lines)")

    # -- flight rings ----------------------------------------------------
    rings = load_flight_dir(root)
    if rings:
        for role, events in rings.items():
            lines.append("")
            lines.append(
                f"== flight ring {role}: {len(events)} retained event(s), "
                f"last {min(last_events, len(events))} shown"
            )
            for ev in events[-last_events:]:
                msg = f"  {ev['msg']}" if ev["msg"] else ""
                val = f"  value={ev['value']:g}" if ev["value"] else ""
                lines.append(f"  [{ev['t_s']:9.3f}s] #{ev['seq']:<6} {ev['kind']:<12}{msg}{val}")
    else:
        lines.append("")
        lines.append("no flight rings (run without --obs-flight?)")

    # -- resources -------------------------------------------------------
    rows = load_resource_rows(root)
    if rows:
        peaks = resource_peaks(root)
        lines.append("")
        lines.append(
            f"== resources: {len(rows)} sample(s)  "
            + "  ".join(f"{k} {v:g}" for k, v in sorted(peaks.items()))
        )
        by_role: dict[str, dict] = {}
        for row in rows:
            by_role[row.get("role", "?")] = row  # later rows win: final sample
        for role, row in sorted(by_role.items()):
            lines.append(f"  {role:<6} final: {_fmt_resources(row)}  (t={row.get('t_s')}s)")
    else:
        lines.append("")
        lines.append("no resource rows (run without --obs-resources?)")

    return "\n".join(lines)


def postmortem(bundle, last_events: int = DEFAULT_EVENTS, out=None) -> int:
    """CLI entry point; returns an exit code.

    0 = report rendered (even for partial bundles); 1 = the path is
    not a bundle at all (nothing to render from).
    """
    import sys

    stream = sys.stdout if out is None else out
    root = Path(bundle)
    if not root.is_dir():
        stream.write(f"error: {bundle} is not a bundle directory\n")
        return 1
    known = (
        (root / "meta.json").exists()
        or (root / "flight").is_dir()
        or (root / "resources.jsonl").exists()
    )
    if not known:
        stream.write(
            f"error: {bundle} has no bundle artifacts "
            "(meta.json / flight/ / resources.jsonl)\n"
        )
        return 1
    stream.write(render_postmortem(root, last_events=last_events) + "\n")
    return 0

"""Phase-level instrumentation of the scalar breeding operators.

:func:`instrumented_ops` returns a copy of an
:class:`~repro.cga.engine.EvolutionOps` bundle whose operator callables
are wrapped to time every invocation into a per-thread
:class:`~repro.obs.metrics.MetricRecorder` — so ``evolve_individual``
and every engine built on it gain selection/crossover/mutation/LS/
fitness/replacement phase timings *without a single change to the hot
path itself*.  Engines install the wrapped bundle only when an observer
is attached; with observability disabled the original operators run
untouched (the zero-overhead guarantee the tests assert).

Metric names emitted per thread::

    phase.select_us / crossover_us / mutate_us / ls_us / fitness_us   (histograms)
    breeding.evaluations, breeding.replacements                       (counters)
    ls.calls, ls.moves_tried, ls.moves_accepted                       (counters)
    op.{crossover,mutation,ls,replacement}.{attempts,successes,delta} (counters)

Counters are exact.  The select/crossover/mutate histograms are
*sampled* (one call in 8): those operators run in single-digit
microseconds, so timing every call would cost more than the phase being
measured.  ``fitness`` and ``local_search`` are timed on every call.

Operator attribution (the ``op.*`` family) follows the credit rule of
:mod:`repro.obs.dynamics`: each variation wrapper marks itself applied
for the current breeding step, and the replacement wrapper — the one
point that sees both the child's and the incumbent's fitness — settles
the step: every applied operator counts a success and is credited the
full fitness improvement when the child replaced the incumbent.  The
batch kernels record the same keys via
:func:`repro.obs.dynamics.record_batch_attribution`, so attribution is
engine-uniform and scalar/batch counts agree in lockstep.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter

__all__ = ["instrumented_ops"]


def instrumented_ops(ops, recorder):
    """Wrap every operator of ``ops`` with timing into ``recorder``.

    ``ops`` is an ``EvolutionOps``-shaped frozen dataclass (duck-typed
    via :func:`dataclasses.replace`, so no import cycle with the engine
    module); ``recorder`` is the calling thread's private recorder.
    """
    select, crossover, mutate = ops.select, ops.crossover, ops.mutate
    fitness, local_search, replace_rule = ops.fitness, ops.local_search, ops.replace
    counters = recorder.counters
    # pre-bind one histogram per phase so the hot wrappers skip the
    # name lookup on every sample
    obs_select = recorder.hist("phase.select_us").observe
    obs_crossover = recorder.hist("phase.crossover_us").observe
    obs_mutate = recorder.hist("phase.mutate_us").observe
    obs_fitness = recorder.hist("phase.fitness_us").observe

    # the sub-10µs operators are *sampled* one call in 8: clocking every
    # call costs more than the operator itself.  fitness and LS stay
    # fully timed — their bodies dwarf the two perf_counter calls.
    mask = 7
    n_sel = n_cx = n_mut = 0

    # per-step operator-attribution flags, settled by timed_replace (the
    # one wrapper that sees both fitness values of the breeding step).
    # Plain nonlocal bools + pre-seeded counter keys keep the per-step
    # cost to bare subscript increments — this path runs once per
    # evaluation, so every dict-method call here shows in the obs-smoke
    # overhead gate.
    cx_applied = mut_applied = ls_applied = False
    for key in (
        "breeding.evaluations",
        "breeding.steps",
        "breeding.replacements",
        "op.crossover.attempts",
        "op.crossover.successes",
        "op.crossover.delta",
        "op.mutation.attempts",
        "op.mutation.successes",
        "op.mutation.delta",
        "op.replacement.attempts",
        "op.replacement.successes",
        "op.replacement.delta",
    ):
        counters.setdefault(key, 0.0)
    if local_search is not None:
        for key in ("ls.calls", "op.ls.attempts", "op.ls.successes", "op.ls.delta"):
            counters.setdefault(key, 0.0)

    def timed_select(fit, rng):
        nonlocal n_sel
        n_sel += 1
        if (n_sel - 1) & mask:
            return select(fit, rng)
        t0 = perf_counter()
        out = select(fit, rng)
        obs_select((perf_counter() - t0) * 1e6)
        return out

    def timed_crossover(p1, p2, rng):
        nonlocal n_cx, cx_applied
        n_cx += 1
        cx_applied = True
        counters["op.crossover.attempts"] += 1
        if (n_cx - 1) & mask:
            return crossover(p1, p2, rng)
        t0 = perf_counter()
        out = crossover(p1, p2, rng)
        obs_crossover((perf_counter() - t0) * 1e6)
        return out

    def timed_mutate(s, ct, inst, rng):
        nonlocal n_mut, mut_applied
        n_mut += 1
        mut_applied = True
        counters["op.mutation.attempts"] += 1
        if (n_mut - 1) & mask:
            return mutate(s, ct, inst, rng)
        t0 = perf_counter()
        out = mutate(s, ct, inst, rng)
        obs_mutate((perf_counter() - t0) * 1e6)
        return out

    def timed_fitness(s, ct, inst):
        t0 = perf_counter()
        out = fitness(s, ct, inst)
        obs_fitness((perf_counter() - t0) * 1e6)
        counters["breeding.evaluations"] += 1
        return out

    def timed_replace(child_fit, current_fit):
        nonlocal cx_applied, mut_applied, ls_applied
        out = replace_rule(child_fit, current_fit)
        counters["breeding.steps"] += 1
        counters["op.replacement.attempts"] += 1
        if out:
            counters["breeding.replacements"] += 1
            delta = current_fit - child_fit
            counters["op.replacement.successes"] += 1
            counters["op.replacement.delta"] += delta
            if cx_applied:
                counters["op.crossover.successes"] += 1
                counters["op.crossover.delta"] += delta
            if mut_applied:
                counters["op.mutation.successes"] += 1
                counters["op.mutation.delta"] += delta
            if ls_applied:
                counters["op.ls.successes"] += 1
                counters["op.ls.delta"] += delta
        cx_applied = mut_applied = ls_applied = False
        return out

    timed_ls = None
    if local_search is not None:
        obs_ls = recorder.hist("phase.ls_us").observe

        def timed_ls(s, ct, inst, rng, iterations, n_candidates=None):
            nonlocal ls_applied
            t0 = perf_counter()
            ls_applied = True
            counters["op.ls.attempts"] += 1
            # the LS operators publish ls.moves_tried / ls.moves_accepted
            # directly into the counter dict (see repro.cga.local_search)
            out = local_search(s, ct, inst, rng, iterations, n_candidates, stats=counters)
            obs_ls((perf_counter() - t0) * 1e6)
            counters["ls.calls"] += 1
            return out

    return replace(
        ops,
        select=timed_select,
        crossover=timed_crossover,
        mutate=timed_mutate,
        fitness=timed_fitness,
        local_search=timed_ls,
        replace=timed_replace,
    )

"""The run-telemetry facade: one :class:`Observer` per engine run.

An observer bundles the collectors of this package — per-thread
:class:`~repro.obs.metrics.MetricRecorder` objects behind a
:class:`~repro.obs.metrics.MetricsRegistry`, a Chrome-trace
:class:`~repro.obs.trace.Tracer`, and a JSONL
:class:`~repro.obs.timeseries.TimeSeriesSampler` — plus the bundle
writer that serializes all of them into one directory::

    bundle/
      meta.json        # engine, instance, config, outcome
      metrics.json     # merged + per-thread counters/gauges/histograms
      trace.json       # Chrome trace_event JSON (chrome://tracing, Perfetto)
      timeseries.jsonl # one sampled convergence row per line (streamed)
      grid.jsonl       # per-cell fitness/age/improvement snapshots (streamed)
      live.json        # latest live snapshot (only with live export on)
      report.md        # rendered human-readable summary

Engines take ``obs=Observer(...)`` (or a frozen :class:`ObsConfig` via
``CGAConfig.obs``) and attach through the
:class:`~repro.cga.hooks.EngineHooks` protocol; with ``obs=None`` no
collector object is ever constructed and the hot paths run their
uninstrumented branches.

Live layer (PR 3): ``live=True`` / ``live_port=N`` attach a
:class:`~repro.obs.live.LivePublisher` (atomic ``live.json`` +
OpenMetrics endpoint) and ``stall_deadline_s`` attaches a
:class:`~repro.obs.watchdog.Watchdog` over the engine's heartbeat
board; both are created by :meth:`start_runtime` only when requested,
so a plain bundle-collecting observer spawns no extra threads.

Crash safety: the observer is a context manager — on an exception or
``KeyboardInterrupt`` inside the ``with`` block the partial bundle is
finalized with the error stamped into ``meta.json``, and the
time-series rows were already streamed to disk as they fired.

Process observability (PR 7): ``flight=True`` adds the crash-surviving
flight recorder (:mod:`repro.obs.flight` — mmap'd event rings, crash
hooks, SIGUSR1 stack dumps), ``resources=True`` the per-process
``/proc/self`` sampler (:mod:`repro.obs.resources`), and
``stack_sample_s`` the statistical profiler
(:mod:`repro.obs.sample`).  Forked engine workers get all three via
:meth:`Observer.process_scope`, and :func:`render bundles with
repro obs postmortem <repro.obs.postmortem.render_postmortem>`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_US, MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace import Tracer

__all__ = ["ObsConfig", "Observer", "WorkerObs", "resolve_observer"]


@dataclass(frozen=True)
class ObsConfig:
    """Declarative observer settings, embeddable in ``CGAConfig.obs``.

    A frozen value object so configs stay hashable/comparable; engines
    materialize it into a live :class:`Observer` at construction and
    finalize the bundle automatically on stop.
    """

    out: str | None = None
    trace: bool = True
    sample_every_evals: int | None = 256
    sample_every_s: float | None = None
    live: bool = False
    live_port: int | None = None
    live_every_s: float = 0.5
    stall_deadline_s: float | None = None
    grid: bool = True
    flight: bool = False
    resources: bool = False
    resource_every_s: float = 0.5
    stack_sample_s: float | None = None

    def __post_init__(self) -> None:
        if self.sample_every_evals is None and self.sample_every_s is None:
            raise ValueError("ObsConfig needs at least one sampling cadence")


class Observer:
    """Collects one run's telemetry; lock-free on every hot path.

    Parameters
    ----------
    out:
        Bundle directory (created eagerly so the time series can stream
        into it); None keeps everything in memory.
    trace:
        Collect Chrome trace events (timeline spans per thread).
    sample_every_evals / sample_every_s:
        Time-series cadence, see :class:`TimeSeriesSampler`.
    live:
        Publish an atomically-replaced ``live.json`` into ``out`` while
        the run executes (implied by ``live_port``).
    live_port:
        Also serve ``/metrics`` (OpenMetrics) and ``/live.json`` on
        this TCP port (0 picks an ephemeral port).
    live_every_s:
        Live publish cadence.
    stall_deadline_s:
        Enable the worker watchdog: a worker whose heartbeat has not
        advanced for this many seconds is reported as stalled (None
        disables the watchdog entirely).
    flight:
        Enable the crash-surviving flight recorder: an mmap'd event
        ring + post-mortem hooks (faulthandler, excepthook, SIGUSR1)
        per observed process under ``out/flight/``.  Needs ``out``.
    resources:
        Sample ``/proc/self`` (RSS, CPU, fds, GC, ``/dev/shm``) on a
        daemon thread; rows stream to ``resources.jsonl`` when ``out``
        is set and feed ``proc.*`` gauges either way.
    resource_every_s:
        Resource sampling cadence.
    stack_sample_s:
        Interval of the statistical stack sampler (None disables it);
        merged collapsed stacks land in ``samples.collapsed``.
    """

    def __init__(
        self,
        out: str | os.PathLike | None = None,
        trace: bool = True,
        sample_every_evals: int | None = 256,
        sample_every_s: float | None = None,
        histogram_bounds=DEFAULT_LATENCY_BUCKETS_US,
        live: bool = False,
        live_port: int | None = None,
        live_every_s: float = 0.5,
        stall_deadline_s: float | None = None,
        grid: bool = True,
        flight: bool = False,
        resources: bool = False,
        resource_every_s: float = 0.5,
        stack_sample_s: float | None = None,
    ):
        self.out = Path(out) if out is not None else None
        self.registry = MetricsRegistry(histogram_bounds)
        self.tracer = Tracer() if trace else None
        stream_to = None
        if self.out is not None:
            self.out.mkdir(parents=True, exist_ok=True)
            stream_to = self.out / "timeseries.jsonl"
        self.sampler = TimeSeriesSampler(
            sample_every_evals, sample_every_s, stream_to=stream_to
        )
        self.live = bool(live) or live_port is not None
        self.live_port = live_port
        self.live_every_s = live_every_s
        self.stall_deadline_s = stall_deadline_s
        self.publisher = None
        self.watchdog = None
        #: grid-dynamics tracker (repro.obs.dynamics.GridDynamics),
        #: created lazily on the first engine_row once the grid shape is
        #: known; stays None with grid recording disabled
        self.grid = bool(grid)
        self.griddyn = None
        self.meta: dict = {}
        self.epoch = time.perf_counter()
        #: shared wall-clock zero for every flight ring of this run, so
        #: events from forked workers line up on one time axis
        self.epoch_unix = time.time()
        # -- process observability (flight / resources / stack sampler) --
        self.flight_enabled = bool(flight) and self.out is not None
        self.resource_every_s = float(resource_every_s)
        self.stack_sample_s = stack_sample_s
        self.resources = None
        if resources:
            from repro.obs.resources import ResourceSampler

            self.resources = ResourceSampler(
                self.out / "resources.jsonl" if self.out is not None else None,
                role="main",
                every_s=self.resource_every_s,
                recorder=self.recorder("resources"),
            ).start()
        self.stacks = None
        if stack_sample_s is not None:
            from repro.obs.sample import StackSampler

            self.stacks = StackSampler(
                interval_s=stack_sample_s, out_path=None, role="main"
            ).start()
        self.flight = None
        self.crash_hooks = None
        if self.flight_enabled:
            from repro.obs.flight import (
                FlightRecorder,
                flight_paths,
                install_crash_hooks,
            )

            self.flight = FlightRecorder(
                flight_paths(self.out, "main")["ring"], epoch_unix=self.epoch_unix
            )
            self.crash_hooks = install_crash_hooks(
                self.out, "main", ring=self.flight, resources=self.resources
            )
            self.flight.record("budget.start")
        #: finalize the bundle automatically when the run ends (set by
        #: :meth:`from_config` so config-driven telemetry needs no manual
        #: finalize call)
        self.auto_finalize = False
        self._finalized: dict[str, Path] | None = None
        self._proc_obs_stopped = False

    @classmethod
    def from_config(cls, config: ObsConfig) -> "Observer":
        """Materialize an :class:`ObsConfig`; the bundle auto-finalizes
        when the engine's ``on_stop`` hook fires."""
        obs = cls(
            out=config.out,
            trace=config.trace,
            sample_every_evals=config.sample_every_evals,
            sample_every_s=config.sample_every_s,
            live=config.live,
            live_port=config.live_port,
            live_every_s=config.live_every_s,
            stall_deadline_s=config.stall_deadline_s,
            grid=config.grid,
            flight=config.flight,
            resources=config.resources,
            resource_every_s=config.resource_every_s,
            stack_sample_s=config.stack_sample_s,
        )
        obs.auto_finalize = True
        return obs

    # -- collection API -------------------------------------------------
    def recorder(self, thread: str | int):
        """The private metric recorder for ``thread``."""
        return self.registry.recorder(thread)

    def thread_tracer(self, tid: int, name: str | None = None):
        """The trace lane for ``tid``; None when tracing is disabled."""
        if self.tracer is None:
            return None
        return self.tracer.thread(tid, name)

    def elapsed(self) -> float:
        """Wall seconds since the observer was created."""
        return time.perf_counter() - self.epoch

    def maybe_sample(
        self,
        evaluations: int,
        provider: Callable[[], dict],
        t_s: float | None = None,
        force: bool = False,
    ) -> bool:
        """Tick the time-series sampler (wall clock unless ``t_s`` given)."""
        t = self.elapsed() if t_s is None else t_s
        return self.sampler.tick(evaluations, t, provider, force=force)

    # -- process observability -------------------------------------------
    def flight_event(self, kind: str, msg: str = "", value: float = 0.0) -> None:
        """Record one event into the main flight ring (no-op when off)."""
        if self.flight is not None:
            self.flight.record(kind, msg, value)

    def flight_ring(self, role: str):
        """A fresh per-role ring in this bundle's flight dir (or None).

        Called *inside* a forked worker (post-fork), so the ring's
        writer is that worker's own process; all rings share
        :attr:`epoch_unix` so their events line up on one time axis.
        """
        if not self.flight_enabled:
            return None
        from repro.obs.flight import FlightRecorder, flight_paths

        return FlightRecorder(
            flight_paths(self.out, role)["ring"], epoch_unix=self.epoch_unix
        )

    def process_scope(self, role: str) -> "WorkerObs":
        """The per-forked-worker observability runtime (context manager).

        Entered inside the child after ``fork``: creates the worker's
        own flight ring, crash hooks (post-mortem record + SIGUSR1
        stack dumps), resource sampler and stack sampler, according to
        what this observer has enabled.  With everything off it is an
        inert no-op scope, so engines can wrap their worker bodies
        unconditionally.
        """
        return WorkerObs(self, role)

    def _stop_process_obs(self) -> None:
        """Stop samplers / close the main ring exactly once."""
        if self._proc_obs_stopped:
            return
        self._proc_obs_stopped = True
        if self.stacks is not None:
            try:
                self.stacks.stop()
            except Exception:  # pragma: no cover
                pass
        if self.resources is not None:
            try:
                self.resources.stop()
            except Exception:  # pragma: no cover
                pass
        if self.flight is not None:
            self.flight.record("budget.done")
            self.flight.close()
        if self.crash_hooks is not None:
            self.crash_hooks.uninstall()
            self.crash_hooks = None

    # -- live runtime (publisher + watchdog) -----------------------------
    @property
    def runtime_wanted(self) -> bool:
        """Do the live settings ask for any runtime attachment?  Engines
        skip heartbeat-board construction entirely when this is False."""
        return self.live or self.stall_deadline_s is not None

    def start_runtime(
        self,
        board=None,
        progress: Callable[[], dict] | None = None,
        on_stall: Callable | None = None,
    ) -> None:
        """Attach the live publisher and/or watchdog for one run.

        Engines call this at run start with their heartbeat ``board``
        and a lock-free ``progress`` provider; with neither live export
        nor a stall deadline configured this is a no-op and no thread
        or socket is created.
        """
        if self.live and self.publisher is None:
            from repro.obs.live import LivePublisher

            self.publisher = LivePublisher(
                self,
                progress=progress,
                out=self.out,
                port=self.live_port,
                every_s=self.live_every_s,
            ).start()
        if self.stall_deadline_s is not None and board is not None and self.watchdog is None:
            from repro.obs.watchdog import Watchdog

            stack_capture = None
            if self.flight_enabled:
                from repro.obs.flight import append_stack_dump, flight_paths

                stacks_path = flight_paths(self.out, "main")["stacks"]

                def stack_capture(event):
                    append_stack_dump(
                        stacks_path,
                        note=f"stall w{event.worker} {event.stalled_s:.1f}s",
                    )

            self.watchdog = Watchdog(
                board,
                self.stall_deadline_s,
                on_stall=on_stall,
                recorder=self.recorder("watchdog"),
                tracer_for=lambda w: self.thread_tracer(w),
                stack_capture=stack_capture,
                flight=self.flight,
            ).start()

    def stop_runtime(self) -> None:
        """Stop the watchdog and publisher (final ``live.json`` publish
        happens here, after the engine's recorders are final)."""
        if self.watchdog is not None:
            self.watchdog.stop()
            self.watchdog = None
        if self.publisher is not None:
            self.publisher.stop()
            self.publisher = None

    # -- engine integration ---------------------------------------------
    def engine_hooks(self):
        """The :class:`EngineHooks` bundle the sequential engines chain in."""
        from repro.cga.hooks import EngineHooks

        def on_generation(engine, generation, evaluations):
            self.maybe_sample(
                evaluations, lambda: self.engine_row(engine, generation, evaluations)
            )

        def on_improvement(engine, generation, evaluations, best):
            self.recorder("main").inc("improvements")
            tt = self.thread_tracer(0, "main")
            if tt is not None:
                tt.instant("improvement", {"best": best, "generation": generation})

        def on_stop(engine, result):
            self.maybe_sample(
                result.evaluations,
                lambda: self.engine_row(engine, result.generations, result.evaluations),
                force=True,
            )
            self.record_result(result)
            if self.auto_finalize:
                self.finalize()

        return EngineHooks(on_generation, on_improvement, on_stop)

    def engine_row(self, engine, generation: int, evaluations: int) -> dict:
        """One canonical time-series row computed from a live engine."""
        from repro.cga.diversity import allele_entropy

        _, best = engine.pop.best()
        t = self.elapsed()
        row = {
            "generation": generation,
            "best": best,
            "mean": engine.pop.mean_fitness(),
            "entropy": allele_entropy(engine.pop),
            "evals_per_s": evaluations / t if t > 0 else 0.0,
        }
        row.update(self.dynamics_row())
        grid_row = self.grid_snapshot(engine, generation, t)
        if grid_row is not None:
            row["takeover_fraction"] = grid_row["takeover_fraction"]
            row["fitness_entropy"] = grid_row["fitness_entropy"]
        return row

    def grid_snapshot(self, engine, generation: int, t_s: float | None = None):
        """Feed one per-cell fitness snapshot to the grid-dynamics
        tracker (created lazily from the engine's grid shape on the
        first call); returns the emitted row or None when grid
        recording is off or the engine has no 2-D grid.

        Every engine family funnels its time-series sampling through
        :meth:`engine_row` — the scalar loops per generation, the
        parallel families from the coordinator thread at evaluation
        cadence, all of them once more from ``finish_run`` — so this
        single hook point makes ``grid.jsonl`` engine-uniform.
        """
        if not self.grid:
            return None
        if self.griddyn is None:
            grid = getattr(engine, "grid", None)
            pop = getattr(engine, "pop", None)
            if grid is None or pop is None:
                return None
            from repro.obs.dynamics import GridDynamics

            stream_to = self.out / "grid.jsonl" if self.out is not None else None
            self.griddyn = GridDynamics(grid.rows, grid.cols, stream_to=stream_to)
        return self.griddyn.snapshot(
            engine.pop.fitness, generation, self.elapsed() if t_s is None else t_s
        )

    def dynamics_row(self) -> dict:
        """Cumulative LS-acceptance and lock-time fields from the metrics."""
        c = self.registry.merged().counters
        tried = c.get("ls.moves_tried", 0.0)
        row = {
            "ls_accept_rate": (c.get("ls.moves_accepted", 0.0) / tried) if tried else None,
            "lock_wait_s": c.get("lock.read_wait_s_total", 0.0)
            + c.get("lock.write_wait_s_total", 0.0),
            "lock_hold_s": c.get("lock.read_hold_s_total", 0.0)
            + c.get("lock.write_hold_s_total", 0.0),
        }
        return row

    def record_result(self, result) -> None:
        """Stamp a finished :class:`RunResult` into the metadata."""
        self.meta.setdefault("result", {}).update(
            {
                "best_fitness": result.best_fitness,
                "evaluations": result.evaluations,
                "generations": result.generations,
                "elapsed_s": result.elapsed_s,
                "extra": {
                    k: v
                    for k, v in result.extra.items()
                    if isinstance(v, (int, float, str, bool, list))
                },
            }
        )

    # -- crash safety ----------------------------------------------------
    def __enter__(self) -> "Observer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Finalize even on error: a crashed run leaves a partial bundle
        (streamed time series + whatever the recorders held) with the
        exception stamped into ``meta.json``."""
        self.stop_runtime()
        if exc_type is not None:
            self.meta["interrupted"] = {
                "type": exc_type.__name__,
                "message": str(exc),
            }
            # who raised: engines stamp the failing *worker*'s identity
            # before raising (shm/processes), so only default to this
            # process when nothing more specific is known
            self.meta.setdefault(
                "interrupted_by",
                {
                    "role": "main",
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "thread": threading.current_thread().name,
                },
            )
            self.flight_event("crash", f"{exc_type.__name__}: {exc}"[:36])
        self.finalize()
        return False

    # -- bundle ----------------------------------------------------------
    def finalize(self, meta: dict | None = None) -> dict[str, Path]:
        """Write the bundle (idempotent); returns artifact paths.

        With ``out=None`` nothing is written and an empty dict returns —
        the collectors remain inspectable in memory.
        """
        if meta:
            self.meta.update(meta)
        self.stop_runtime()
        if self.griddyn is not None:
            self.griddyn.close()
        self._stop_process_obs()
        if self.out is None:
            self.sampler.close()
            return {}
        if self._finalized is not None:
            return self._finalized
        self.out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}

        if self.resources is not None:
            from repro.obs.resources import resource_peaks

            paths["resources"] = self.out / "resources.jsonl"  # streamed
            peaks = resource_peaks(self.out)
            if peaks:
                self.meta.setdefault("resources", peaks)

        # merged collapsed stacks: this process's sampler plus whatever
        # the forked workers left under flight/samples-*.collapsed
        sample_parts: list[str] = []
        if self.stacks is not None:
            sample_parts.append(self.stacks.collapsed())
        flight_dir = self.out / "flight"
        if flight_dir.is_dir():
            sample_parts.extend(
                p.read_text(encoding="utf-8")
                for p in sorted(flight_dir.glob("samples-*.collapsed"))
            )
        if sample_parts:
            from repro.obs.sample import merge_collapsed, parse_collapsed

            merged = merge_collapsed(sample_parts)
            if merged.strip():
                paths["samples"] = self.out / "samples.collapsed"
                paths["samples"].write_text(merged, encoding="utf-8")
                self.meta.setdefault(
                    "n_stack_samples", sum(parse_collapsed(merged).values())
                )

        paths["metrics"] = self.out / "metrics.json"
        with open(paths["metrics"], "w", encoding="utf-8") as fh:
            json.dump(self.registry.snapshot(), fh, indent=1)

        paths["timeseries"] = self.out / "timeseries.jsonl"
        self.sampler.write(paths["timeseries"])

        if self.tracer is not None:
            paths["trace"] = self.out / "trace.json"
            self.tracer.write(paths["trace"])

        if self.griddyn is not None:
            # rows were streamed as they fired; if the sink never opened
            # (out was set after snapshots started) write them now
            paths["grid"] = self.out / "grid.jsonl"
            if not paths["grid"].exists():
                with open(paths["grid"], "w", encoding="utf-8") as fh:
                    for grow in self.griddyn.rows:
                        fh.write(json.dumps(grow) + "\n")
            self.meta.setdefault("n_grid_rows", self.griddyn.n_total)

        self.meta.setdefault("n_timeseries_rows", len(self.sampler))
        self.meta.setdefault(
            "n_trace_events", self.tracer.n_events if self.tracer else 0
        )
        paths["meta"] = self.out / "meta.json"
        with open(paths["meta"], "w", encoding="utf-8") as fh:
            json.dump(self.meta, fh, indent=1, default=str)

        from repro.obs.report import render_markdown

        paths["report"] = self.out / "report.md"
        paths["report"].write_text(
            render_markdown(
                self.meta,
                self.registry.snapshot(),
                self.sampler.rows,
                grid_rows=self.griddyn.rows if self.griddyn is not None else None,
            ),
            encoding="utf-8",
        )
        self._finalized = paths
        return paths

    def summary(self) -> str:
        """Terminal-friendly one-screen summary of the collected run."""
        from repro.obs.report import render_terminal

        return render_terminal(
            self.meta,
            self.registry.snapshot(),
            self.sampler.rows,
            grid_rows=self.griddyn.rows if self.griddyn is not None else None,
        )


class WorkerObs:
    """One forked worker's process-observability runtime.

    Returned by :meth:`Observer.process_scope` and entered *inside* the
    child: the flight ring, crash hooks, resource sampler and stack
    sampler are all per-process objects, so they must be constructed
    post-fork to observe the worker rather than the parent.  With
    nothing enabled on the observer the scope is inert — engines wrap
    their worker bodies unconditionally.
    """

    __slots__ = ("obs", "role", "ring", "resources", "stacks", "_scope")

    def __init__(self, obs: Observer, role: str):
        self.obs = obs
        self.role = role
        self.ring = None
        self.resources = None
        self.stacks = None
        self._scope = None

    def __enter__(self) -> "WorkerObs":
        obs = self.obs
        if obs.out is None:
            return self
        from repro.obs.flight import flight_paths

        paths = flight_paths(obs.out, self.role)
        if obs.flight_enabled:
            self.ring = obs.flight_ring(self.role)
        if obs.resources is not None:
            from repro.obs.resources import ResourceSampler

            self.resources = ResourceSampler(
                paths["resources"],
                role=self.role,
                every_s=obs.resource_every_s,
            ).start()
        if obs.stack_sample_s is not None:
            from repro.obs.sample import StackSampler

            self.stacks = StackSampler(
                interval_s=obs.stack_sample_s,
                out_path=paths["samples"],
                role=self.role,
            ).start()
        if obs.flight_enabled:
            from repro.obs.flight import worker_crash_scope

            self._scope = worker_crash_scope(
                obs.out, self.role, ring=self.ring, resources=self.resources
            )
            self._scope.__enter__()
        return self

    def record(self, kind: str, msg: str = "", value: float = 0.0) -> None:
        """One flight event into this worker's ring (no-op when off)."""
        if self.ring is not None:
            self.ring.record(kind, msg, value)

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            # the crash scope first: on an exception it writes the
            # post-mortem record (with a final resource sample) while
            # the samplers are still alive
            if self._scope is not None:
                self._scope.__exit__(exc_type, exc, tb)
        finally:
            if self.stacks is not None:
                try:
                    self.stacks.stop()
                except Exception:  # pragma: no cover
                    pass
            if self.resources is not None:
                try:
                    self.resources.stop()
                except Exception:  # pragma: no cover
                    pass
        return False


def resolve_observer(config, obs) -> "Observer | None":
    """The engine-side obs resolution rule.

    An explicitly passed :class:`Observer` wins; otherwise a frozen
    ``config.obs`` :class:`ObsConfig` (when the config carries one) is
    materialized with auto-finalize semantics.
    """
    if obs is not None:
        return obs
    cfg = getattr(config, "obs", None)
    if cfg is not None:
        return Observer.from_config(cfg)
    return None

"""The run-telemetry facade: one :class:`Observer` per engine run.

An observer bundles the three collectors of this package — per-thread
:class:`~repro.obs.metrics.MetricRecorder` objects behind a
:class:`~repro.obs.metrics.MetricsRegistry`, a Chrome-trace
:class:`~repro.obs.trace.Tracer`, and a JSONL
:class:`~repro.obs.timeseries.TimeSeriesSampler` — plus the bundle
writer that serializes all of them into one directory::

    bundle/
      meta.json        # engine, instance, config, outcome
      metrics.json     # merged + per-thread counters/gauges/histograms
      trace.json       # Chrome trace_event JSON (chrome://tracing, Perfetto)
      timeseries.jsonl # one sampled convergence row per line
      report.md        # rendered human-readable summary

Engines take ``obs=Observer(...)`` (or a frozen :class:`ObsConfig` via
``CGAConfig.obs``) and attach through the
:class:`~repro.cga.hooks.EngineHooks` protocol; with ``obs=None`` no
collector object is ever constructed and the hot paths run their
uninstrumented branches.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_US, MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace import Tracer

__all__ = ["ObsConfig", "Observer", "resolve_observer"]


@dataclass(frozen=True)
class ObsConfig:
    """Declarative observer settings, embeddable in ``CGAConfig.obs``.

    A frozen value object so configs stay hashable/comparable; engines
    materialize it into a live :class:`Observer` at construction and
    finalize the bundle automatically on stop.
    """

    out: str | None = None
    trace: bool = True
    sample_every_evals: int | None = 256
    sample_every_s: float | None = None

    def __post_init__(self) -> None:
        if self.sample_every_evals is None and self.sample_every_s is None:
            raise ValueError("ObsConfig needs at least one sampling cadence")


class Observer:
    """Collects one run's telemetry; lock-free on every hot path.

    Parameters
    ----------
    out:
        Bundle directory (created by :meth:`finalize`); None keeps
        everything in memory.
    trace:
        Collect Chrome trace events (timeline spans per thread).
    sample_every_evals / sample_every_s:
        Time-series cadence, see :class:`TimeSeriesSampler`.
    """

    def __init__(
        self,
        out: str | os.PathLike | None = None,
        trace: bool = True,
        sample_every_evals: int | None = 256,
        sample_every_s: float | None = None,
        histogram_bounds=DEFAULT_LATENCY_BUCKETS_US,
    ):
        self.out = Path(out) if out is not None else None
        self.registry = MetricsRegistry(histogram_bounds)
        self.tracer = Tracer() if trace else None
        self.sampler = TimeSeriesSampler(sample_every_evals, sample_every_s)
        self.meta: dict = {}
        self.epoch = time.perf_counter()
        #: finalize the bundle automatically when the run ends (set by
        #: :meth:`from_config` so config-driven telemetry needs no manual
        #: finalize call)
        self.auto_finalize = False
        self._finalized: dict[str, Path] | None = None

    @classmethod
    def from_config(cls, config: ObsConfig) -> "Observer":
        """Materialize an :class:`ObsConfig`; the bundle auto-finalizes
        when the engine's ``on_stop`` hook fires."""
        obs = cls(
            out=config.out,
            trace=config.trace,
            sample_every_evals=config.sample_every_evals,
            sample_every_s=config.sample_every_s,
        )
        obs.auto_finalize = True
        return obs

    # -- collection API -------------------------------------------------
    def recorder(self, thread: str | int):
        """The private metric recorder for ``thread``."""
        return self.registry.recorder(thread)

    def thread_tracer(self, tid: int, name: str | None = None):
        """The trace lane for ``tid``; None when tracing is disabled."""
        if self.tracer is None:
            return None
        return self.tracer.thread(tid, name)

    def elapsed(self) -> float:
        """Wall seconds since the observer was created."""
        return time.perf_counter() - self.epoch

    def maybe_sample(
        self,
        evaluations: int,
        provider: Callable[[], dict],
        t_s: float | None = None,
        force: bool = False,
    ) -> bool:
        """Tick the time-series sampler (wall clock unless ``t_s`` given)."""
        t = self.elapsed() if t_s is None else t_s
        return self.sampler.tick(evaluations, t, provider, force=force)

    # -- engine integration ---------------------------------------------
    def engine_hooks(self):
        """The :class:`EngineHooks` bundle the sequential engines chain in."""
        from repro.cga.hooks import EngineHooks

        def on_generation(engine, generation, evaluations):
            self.maybe_sample(
                evaluations, lambda: self.engine_row(engine, generation, evaluations)
            )

        def on_improvement(engine, generation, evaluations, best):
            self.recorder("main").inc("improvements")
            tt = self.thread_tracer(0, "main")
            if tt is not None:
                tt.instant("improvement", {"best": best, "generation": generation})

        def on_stop(engine, result):
            self.maybe_sample(
                result.evaluations,
                lambda: self.engine_row(engine, result.generations, result.evaluations),
                force=True,
            )
            self.record_result(result)
            if self.auto_finalize:
                self.finalize()

        return EngineHooks(on_generation, on_improvement, on_stop)

    def engine_row(self, engine, generation: int, evaluations: int) -> dict:
        """One canonical time-series row computed from a live engine."""
        from repro.cga.diversity import allele_entropy

        _, best = engine.pop.best()
        t = self.elapsed()
        row = {
            "generation": generation,
            "best": best,
            "mean": engine.pop.mean_fitness(),
            "entropy": allele_entropy(engine.pop),
            "evals_per_s": evaluations / t if t > 0 else 0.0,
        }
        row.update(self.dynamics_row())
        return row

    def dynamics_row(self) -> dict:
        """Cumulative LS-acceptance and lock-time fields from the metrics."""
        c = self.registry.merged().counters
        tried = c.get("ls.moves_tried", 0.0)
        row = {
            "ls_accept_rate": (c.get("ls.moves_accepted", 0.0) / tried) if tried else None,
            "lock_wait_s": c.get("lock.read_wait_s_total", 0.0)
            + c.get("lock.write_wait_s_total", 0.0),
            "lock_hold_s": c.get("lock.read_hold_s_total", 0.0)
            + c.get("lock.write_hold_s_total", 0.0),
        }
        return row

    def record_result(self, result) -> None:
        """Stamp a finished :class:`RunResult` into the metadata."""
        self.meta.setdefault("result", {}).update(
            {
                "best_fitness": result.best_fitness,
                "evaluations": result.evaluations,
                "generations": result.generations,
                "elapsed_s": result.elapsed_s,
                "extra": {
                    k: v
                    for k, v in result.extra.items()
                    if isinstance(v, (int, float, str, bool, list))
                },
            }
        )

    # -- bundle ----------------------------------------------------------
    def finalize(self, meta: dict | None = None) -> dict[str, Path]:
        """Write the bundle (idempotent); returns artifact paths.

        With ``out=None`` nothing is written and an empty dict returns —
        the collectors remain inspectable in memory.
        """
        if meta:
            self.meta.update(meta)
        if self.out is None:
            return {}
        if self._finalized is not None:
            return self._finalized
        self.out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}

        paths["metrics"] = self.out / "metrics.json"
        with open(paths["metrics"], "w", encoding="utf-8") as fh:
            json.dump(self.registry.snapshot(), fh, indent=1)

        paths["timeseries"] = self.out / "timeseries.jsonl"
        self.sampler.write(paths["timeseries"])

        if self.tracer is not None:
            paths["trace"] = self.out / "trace.json"
            self.tracer.write(paths["trace"])

        self.meta.setdefault("n_timeseries_rows", len(self.sampler))
        self.meta.setdefault(
            "n_trace_events", self.tracer.n_events if self.tracer else 0
        )
        paths["meta"] = self.out / "meta.json"
        with open(paths["meta"], "w", encoding="utf-8") as fh:
            json.dump(self.meta, fh, indent=1, default=str)

        from repro.obs.report import render_markdown

        paths["report"] = self.out / "report.md"
        paths["report"].write_text(
            render_markdown(self.meta, self.registry.snapshot(), self.sampler.rows),
            encoding="utf-8",
        )
        self._finalized = paths
        return paths

    def summary(self) -> str:
        """Terminal-friendly one-screen summary of the collected run."""
        from repro.obs.report import render_terminal

        return render_terminal(self.meta, self.registry.snapshot(), self.sampler.rows)


def resolve_observer(config, obs) -> "Observer | None":
    """The engine-side obs resolution rule.

    An explicitly passed :class:`Observer` wins; otherwise a frozen
    ``config.obs`` :class:`ObsConfig` (when the config carries one) is
    materialized with auto-finalize semantics.
    """
    if obs is not None:
        return obs
    cfg = getattr(config, "obs", None)
    if cfg is not None:
        return Observer.from_config(cfg)
    return None

"""repro.obs — run-telemetry for every engine.

Per-thread lock-free metrics (:mod:`repro.obs.metrics`), Chrome
trace-event timelines (:mod:`repro.obs.trace`), JSONL convergence time
series (:mod:`repro.obs.timeseries`), report rendering
(:mod:`repro.obs.report`), live export — atomic ``live.json`` +
OpenMetrics endpoint (:mod:`repro.obs.live`) — the worker-heartbeat
watchdog (:mod:`repro.obs.watchdog`), the cross-run history /
regression gates (:mod:`repro.obs.history`), and the process
observability layer — crash-surviving flight recorder
(:mod:`repro.obs.flight`), ``/proc/self`` resource telemetry
(:mod:`repro.obs.resources`), cross-process statistical stack sampler
(:mod:`repro.obs.sample`) and the ``repro obs postmortem`` renderer
(:mod:`repro.obs.postmortem`) — all behind the :class:`Observer`
facade::

    from repro import load_benchmark, CGAConfig, StopCondition, ThreadedPACGA
    from repro.obs import Observer

    obs = Observer(out="out/bundle")
    engine = ThreadedPACGA(load_benchmark("u_i_hihi.0"),
                           CGAConfig(n_threads=4), obs=obs)
    engine.run(StopCondition(max_evaluations=20_000))
    obs.finalize(meta={"engine": "threads"})   # writes out/bundle/

Design rule: each worker thread owns a private recorder/tracer and the
registry merges on read, so instrumentation never adds shared-state
contention to the engines whose contention it measures.  With
``obs=None`` (the default everywhere) no collector is constructed at
all — the disabled path is allocation-free.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricRecorder,
    MetricsRegistry,
)
from repro.obs.trace import ThreadTracer, Tracer
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.observer import ObsConfig, Observer, WorkerObs, resolve_observer
from repro.obs.instrument import instrumented_ops
from repro.obs.report import load_bundle, render_markdown, render_terminal
from repro.obs.live import LivePublisher, render_openmetrics
from repro.obs.watchdog import HeartbeatBoard, StallEvent, Watchdog
from repro.obs.history import (
    append_history,
    check_resources,
    check_row,
    load_baseline,
    load_history,
    summarize_bundle,
)
from repro.obs.flight import (
    FlightRecorder,
    dump_stacks,
    install_crash_hooks,
    load_flight_dir,
    worker_crash_scope,
)
from repro.obs.resources import ResourceSampler, load_resource_rows, resource_peaks
from repro.obs.sample import StackSampler, hot_functions, merge_collapsed
from repro.obs.postmortem import render_postmortem
from repro.obs.dynamics import (
    GridDynamics,
    attribution_summary,
    load_grid_rows,
    record_batch_attribution,
)
from repro.obs.profile import PhaseProfiler, collapse_pstats
from repro.obs.top import render_frame, top

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_US",
    "Histogram",
    "MetricRecorder",
    "MetricsRegistry",
    "Tracer",
    "ThreadTracer",
    "TimeSeriesSampler",
    "ObsConfig",
    "Observer",
    "WorkerObs",
    "resolve_observer",
    "instrumented_ops",
    "load_bundle",
    "render_markdown",
    "render_terminal",
    "LivePublisher",
    "render_openmetrics",
    "HeartbeatBoard",
    "StallEvent",
    "Watchdog",
    "append_history",
    "check_resources",
    "check_row",
    "load_baseline",
    "load_history",
    "summarize_bundle",
    "FlightRecorder",
    "dump_stacks",
    "install_crash_hooks",
    "load_flight_dir",
    "worker_crash_scope",
    "ResourceSampler",
    "load_resource_rows",
    "resource_peaks",
    "StackSampler",
    "hot_functions",
    "merge_collapsed",
    "render_postmortem",
    "GridDynamics",
    "attribution_summary",
    "load_grid_rows",
    "record_batch_attribution",
    "PhaseProfiler",
    "collapse_pstats",
    "render_frame",
    "top",
]

"""``--obs-profile``: deterministic per-phase cProfile of an engine run.

Sampled phase histograms (:mod:`repro.obs.instrument`) answer *how
long* each operator takes; this module answers *where inside it* the
time goes.  :class:`PhaseProfiler` wraps the engine's ``run`` in a
stdlib :mod:`cProfile` session and writes three artifacts into the
telemetry bundle:

* ``profile.pstats`` — the raw marshalled stats (``pstats`` /
  ``snakeviz`` loadable);
* ``profile.txt`` — the top functions by cumulative time, pre-rendered;
* ``profile.collapsed`` — flamegraph-compatible collapsed stacks
  (``caller;callee;... <microseconds>`` per line, the format
  ``flamegraph.pl`` and speedscope ingest), built by
  :func:`collapse_pstats`.

cProfile's caller tables record one level of context, not full stacks,
so :func:`collapse_pstats` *estimates* the stacks the way flameprof
does: expand the static caller graph depth-first from the roots,
apportioning each function's cumulative time over its callers
proportionally.  The expansion is deterministic (children sorted by
name, cycle-guarded, integer microseconds), which is what lets a
golden test pin the output.

Profiling is wall-clock intrusive (every Python call crosses the
tracer), so the profiler also measures its own per-event overhead with
a short calibration loop and stamps the estimate into ``meta.json`` —
the honest number a reader needs before comparing a profiled run's
timings to an unprofiled one.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from pathlib import Path

__all__ = ["PhaseProfiler", "collapse_pstats", "calibrate_overhead_s"]

#: collapsed-stack expansion depth cap (flamegraphs deeper than this
#: are unreadable anyway; the cap also bounds cycle expansion)
MAX_STACK_DEPTH = 24


def _func_label(func: tuple) -> str:
    """``pstats`` function triple -> ``module:line(name)`` label."""
    filename, lineno, name = func
    if filename == "~":  # builtins have no file
        return name.strip("<>")
    stem = Path(filename).name
    return f"{stem}:{lineno}({name})"


def collapse_pstats(stats: pstats.Stats) -> str:
    """Estimate flamegraph collapsed stacks from a ``pstats.Stats``.

    Each output line is ``frame;frame;... <integer microseconds>``,
    sorted lexically — deterministic for a fixed stats table.  A
    function called from several places has its cumulative time split
    over the callers proportionally to the per-caller cumulative times
    cProfile recorded; roots (no recorded caller) start their own
    stacks.  Self-time of non-leaf frames is emitted on the frame
    itself, so the flamegraph's totals match the profile.
    """
    # stats.stats: func -> (cc, nc, tt, ct, callers: {caller: (cc, nc, tt, ct)})
    table = stats.stats
    callees: dict[tuple, list[tuple]] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in table.items():
        for caller in callers:
            callees.setdefault(caller, []).append(func)
    for kids in callees.values():
        kids.sort(key=_func_label)

    lines: dict[str, int] = {}

    def emit(path: list[str], seconds: float) -> None:
        us = int(round(seconds * 1e6))
        if us <= 0:
            return
        key = ";".join(path)
        lines[key] = lines.get(key, 0) + us

    def caller_share(func: tuple, caller: tuple) -> float:
        """Fraction of ``func``'s cumulative time owed to ``caller``."""
        _cc, _nc, _tt, ct, callers = table[func]
        if ct <= 0:
            return 0.0
        edge_ct = callers[caller][3]
        total_edges = sum(entry[3] for entry in callers.values())
        if total_edges <= 0:
            return 1.0 / len(callers)
        return edge_ct / total_edges

    def expand(func: tuple, path: list[str], seconds: float, depth: int) -> None:
        label = _func_label(func)
        if label in path or depth >= MAX_STACK_DEPTH:  # cycle / depth guard
            emit(path, seconds)
            return
        path = path + [label]
        _cc, _nc, tt, ct, _callers = table[func]
        scale = seconds / ct if ct > 0 else 0.0
        emit(path, tt * scale)  # the frame's own self time
        for child in callees.get(func, ()):
            share = caller_share(child, func)
            if share <= 0:
                continue
            child_ct = table[child][3]
            expand(child, path, child_ct * share * scale, depth + 1)

    roots = [func for func, entry in table.items() if not entry[4]]
    for func in sorted(roots, key=_func_label):
        expand(func, [], table[func][3], 0)
    return "\n".join(f"{key} {us}" for key, us in sorted(lines.items())) + "\n"


def calibrate_overhead_s(events: int, probe_calls: int = 20_000) -> float:
    """Estimated wall seconds cProfile added to a run of ``events``
    profiler events, from a short two-run calibration probe."""
    if events <= 0:
        return 0.0

    def probe() -> int:
        acc = 0
        for i in range(probe_calls):
            acc += _probe_leaf(i)
        return acc

    t0 = time.perf_counter()
    probe()
    bare = time.perf_counter() - t0
    prof = cProfile.Profile()
    t0 = time.perf_counter()
    prof.runcall(probe)
    profiled = time.perf_counter() - t0
    # one probe call = one call + one return event
    per_event = max(0.0, (profiled - bare) / (2 * probe_calls))
    return per_event * events


def _probe_leaf(i: int) -> int:
    return i & 1


class PhaseProfiler:
    """Context manager profiling everything inside its ``with`` block.

    Usage (the CLI's ``--obs-profile`` path)::

        with PhaseProfiler(obs) as prof:
            result = engine.run(stop)

    On exit the three profile artifacts are written into the observer's
    bundle directory and ``meta.json`` gains a ``profile`` stamp::

        {"events": ..., "top_cumulative": [...],
         "overhead_est_s": ..., "artifacts": [...]}
    """

    def __init__(self, obs, top_n: int = 12):
        if obs is None or obs.out is None:
            raise ValueError(
                "PhaseProfiler needs an observer with a bundle directory "
                "(--obs-profile requires --obs-out)"
            )
        self.obs = obs
        self.top_n = top_n
        self.profile = cProfile.Profile()
        self.paths: dict[str, Path] = {}

    def __enter__(self) -> "PhaseProfiler":
        self.profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.profile.disable()
        self.finalize()
        return False

    def finalize(self) -> dict[str, Path]:
        """Write artifacts + stamp ``obs.meta['profile']`` (idempotent)."""
        if self.paths:
            return self.paths
        out = self.obs.out
        out.mkdir(parents=True, exist_ok=True)

        self.paths["pstats"] = out / "profile.pstats"
        self.profile.dump_stats(str(self.paths["pstats"]))

        stats = pstats.Stats(self.profile)
        events = int(stats.total_calls)

        text = io.StringIO()
        pstats.Stats(self.profile, stream=text).sort_stats(
            pstats.SortKey.CUMULATIVE
        ).print_stats(40)
        self.paths["txt"] = out / "profile.txt"
        self.paths["txt"].write_text(text.getvalue(), encoding="utf-8")

        self.paths["collapsed"] = out / "profile.collapsed"
        self.paths["collapsed"].write_text(collapse_pstats(stats), encoding="utf-8")

        top = sorted(
            (
                (ct, _func_label(func))
                for func, (_cc, _nc, _tt, ct, _callers) in stats.stats.items()
            ),
            reverse=True,
        )[: self.top_n]
        self.obs.meta["profile"] = {
            "events": events,
            "total_time_s": float(stats.total_tt),
            "overhead_est_s": calibrate_overhead_s(events),
            "top_cumulative": [
                {"function": label, "cumulative_s": float(ct)} for ct, label in top
            ],
            "artifacts": sorted(p.name for p in self.paths.values()),
        }
        return self.paths

"""Cross-run history: an append-only JSONL run registry + regression gates.

The paper's Table 1/Table 2 comparisons (and the related parallel-GA
literature they sit in) only mean something when run quality and
throughput are *tracked*, not eyeballed.  This module closes that loop:

* :func:`summarize_bundle` distills one finished telemetry bundle
  (``meta.json`` + ``metrics.json`` + final result) into a flat summary
  row;
* :func:`append_history` / :func:`load_history` maintain the
  append-only JSONL registry (one row per run — append-only so CI can
  accumulate it as an artifact across builds);
* :func:`diff_rows` compares two runs field by field;
* :func:`check_row` is the regression gate: best makespan must not rise
  and throughput must not fall beyond the configured tolerances versus
  a baseline.  :func:`load_baseline` also understands the repo's
  committed ``BENCH_throughput.json`` shape, so CI gates every build's
  bench run against the committed numbers.

Everything here is offline tooling — nothing in this module is ever
imported on an engine hot path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "summarize_bundle",
    "summarize_source",
    "append_history",
    "load_history",
    "render_history",
    "diff_rows",
    "render_diff",
    "load_baseline",
    "check_row",
    "check_dynamics",
    "check_resources",
    "check_parallel_speedup",
]

#: final-snapshot fitness entropy below which the grid is considered
#: collapsed (every cell in one fitness bucket = diversity exhausted)
ENTROPY_COLLAPSE_FLOOR = 0.05

#: fields a summary row carries (missing values are stored as None)
ROW_FIELDS = (
    "run_id",
    "recorded_unix",
    "engine",
    "problem",
    "instance",
    "n_threads",
    "seed",
    "best_fitness",
    "evaluations",
    "generations",
    "elapsed_s",
    "evals_per_s",
    "stalls",
    "lock_wait_s",
    "ls_success_rate",
    "final_entropy",
    "interrupted",
    "peak_rss_mb",
    "peak_fds",
)


def summarize_bundle(bundle_dir) -> dict:
    """One flat summary row from a telemetry bundle directory.

    Tolerates partial (crash-finalized) bundles: only ``meta.json`` is
    required, metrics enrich the row when present.
    """
    root = Path(bundle_dir)
    meta = json.loads((root / "meta.json").read_text(encoding="utf-8"))
    counters: dict = {}
    metrics_path = root / "metrics.json"
    if metrics_path.exists():
        counters = (
            json.loads(metrics_path.read_text(encoding="utf-8"))
            .get("merged", {})
            .get("counters", {})
        )
    result = meta.get("result", {})
    elapsed = result.get("elapsed_s")
    evals = result.get("evaluations")
    row = {
        "run_id": meta.get("run_id") or root.resolve().name,
        "recorded_unix": None,  # stamped by append_history
        "engine": meta.get("engine"),
        "problem": meta.get("problem", "independent"),
        "instance": meta.get("instance"),
        "n_threads": meta.get("n_threads"),
        "seed": meta.get("seed"),
        "best_fitness": result.get("best_fitness"),
        "evaluations": evals,
        "generations": result.get("generations"),
        "elapsed_s": elapsed,
        "evals_per_s": (evals / elapsed) if evals and elapsed else None,
        "stalls": int(counters.get("watchdog.stalls", 0)),
        "lock_wait_s": counters.get("lock.read_wait_s_total", 0.0)
        + counters.get("lock.write_wait_s_total", 0.0),
        "ls_success_rate": (
            counters["op.ls.successes"] / counters["op.ls.attempts"]
            if counters.get("op.ls.attempts")
            else None
        ),
        "final_entropy": _final_entropy(root),
        "interrupted": bool(meta.get("interrupted")),
    }
    row.update(_resource_summary(root, meta))
    return row


def _resource_summary(root: Path, meta: dict) -> dict:
    """``peak_rss_mb`` / ``peak_fds`` from the bundle's resource rows.

    Prefers the peaks the observer stamped into ``meta.json`` at
    finalize; recomputes from the streamed rows for crash-partial
    bundles.  Runs without resource sampling store None — the
    ``--max-rss-mb`` / ``--max-fds`` gates then fail explicitly instead
    of passing on missing data.
    """
    peaks = meta.get("resources")
    if not isinstance(peaks, dict) or not peaks:
        from repro.obs.resources import resource_peaks

        peaks = resource_peaks(root)
    return {
        "peak_rss_mb": peaks.get("peak_rss_mb"),
        "peak_fds": peaks.get("peak_fds"),
    }


def _final_entropy(root: Path) -> float | None:
    """Fitness entropy of the run's last grid snapshot (None if the
    bundle carries no grid stream)."""
    path = root / "grid.jsonl"
    if not path.exists():
        return None
    last = None
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip():
            last = line
    if last is None:
        return None
    return json.loads(last).get("fitness_entropy")


def summarize_source(path) -> dict:
    """A summary row from a bundle dir, a summary ``.json`` file, or
    the last row of a history ``.jsonl`` file."""
    p = Path(path)
    if p.is_dir():
        return summarize_bundle(p)
    if p.suffix == ".jsonl":
        rows = load_history(p)
        if not rows:
            raise ValueError(f"history file {p} is empty")
        return rows[-1]
    return json.loads(p.read_text(encoding="utf-8"))


def append_history(history_path, row: dict) -> dict:
    """Append ``row`` to the JSONL registry (created on first use);
    stamps ``recorded_unix`` and returns the stored row."""
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stored = {k: row.get(k) for k in ROW_FIELDS}
    stored.update({k: v for k, v in row.items() if k not in stored})
    if stored.get("recorded_unix") is None:
        stored["recorded_unix"] = round(time.time(), 3)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(stored) + "\n")
    return stored


def load_history(history_path) -> list[dict]:
    """All rows of a JSONL registry (empty list for a missing file)."""
    path = Path(history_path)
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def _fmt(v, digits: int = 2) -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return f"{v:,.{digits}f}"
    return f"{v:,}" if isinstance(v, int) else str(v)


def render_history(rows: list[dict], limit: int | None = None) -> str:
    """Fixed-width table of the newest ``limit`` rows."""
    from repro.obs.report import _table

    if limit is not None:
        rows = rows[-limit:]
    if not rows:
        return "(history is empty)"
    headers = ["run", "engine", "instance", "thr", "makespan", "evals", "evals/s", "stalls"]
    body = [
        [
            str(r.get("run_id", "-"))[:24],
            _fmt(r.get("engine")),
            _fmt(r.get("instance")),
            _fmt(r.get("n_threads")),
            _fmt(r.get("best_fitness")),
            _fmt(r.get("evaluations")),
            _fmt(r.get("evals_per_s"), 0),
            _fmt(r.get("stalls")),
        ]
        for r in rows
    ]
    return _table(headers, body)


#: fields compared by ``repro obs diff`` — (key, lower-is-better)
DIFF_FIELDS = (
    ("best_fitness", True),
    ("evaluations", False),
    ("elapsed_s", True),
    ("evals_per_s", False),
    ("stalls", True),
    ("lock_wait_s", True),
)


def diff_rows(a: dict, b: dict) -> list[dict]:
    """Field-by-field comparison of two summary rows (B relative to A)."""
    out = []
    for key, lower_better in DIFF_FIELDS:
        va, vb = a.get(key), b.get(key)
        delta_pct = None
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            delta_pct = 100.0 * (vb - va) / abs(va)
        better = None
        if delta_pct is not None and abs(delta_pct) > 1e-9:
            better = (delta_pct < 0) == lower_better
        out.append({"field": key, "a": va, "b": vb, "delta_pct": delta_pct, "better": better})
    return out


def render_diff(a: dict, b: dict) -> str:
    """Human-readable ``repro obs diff A B`` table."""
    from repro.obs.report import _table

    rows = []
    for d in diff_rows(a, b):
        delta = "-"
        if d["delta_pct"] is not None:
            arrow = "" if d["better"] is None else (" +" if d["better"] else " !")
            delta = f"{d['delta_pct']:+.1f}%{arrow}"
        rows.append([d["field"], _fmt(d["a"]), _fmt(d["b"]), delta])
    head = (
        f"A: {a.get('run_id', '?')} ({a.get('engine')}, {a.get('instance')})\n"
        f"B: {b.get('run_id', '?')} ({b.get('engine')}, {b.get('instance')})\n"
        "('+' = B better, '!' = B worse)\n\n"
    )
    return head + _table(["field", "A", "B", "B vs A"], rows)


def _engine_key(row: dict) -> str | None:
    """The ``BENCH_throughput.json`` engine key, e.g. ``threads(2)``."""
    engine, n = row.get("engine"), row.get("n_threads")
    if engine is None:
        return None
    alias = {"sim": "simulated"}.get(engine, engine)
    return f"{alias}({n if n is not None else 1})"


def load_baseline(path, row: dict | None = None) -> dict:
    """A baseline row from a summary/history file or the committed
    ``BENCH_throughput.json``.

    The bench file carries per-engine throughput (``engines_evals_per_s``)
    and optional per-engine quality (``quality_makespan``); ``row`` (the
    run under test) selects the matching engine entry.
    """
    data = summarize_source(path)
    if "engines_evals_per_s" not in data:
        return data
    key = _engine_key(row or {})
    engines = data["engines_evals_per_s"]
    if key not in engines:
        raise KeyError(
            f"baseline {path} has no engine entry {key!r} "
            f"(available: {', '.join(sorted(engines))})"
        )
    return {
        "run_id": f"baseline:{key}",
        "engine": (row or {}).get("engine"),
        "instance": data.get("instance"),
        "evals_per_s": engines[key],
        "best_fitness": data.get("quality_makespan", {}).get(key),
    }


def check_row(
    current: dict,
    baseline: dict,
    tolerance_pct: float = 10.0,
    throughput_tolerance_pct: float | None = None,
) -> list[str]:
    """The regression gate; returns the list of violations (empty = pass).

    * quality: ``best_fitness`` (makespan, lower is better) may not
      exceed the baseline by more than ``tolerance_pct`` percent;
    * throughput: ``evals_per_s`` may not fall below the baseline by
      more than ``throughput_tolerance_pct`` (defaults to
      ``tolerance_pct``) percent;
    * a run that recorded stall events or was interrupted fails outright.

    Metrics absent from the baseline are skipped, so a throughput-only
    baseline (``BENCH_throughput.json`` without quality entries) gates
    throughput alone.
    """
    if throughput_tolerance_pct is None:
        throughput_tolerance_pct = tolerance_pct
    problems: list[str] = []

    base_ms, cur_ms = baseline.get("best_fitness"), current.get("best_fitness")
    if base_ms is not None and cur_ms is not None:
        ceiling = base_ms * (1.0 + tolerance_pct / 100.0)
        if cur_ms > ceiling:
            problems.append(
                f"makespan regression: {cur_ms:,.2f} > {base_ms:,.2f} "
                f"+{tolerance_pct:g}% (ceiling {ceiling:,.2f})"
            )

    base_tp, cur_tp = baseline.get("evals_per_s"), current.get("evals_per_s")
    if base_tp is not None and cur_tp is not None:
        floor = base_tp * (1.0 - throughput_tolerance_pct / 100.0)
        if cur_tp < floor:
            problems.append(
                f"throughput regression: {cur_tp:,.1f} evals/s < {base_tp:,.1f} "
                f"-{throughput_tolerance_pct:g}% (floor {floor:,.1f})"
            )

    if current.get("stalls"):
        problems.append(f"run recorded {current['stalls']} worker stall event(s)")
    if current.get("interrupted"):
        problems.append("run was interrupted (partial bundle)")
    return problems


def check_dynamics(
    row: dict,
    min_ls_success_rate: float | None = None,
    entropy_floor: float = ENTROPY_COLLAPSE_FLOOR,
) -> tuple[list[str], list[str]]:
    """Search-dynamics gate on one summary row; ``(problems, warnings)``.

    * ``min_ls_success_rate``: the run's local-search success rate (the
      ``op.ls.*`` attribution counters) must reach this fraction — a
      *hard* failure, since an LS that stops paying for itself is the
      paper's H2LL regressing.  A row without LS attribution (LS
      disabled, or a pre-dynamics bundle) fails the gate explicitly
      rather than passing silently.
    * entropy collapse: a final grid-snapshot fitness entropy below
      ``entropy_floor`` is *warned* about, not failed — full
      convergence is legitimate at large budgets, but collapse early in
      a comparison run usually means selection pressure is
      misconfigured.
    """
    problems: list[str] = []
    warnings: list[str] = []
    if min_ls_success_rate is not None:
        rate = row.get("ls_success_rate")
        if rate is None:
            problems.append(
                "run has no LS attribution counters (op.ls.*) to gate "
                "--min-ls-success-rate on"
            )
        elif rate < min_ls_success_rate:
            problems.append(
                f"LS success rate regression: {rate:.3f} < "
                f"floor {min_ls_success_rate:g}"
            )
    entropy = row.get("final_entropy")
    if entropy is not None and entropy < entropy_floor:
        warnings.append(
            f"entropy collapse: final grid fitness entropy {entropy:.3f} < "
            f"{entropy_floor:g} (grid fully converged; check selection "
            "pressure if this happened early)"
        )
    return problems, warnings


def check_resources(
    row: dict,
    max_rss_mb: float | None = None,
    max_fds: int | None = None,
) -> list[str]:
    """Resource gate on one summary row; returns violations (empty = pass).

    * ``max_rss_mb``: the run's single-process peak RSS
      (``peak_rss_mb`` — the number the OOM killer acts on) must not
      exceed this many MiB;
    * ``max_fds``: peak open-descriptor count must not exceed this.

    Following the same explicit-failure rule as :func:`check_dynamics`,
    a row without the peak (run without ``--obs-resources``, or a
    pre-resources bundle) fails the corresponding gate rather than
    passing silently.
    """
    problems: list[str] = []
    checks = (
        ("peak_rss_mb", max_rss_mb, "--max-rss-mb", "peak RSS", "MB"),
        ("peak_fds", max_fds, "--max-fds", "peak fd count", ""),
    )
    for field, ceiling, flag, label, unit in checks:
        if ceiling is None:
            continue
        value = row.get(field)
        if value is None:
            problems.append(
                f"run has no {field} (resource sampling off?) to gate {flag} on"
            )
        elif value > ceiling:
            problems.append(
                f"resource regression: {label} {value:g}{unit} > "
                f"ceiling {ceiling:g}{unit}"
            )
    return problems


def check_parallel_speedup(payload: dict, floor: float) -> list[str]:
    """Gate a bench payload's ``parallel_speedup`` section against ``floor``.

    ``BENCH_throughput.json`` records multi-worker scaling ratios (e.g.
    ``"shm(2)/shm(1)": 1.42``).  Every ratio must be at least ``floor``
    (1.0 = "adding workers never loses throughput").  A payload without
    the section fails outright — the gate exists to stop the committed
    bench file from silently dropping the field.
    """
    section = payload.get("parallel_speedup")
    if not isinstance(section, dict) or not section:
        return [
            "payload has no parallel_speedup section "
            "(regenerate BENCH_throughput.json with the current bench script)"
        ]
    problems: list[str] = []
    for key in sorted(section):
        ratio = section[key]
        if not isinstance(ratio, (int, float)):
            problems.append(f"parallel_speedup[{key!r}] is not numeric: {ratio!r}")
        elif ratio < floor:
            problems.append(
                f"parallel speedup regression: {key} = {ratio:.3f} < floor {floor:g}"
            )
    return problems

"""Crash-surviving flight recorder: mmap'd event rings + post-mortem hooks.

The shm/processes engines fork workers the rest of :mod:`repro.obs`
can only watch from the outside: when a worker crashes, deadlocks or
is SIGKILLed, the queue-shipped metrics die with it and the bundle
records a stall flag at best.  This module is the black box that
survives the wreck:

* :class:`FlightRecorder` — a bounded ring buffer of fixed-size
  structured events (``sweep``, ``checkpoint``, ``boundary``,
  ``lock.wait``, ``stall``, ``budget.*``, ``crash``, ``signal``)
  backed by an **mmap'd file**.  Every :meth:`record` writes straight
  into the shared mapping, so the journal's tail is on disk (page
  cache) the instant it is written — a worker killed with ``SIGKILL``
  mid-sweep leaves its last events readable by the parent, no flush
  or finalize required.  One ring per process/role; writes are
  single-writer and lock-free (one ``struct.pack_into`` per event).
* :func:`dump_stacks` — format every thread's current Python stack
  (via ``sys._current_frames()``), used by the SIGUSR1 handler and by
  the watchdog's stall escalation.
* :func:`install_crash_hooks` — per-process post-mortem wiring:
  ``faulthandler`` onto a crash log (hard faults), a chained
  ``sys.excepthook`` that stamps the exception + all thread stacks
  into ``postmortem-<role>.json``, an ``atexit`` closer, and a
  ``SIGUSR1`` handler that appends a live all-thread stack dump to
  ``stacks-<role>.txt`` and records a ``signal`` flight event — so a
  stuck run can be interrogated from the outside with plain ``kill``.
* :func:`worker_crash_scope` — the forked-worker wrapper: installs the
  hooks, and on any escaping exception writes the post-mortem record
  (pid, role, traceback, final resource sample) before re-raising, so
  the parent's "worker failed" error is attributable from the bundle.

Layout inside a bundle::

    bundle/flight/
      <role>.bin            # the ring (parent: "main"; workers: "w0"...)
      stacks-<role>.txt     # SIGUSR1 / stall-escalation stack dumps
      postmortem-<role>.json# written by the crash hooks on exception
      crash-<role>.log      # faulthandler output for hard faults

Reading is offline-only (:func:`load_flight_dir`,
:meth:`FlightRecorder.events`): the renderer in
:mod:`repro.obs.postmortem` folds all of it into one report.
"""

from __future__ import annotations

import json
import mmap
import os
import signal
import struct
import sys
import threading
import time
import traceback
from pathlib import Path

__all__ = [
    "EVENT_STRUCT",
    "FlightRecorder",
    "dump_stacks",
    "append_stack_dump",
    "write_postmortem",
    "install_crash_hooks",
    "worker_crash_scope",
    "load_flight_dir",
    "flight_paths",
]

#: ring file magic + layout version (bump on any layout change)
MAGIC = b"RPRFLT01"

#: one event slot: t_s (f64, seconds since the ring's epoch), kind
#: (12 bytes ASCII, NUL-padded), msg (36 bytes ASCII, truncated),
#: value (f64) — 64 bytes, so a 512-slot ring is one 32 KiB file.
EVENT_STRUCT = struct.Struct("<d12s36sd")
SLOT_SIZE = EVENT_STRUCT.size  # 64

#: header: magic (8s), slot count (I), slot size (I), cursor (Q, total
#: events ever written), epoch_unix (d) — padded to one slot.
HEADER_STRUCT = struct.Struct("<8sIIQd")
HEADER_SIZE = SLOT_SIZE

#: default ring capacity per process (events, not bytes)
DEFAULT_SLOTS = 512

_CURSOR_OFFSET = 16  # byte offset of the cursor field inside the header


def _ascii(text: str, width: int) -> bytes:
    return text.encode("ascii", "replace")[:width]


class FlightRecorder:
    """One process's bounded event ring over an mmap'd file.

    The writer is the owning process (single-threaded writes are the
    norm; concurrent threads of one process may interleave — events
    are 64-byte slots, so the worst case under the GIL is slot reuse,
    never a torn header).  Readers open the same file read-only from
    any process at any time, including after the writer was SIGKILLed.
    """

    __slots__ = ("path", "slots", "epoch", "_mm", "_fh", "_closed")

    def __init__(self, path, slots: int = DEFAULT_SLOTS, epoch_unix: float | None = None):
        if slots < 2:
            raise ValueError(f"flight ring needs at least 2 slots, got {slots}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.slots = int(slots)
        self.epoch = time.time() if epoch_unix is None else float(epoch_unix)
        size = HEADER_SIZE + self.slots * SLOT_SIZE
        self._fh = open(self.path, "w+b")
        self._fh.truncate(size)
        self._mm = mmap.mmap(self._fh.fileno(), size)
        HEADER_STRUCT.pack_into(
            self._mm, 0, MAGIC, self.slots, SLOT_SIZE, 0, self.epoch
        )
        self._closed = False

    # -- writing ---------------------------------------------------------
    def record(self, kind: str, msg: str = "", value: float = 0.0) -> None:
        """Append one event (lock-free; overwrites the oldest on wrap)."""
        if self._closed:
            return
        mm = self._mm
        (cursor,) = struct.unpack_from("<Q", mm, _CURSOR_OFFSET)
        offset = HEADER_SIZE + (cursor % self.slots) * SLOT_SIZE
        EVENT_STRUCT.pack_into(
            mm,
            offset,
            time.time() - self.epoch,
            _ascii(kind, 12),
            _ascii(msg, 36),
            float(value),
        )
        # publish the slot by bumping the cursor last: a reader that
        # snapshots the header sees only fully written events
        struct.pack_into("<Q", mm, _CURSOR_OFFSET, cursor + 1)

    def close(self) -> None:
        """Flush and unmap (idempotent); the file stays readable."""
        if self._closed:
            return
        self._closed = True
        try:
            self._mm.flush()
        except (ValueError, OSError):  # pragma: no cover - already gone
            pass
        self._mm.close()
        self._fh.close()

    # -- reading ---------------------------------------------------------
    @property
    def n_recorded(self) -> int:
        """Total events ever written (>= len(events()) once wrapped)."""
        if self._closed:
            return 0
        (cursor,) = struct.unpack_from("<Q", self._mm, _CURSOR_OFFSET)
        return int(cursor)

    def events(self) -> list[dict]:
        """Decode this ring's retained events, oldest first."""
        return read_events(self.path)


def read_events(path) -> list[dict]:
    """Decode a ring file into event dicts, oldest first.

    Tolerates a ring whose writer died mid-write: the cursor is bumped
    only after the slot is complete, so at most the newest event is
    lost, never corrupted output.
    """
    raw = Path(path).read_bytes()
    if len(raw) < HEADER_SIZE:
        raise ValueError(f"{path} is too short to be a flight ring")
    magic, slots, slot_size, cursor, epoch = HEADER_STRUCT.unpack_from(raw, 0)
    if magic != MAGIC:
        raise ValueError(f"{path} is not a flight ring (bad magic {magic!r})")
    if slot_size != SLOT_SIZE:
        raise ValueError(f"{path} has slot size {slot_size}, expected {SLOT_SIZE}")
    n = min(cursor, slots)
    start = cursor - n  # oldest retained event index
    out = []
    for i in range(start, cursor):
        offset = HEADER_SIZE + (i % slots) * SLOT_SIZE
        t_s, kind, msg, value = EVENT_STRUCT.unpack_from(raw, offset)
        out.append(
            {
                "seq": i,
                "t_s": t_s,
                "kind": kind.rstrip(b"\x00").decode("ascii", "replace"),
                "msg": msg.rstrip(b"\x00").decode("ascii", "replace"),
                "value": value,
            }
        )
    return out


# -- bundle layout ----------------------------------------------------------

def flight_paths(out, role: str) -> dict[str, Path]:
    """The per-role artifact paths inside ``<bundle>/flight/``."""
    root = Path(out) / "flight"
    return {
        "ring": root / f"{role}.bin",
        "stacks": root / f"stacks-{role}.txt",
        "postmortem": root / f"postmortem-{role}.json",
        "crashlog": root / f"crash-{role}.log",
        "resources": root / f"resources-{role}.jsonl",
        "samples": root / f"samples-{role}.collapsed",
    }


def load_flight_dir(bundle) -> dict[str, list[dict]]:
    """All rings of a bundle: ``role -> events`` (empty if none)."""
    root = Path(bundle) / "flight"
    if not root.is_dir():
        return {}
    out = {}
    for path in sorted(root.glob("*.bin")):
        try:
            out[path.stem] = read_events(path)
        except (ValueError, OSError):  # unreadable ring: skip, don't fail
            continue
    return out


# -- stack dumps ------------------------------------------------------------

def dump_stacks(note: str = "") -> str:
    """Every thread's current Python stack as one formatted block."""
    names = {t.ident: t.name for t in threading.enumerate()}
    lines = [
        f"=== stack dump pid={os.getpid()} t={time.time():.3f}"
        + (f" ({note})" if note else "")
    ]
    for tid, frame in sorted(sys._current_frames().items()):
        lines.append(f"--- thread {tid} ({names.get(tid, '?')})")
        lines.extend(ln.rstrip("\n") for ln in traceback.format_stack(frame))
    return "\n".join(lines) + "\n"


def append_stack_dump(path, note: str = "") -> str:
    """Append :func:`dump_stacks` output to ``path``; returns the dump."""
    text = dump_stacks(note)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    return text


def write_postmortem(
    out,
    role: str,
    exc: BaseException | None = None,
    resources: dict | None = None,
) -> Path:
    """Stamp ``postmortem-<role>.json`` into the bundle's flight dir.

    Carries the crash identity (pid, thread), the formatted exception,
    every thread's stack at write time, and the final resource sample
    if the caller has one — everything the renderer needs to attribute
    a dead worker.
    """
    paths = flight_paths(out, role)
    record = {
        "role": role,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "thread": threading.current_thread().name,
        "unix_time": round(time.time(), 3),
        "exception": (
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exception(type(exc), exc, exc.__traceback__),
            }
            if exc is not None
            else None
        ),
        "stacks": dump_stacks(f"postmortem {role}"),
        "resources": resources,
    }
    paths["postmortem"].parent.mkdir(parents=True, exist_ok=True)
    tmp = paths["postmortem"].with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record, indent=1), encoding="utf-8")
    os.replace(tmp, paths["postmortem"])
    return paths["postmortem"]


# -- per-process crash hooks ------------------------------------------------

class _CrashHooks:
    """Handle for one process's installed post-mortem wiring."""

    def __init__(self, out, role: str, ring: FlightRecorder | None, resources=None):
        self.out = Path(out)
        self.role = role
        self.ring = ring
        self.resources = resources  # optional ResourceSampler for final samples
        self.paths = flight_paths(out, role)
        self._prev_excepthook = None
        self._prev_sigusr1 = None
        self._crash_fh = None
        self._installed = False

    # the SIGUSR1 handler: dump all thread stacks + note it in the ring
    def _on_sigusr1(self, signum, frame) -> None:
        try:
            append_stack_dump(self.paths["stacks"], note="SIGUSR1")
            if self.ring is not None:
                self.ring.record("signal", "SIGUSR1 stack dump")
            if self.resources is not None:
                self.resources.sample()
        except Exception:  # pragma: no cover - never die inside a handler
            pass

    def _on_uncaught(self, exc_type, exc, tb) -> None:
        try:
            if self.ring is not None:
                self.ring.record("crash", f"{exc_type.__name__}: {exc}"[:36])
            final = self.resources.sample() if self.resources is not None else None
            err = exc if isinstance(exc, BaseException) else exc_type(exc)
            err.__traceback__ = tb
            write_postmortem(self.out, self.role, err, resources=final)
        except Exception:  # pragma: no cover
            pass
        if self._prev_excepthook is not None:
            self._prev_excepthook(exc_type, exc, tb)

    def install(self) -> "_CrashHooks":
        if self._installed:
            return self
        self._installed = True
        self.paths["ring"].parent.mkdir(parents=True, exist_ok=True)
        # hard faults (SIGSEGV & co): faulthandler writes C-level-safe
        # all-thread tracebacks into the crash log
        import faulthandler

        self._crash_fh = open(self.paths["crashlog"], "w", encoding="utf-8")
        faulthandler.enable(file=self._crash_fh, all_threads=True)
        self._prev_excepthook = sys.excepthook
        sys.excepthook = self._on_uncaught
        # SIGUSR1 is only installable from the main thread of the
        # process; forked shm workers satisfy that (fork re-mains them)
        if threading.current_thread() is threading.main_thread():
            self._prev_sigusr1 = signal.signal(signal.SIGUSR1, self._on_sigusr1)
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        if sys.excepthook == self._on_uncaught and self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
        if self._prev_sigusr1 is not None:
            try:
                signal.signal(signal.SIGUSR1, self._prev_sigusr1)
            except (ValueError, OSError):  # pragma: no cover - not main thread
                pass
            self._prev_sigusr1 = None
        import faulthandler

        if self._crash_fh is not None:
            try:
                faulthandler.disable()
            finally:
                self._crash_fh.close()
                self._crash_fh = None


def install_crash_hooks(out, role: str, ring: FlightRecorder | None = None, resources=None) -> _CrashHooks:
    """Install this process's post-mortem wiring (see module docstring)."""
    return _CrashHooks(out, role, ring, resources=resources).install()


class worker_crash_scope:
    """Context manager wrapping a forked worker's whole body.

    Installs the crash hooks on entry; on an escaping exception writes
    the worker's post-mortem record and a ``crash`` flight event, then
    re-raises so the parent still sees a nonzero exit code.  On exit
    (either way) the ring and hooks are flushed/closed.
    """

    def __init__(self, out, role: str, ring: FlightRecorder | None = None, resources=None):
        self.out = out
        self.role = role
        self.ring = ring
        self.resources = resources
        self.hooks: _CrashHooks | None = None

    def __enter__(self) -> "worker_crash_scope":
        self.hooks = install_crash_hooks(
            self.out, self.role, self.ring, resources=self.resources
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc is not None and not isinstance(exc, SystemExit):
                if self.ring is not None:
                    self.ring.record("crash", f"{exc_type.__name__}: {exc}"[:36])
                final = None
                if self.resources is not None:
                    try:
                        final = self.resources.sample()
                    except Exception:  # pragma: no cover
                        final = None
                write_postmortem(self.out, self.role, exc, resources=final)
        finally:
            if self.hooks is not None:
                self.hooks.uninstall()
            if self.ring is not None:
                self.ring.close()
        return False

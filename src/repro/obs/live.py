"""Live run export: atomic ``live.json``, OpenMetrics HTTP, watch view.

PR 2's bundles are post-mortem — nothing is visible until
``Observer.finalize()``.  This module adds the *during-the-run* layer:

* :class:`LivePublisher` — a background daemon thread that periodically
  folds the merge-on-read :class:`~repro.obs.metrics.MetricsRegistry`
  plus engine progress (generation, evaluations, best fitness, worker
  heartbeats) into one snapshot, atomically replaces ``live.json`` in
  the bundle directory (write-temp + ``os.replace``, so a reader never
  sees a torn file), and optionally serves the same snapshot over a
  stdlib ``http.server`` endpoint: ``/metrics`` in OpenMetrics /
  Prometheus text exposition format, ``/live.json`` as JSON.
* :func:`render_openmetrics` — the exposition-format renderer
  (deterministic output; the golden test pins it).
* :func:`watch` / :func:`render_watch` — ``repro obs watch <dir>``
  renders the snapshot in place in the terminal.

The publisher reads worker state the same way the time-series sampler
does — lock-free and slightly stale by design — so going live costs the
workers nothing.  With ``obs=None`` (or live export not requested) no
publisher thread or server socket is ever created.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "atomic_write_json",
    "render_openmetrics",
    "LivePublisher",
    "render_watch",
    "watch",
]

#: content type the /metrics endpoint advertises (Prometheus scrapes it)
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def atomic_write_json(path, obj: dict) -> None:
    """Write ``obj`` as JSON via a same-directory temp + ``os.replace``.

    ``os.replace`` is atomic on POSIX, so concurrent readers (the watch
    view, a scraper tailing the file) always load either the previous
    or the new complete snapshot, never a partial write.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


# -- OpenMetrics rendering ------------------------------------------------

def _om_name(key: str) -> str:
    """Sanitize a dotted metric key into an OpenMetrics metric name."""
    out = []
    for ch in key:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return f"repro_{name}"


def _om_num(v) -> str:
    """Numbers in exposition format: integral floats print as ints."""
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def render_openmetrics(merged: dict, progress: dict | None = None) -> str:
    """OpenMetrics text exposition of a merged recorder snapshot.

    ``merged`` is ``MetricsRegistry.merged().snapshot()`` (or the
    ``"merged"`` entry of a ``metrics.json``); ``progress`` carries the
    engine coordinates (generation, evaluations, best, elapsed_s, plus
    optional per-worker ``heartbeats`` / ``workers_done`` lists).
    Output is deterministic: progress first, then counters, gauges and
    histograms, each sorted by name, terminated by ``# EOF``.
    """
    lines: list[str] = []

    def family(name: str, kind: str) -> None:
        lines.append(f"# TYPE {name} {kind}")

    progress = progress or {}
    scalar_progress = [
        ("generation", "repro_run_generation"),
        ("evaluations", "repro_run_evaluations"),
        ("best", "repro_run_best_fitness"),
        ("elapsed_s", "repro_run_elapsed_seconds"),
    ]
    for key, name in scalar_progress:
        v = progress.get(key)
        if v is None:
            continue
        family(name, "gauge")
        lines.append(f"{name} {_om_num(v)}")
    heartbeats = progress.get("heartbeats")
    if heartbeats:
        family("repro_worker_heartbeat", "counter")
        for w, hb in enumerate(heartbeats):
            lines.append(f'repro_worker_heartbeat_total{{worker="{w}"}} {_om_num(hb)}')
    done = progress.get("workers_done")
    if done:
        family("repro_worker_done", "gauge")
        for w, d in enumerate(done):
            lines.append(f'repro_worker_done{{worker="{w}"}} {_om_num(bool(d))}')

    for key in sorted(merged.get("counters", {})):
        name = _om_name(key)
        family(name, "counter")
        lines.append(f"{name}_total {_om_num(merged['counters'][key])}")

    for key in sorted(merged.get("gauges", {})):
        if "{" in key:  # per-thread labeled copies from the merge; skip
            continue
        name = _om_name(key)
        family(name, "gauge")
        lines.append(f"{name} {_om_num(merged['gauges'][key])}")

    for key in sorted(merged.get("histograms", {})):
        h = merged["histograms"][key]
        name = _om_name(key)
        family(name, "histogram")
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{_om_num(float(bound))}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{name}_sum {_om_num(float(h['sum']))}")
        lines.append(f"{name}_count {h['count']}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- the publisher --------------------------------------------------------

class LivePublisher:
    """Background snapshot publisher for one observed run.

    Parameters
    ----------
    observer:
        The run's :class:`~repro.obs.observer.Observer` (registry, meta
        and clock source).
    progress:
        Zero-argument callable returning the engine-progress dict; read
        on the publisher thread, so it must be safe to call lock-free
        (every engine's provider only reads arrays and counters).
    out:
        Directory receiving ``live.json`` (None: HTTP only).
    port:
        TCP port for the OpenMetrics endpoint (None: file only; 0 picks
        an ephemeral port, exposed as :attr:`port` after :meth:`start`).
    every_s:
        Publish cadence in seconds.
    """

    def __init__(
        self,
        observer,
        progress: Callable[[], dict] | None = None,
        out=None,
        port: int | None = None,
        every_s: float = 0.5,
    ):
        if every_s <= 0:
            raise ValueError(f"every_s must be positive, got {every_s}")
        self.observer = observer
        self.progress = progress
        self.out = Path(out) if out is not None else None
        self.port = port
        self.every_s = float(every_s)
        self.n_published = 0
        self._latest: tuple[bytes, bytes] | None = None  # (json, openmetrics)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._server = None
        self._server_thread: threading.Thread | None = None

    # -- snapshot ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Compose one live snapshot (pure read; callable from tests)."""
        obs = self.observer
        progress = dict(self.progress()) if self.progress is not None else {}
        progress.setdefault("elapsed_s", obs.elapsed())
        t = progress["elapsed_s"]
        evals = progress.get("evaluations")
        if evals is not None and t and "evals_per_s" not in progress:
            progress["evals_per_s"] = evals / t
        meta = {
            k: obs.meta[k]
            for k in ("engine", "instance", "n_threads", "seed")
            if k in obs.meta
        }
        snap = {
            "updated_t_s": obs.elapsed(),
            "meta": meta,
            "progress": progress,
            "metrics": obs.registry.merged().snapshot(),
        }
        griddyn = getattr(obs, "griddyn", None)
        if griddyn is not None and griddyn.latest is not None:
            snap["grid"] = griddyn.latest
        resources = getattr(obs, "resources", None)
        if resources is not None and resources.latest is not None:
            snap["resources"] = dict(resources.latest)
            snap["resources"].update(resources.peaks)
        return snap

    def publish(self) -> dict:
        """Snapshot + atomically replace ``live.json`` + refresh HTTP."""
        snap = self.snapshot()
        self._latest = (
            json.dumps(snap).encode("utf-8"),
            render_openmetrics(snap["metrics"], snap["progress"]).encode("utf-8"),
        )
        if self.out is not None:
            self.out.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self.out / "live.json", snap)
        self.n_published += 1
        return snap

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "LivePublisher":
        """Publish once, bind the HTTP server (if requested), start the
        cadence thread."""
        self.publish()
        if self.port is not None:
            self._start_server()

        def loop() -> None:
            while not self._stop.wait(self.every_s):
                self.publish()

        self._stop.clear()
        self._thread = threading.Thread(target=loop, name="obs-live", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the cadence thread and server; publish one final
        snapshot so ``live.json`` matches the finalized bundle."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._server is not None:
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server.server_close()
            self._server = None
            self._server_thread = None
        self.publish()

    def _start_server(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        publisher = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib naming)
                latest = publisher._latest
                if latest is None:
                    self.send_error(503, "no snapshot yet")
                    return
                body_json, body_om = latest
                if self.path in ("/metrics", "/metrics/"):
                    body, ctype = body_om, OPENMETRICS_CONTENT_TYPE
                elif self.path in ("/", "/live.json"):
                    body, ctype = body_json, "application/json; charset=utf-8"
                else:
                    self.send_error(404, "try /metrics or /live.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", self.port), Handler)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="obs-live-http", daemon=True
        )
        self._server_thread.start()


# -- terminal watch view --------------------------------------------------

def render_watch(snap: dict) -> str:
    """One screenful of live-run state from a ``live.json`` snapshot."""
    meta = snap.get("meta", {})
    progress = snap.get("progress", {})
    counters = snap.get("metrics", {}).get("counters", {})
    lines = []
    head = " ".join(
        f"{k}={meta[k]}" for k in ("engine", "instance", "n_threads") if k in meta
    )
    lines.append(f"live run  {head}".rstrip())
    lines.append(f"updated   {snap.get('updated_t_s', 0.0):.1f}s into the run")

    def num(v, digits=2):
        return f"{v:,.{digits}f}" if isinstance(v, float) else f"{v:,}"

    for key, label in (
        ("generation", "generation"),
        ("evaluations", "evaluations"),
        ("best", "best fitness"),
        ("evals_per_s", "evals/s"),
    ):
        if key in progress and progress[key] is not None:
            lines.append(f"{label:<12}: {num(progress[key])}")
    hb = progress.get("heartbeats")
    if hb:
        done = progress.get("workers_done") or [0] * len(hb)
        stalls = counters.get("watchdog.stalls", 0)
        marks = []
        for w, beat in enumerate(hb):
            state = "done" if done[w] else "live"
            marks.append(f"w{w}:{int(beat)} ({state})")
        lines.append(f"heartbeats  : {'  '.join(marks)}")
        if stalls:
            lines.append(f"stalls      : {int(stalls)} (see watchdog.* metrics)")
    for key, label in (
        ("breeding.evaluations", "evals counted"),
        ("breeding.replacements", "replacements"),
        ("improvements", "improvements"),
    ):
        if key in counters:
            lines.append(f"{label:<12}: {int(counters[key]):,}")
    res = snap.get("resources")
    if res:
        parts = []
        for key, label, unit in (
            ("rss_mb", "rss", "MB"),
            ("cpu_s", "cpu", "s"),
            ("fds", "fds", ""),
            ("shm_mb", "shm", "MB"),
        ):
            if key in res:
                parts.append(f"{label} {res[key]:g}{unit}")
        if "peak_rss_mb" in res:
            parts.append(f"peak rss {res['peak_rss_mb']:g}MB")
        lines.append(f"resources   : {'  '.join(parts)}")
    return "\n".join(lines)


def watch(
    bundle_dir,
    interval_s: float = 1.0,
    once: bool = False,
    out=None,
    clear: bool = True,
) -> int:
    """``repro obs watch <dir>``: render ``live.json`` in place.

    Loops until interrupted (Ctrl-C) unless ``once``; returns a CLI
    exit code.  ``out`` defaults to ``sys.stdout`` (injectable for
    tests).
    """
    import sys

    stream = sys.stdout if out is None else out
    path = Path(bundle_dir) / "live.json"
    try:
        while True:
            if path.exists():
                try:
                    snap = json.loads(path.read_text(encoding="utf-8"))
                    body = render_watch(snap)
                except (json.JSONDecodeError, OSError):
                    body = f"(unreadable snapshot at {path}; retrying)"
            else:
                body = f"(waiting for {path})"
            if clear and not once:
                stream.write("\x1b[2J\x1b[H")
            stream.write(body + "\n")
            stream.flush()
            if once:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0

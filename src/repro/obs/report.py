"""Rendering of a telemetry bundle: terminal text and markdown.

Both renderers take the same inputs — the ``meta`` dict, a
``MetricsRegistry.snapshot()``, the sampler's row list and (optionally)
the grid-dynamics rows — so they work on a live
:class:`~repro.obs.observer.Observer` *and* on a bundle reloaded from
disk (:func:`load_bundle` + :func:`repro.obs.dynamics.load_grid_rows`).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["render_terminal", "render_markdown", "load_bundle"]

#: histogram metric suffix → phase display name, in report order.
_PHASE_ORDER = [
    ("phase.select_us", "selection"),
    ("phase.crossover_us", "crossover"),
    ("phase.mutate_us", "mutation"),
    ("phase.ls_us", "local search"),
    ("phase.fitness_us", "fitness"),
    ("sweep_us", "block sweep"),
    ("lock.read_wait_us", "lock read wait"),
    ("lock.write_wait_us", "lock write wait"),
]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width table (self-contained, no experiments import)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _fmt(v, digits: int = 2) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:,.{digits}f}"
    return f"{v:,}" if isinstance(v, int) else str(v)


def _phase_rows(merged: dict) -> list[list[str]]:
    rows = []
    hists = merged.get("histograms", {})
    for key, label in _PHASE_ORDER:
        h = hists.get(key)
        if h is None or not h.get("count"):
            continue
        rows.append(
            [
                label,
                _fmt(h["count"]),
                _fmt(h["mean"]),
                _fmt(h["p50"]),
                _fmt(h["p99"]),
                _fmt(h["sum"] / 1e6, 3),
            ]
        )
    return rows


def _thread_rows(per_thread: dict) -> list[list[str]]:
    rows = []
    for name, snap in per_thread.items():
        if name == "merged":
            continue
        c = snap.get("counters", {})
        rows.append(
            [
                name,
                _fmt(int(c.get("breeding.evaluations", c.get("evaluations", 0)))),
                _fmt(int(c.get("sweeps", 0))),
                _fmt(int(c.get("boundary_evals", 0))),
                _fmt(int(c.get("breeding.replacements", 0))),
                _fmt(
                    c.get("lock.read_wait_s_total", 0.0)
                    + c.get("lock.write_wait_s_total", 0.0),
                    4,
                ),
            ]
        )
    return rows


def _sections(meta: dict, metrics: dict, rows: list[dict], grid_rows: list[dict] | None = None):
    """The report content as (title, body) sections, format-agnostic."""
    merged = metrics.get("merged", {})
    counters = merged.get("counters", {})
    sections: list[tuple[str, str]] = []

    head = []
    result = meta.get("result", {})
    for key in ("engine", "instance", "n_threads", "command"):
        if key in meta:
            head.append(f"{key}: {meta[key]}")
    for key in ("best_fitness", "evaluations", "generations", "elapsed_s"):
        if key in result:
            head.append(f"{key}: {_fmt(result[key])}")
    sections.append(("Run", "\n".join(head) or "(no metadata)"))

    phase = _phase_rows(merged)
    if phase:
        sections.append(
            (
                "Phase timings (per call, merged over threads)",
                _table(["phase", "calls", "mean µs", "p50 µs", "p99 µs", "total s"], phase),
            )
        )

    threads = _thread_rows(metrics.get("per_thread", {}))
    if threads:
        sections.append(
            (
                "Per-thread activity",
                _table(
                    ["thread", "evals", "sweeps", "boundary evals", "replacements", "lock wait s"],
                    threads,
                ),
            )
        )

    stalls = counters.get("watchdog.stalls", 0.0)
    if stalls:
        recoveries = counters.get("watchdog.recoveries", 0.0)
        sections.append(
            (
                "Watchdog",
                f"stall events: {_fmt(int(stalls))}\n"
                f"recoveries: {_fmt(int(recoveries))}\n"
                f"unrecovered at exit: {_fmt(int(stalls - recoveries))}",
            )
        )

    tried = counters.get("ls.moves_tried", 0.0)
    if tried:
        accepted = counters.get("ls.moves_accepted", 0.0)
        sections.append(
            (
                "Local search",
                f"moves tried: {_fmt(int(tried))}\n"
                f"moves accepted: {_fmt(int(accepted))}\n"
                f"acceptance rate: {100.0 * accepted / tried:.1f}%",
            )
        )

    from repro.obs.dynamics import attribution_summary

    attribution = attribution_summary(counters)
    if attribution:
        sections.append(
            (
                "Operator attribution",
                _table(
                    ["operator", "attempts", "successes", "success rate", "fitness delta"],
                    [
                        [
                            a["phase"],
                            _fmt(a["attempts"]),
                            _fmt(a["successes"]),
                            f"{100.0 * a['success_rate']:.1f}%",
                            _fmt(a["delta"]),
                        ]
                        for a in attribution
                    ],
                ),
            )
        )

    if grid_rows:
        from repro.obs.dynamics import estimate_takeover_generation

        first, last = grid_rows[0], grid_rows[-1]
        takeover_gen = estimate_takeover_generation(grid_rows)
        body = [
            f"snapshots: {len(grid_rows)} (grid {first['shape'][0]}x{first['shape'][1]})",
            f"takeover fraction: {_fmt(first['takeover_fraction'], 3)} -> "
            f"{_fmt(last['takeover_fraction'], 3)}",
            f"fitness entropy: {_fmt(first['fitness_entropy'], 3)} -> "
            f"{_fmt(last['fitness_entropy'], 3)}",
            "takeover generation (>=50% of grid): "
            + (_fmt(takeover_gen) if takeover_gen is not None else "not reached"),
        ]
        sections.append(("Grid dynamics", "\n".join(body)))

    if rows:
        first, last = rows[0], rows[-1]
        body = [
            f"rows: {len(rows)}",
            f"best: {_fmt(first.get('best'))} -> {_fmt(last.get('best'))}",
            f"mean: {_fmt(first.get('mean'))} -> {_fmt(last.get('mean'))}",
        ]
        if last.get("entropy") is not None:
            body.append(f"entropy: {_fmt(first.get('entropy'), 3)} -> {_fmt(last.get('entropy'), 3)}")
        if last.get("evals_per_s"):
            body.append(f"final evals/s: {_fmt(last['evals_per_s'], 0)}")
        sections.append(("Convergence time series", "\n".join(body)))
    return sections


def render_terminal(
    meta: dict, metrics: dict, rows: list[dict], grid_rows: list[dict] | None = None
) -> str:
    """Plain-text report for the CLI."""
    parts = []
    for title, body in _sections(meta, metrics, rows, grid_rows):
        parts.append(f"== {title} ==\n{body}")
    return "\n\n".join(parts)


def render_markdown(
    meta: dict, metrics: dict, rows: list[dict], grid_rows: list[dict] | None = None
) -> str:
    """Markdown report written into the bundle as ``report.md``."""
    parts = ["# Run telemetry report"]
    for title, body in _sections(meta, metrics, rows, grid_rows):
        if "\n" in body and "  " in body:  # tables become code blocks
            parts.append(f"## {title}\n\n```\n{body}\n```")
        else:
            parts.append(f"## {title}\n\n{body}")
    return "\n\n".join(parts) + "\n"


def load_bundle(path) -> tuple[dict, dict, list[dict]]:
    """Reload ``(meta, metrics, timeseries_rows)`` from a bundle dir."""
    root = Path(path)
    meta = json.loads((root / "meta.json").read_text(encoding="utf-8"))
    metrics = json.loads((root / "metrics.json").read_text(encoding="utf-8"))
    rows = [
        json.loads(line)
        for line in (root / "timeseries.jsonl").read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    return meta, metrics, rows

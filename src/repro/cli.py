"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``instances``   — list the twelve benchmark instances and metadata;
* ``heuristics``  — run every constructive heuristic on one instance;
* ``solve``       — run PA-CGA (any engine) on an instance
  (``run`` is an alias); ``--obs-out DIR`` collects a full telemetry
  bundle (metrics.json, trace.json, timeseries.jsonl, report.md),
  ``--obs-live PORT`` additionally serves live OpenMetrics/JSON
  snapshots while the run executes, and ``--obs-stall-deadline S``
  arms the worker watchdog;
* ``obs``         — live/longitudinal telemetry tooling: ``watch`` a
  running bundle, ``ingest`` finished bundles into a JSONL run
  history, ``history``/``diff`` past runs, and ``check`` a run against
  a baseline with regression gates (nonzero exit on regression);
* ``generate``    — generate an ETC instance file;
* ``speedup`` / ``operators`` / ``comparison`` / ``convergence`` —
  run the paper-artifact harnesses at CLI-chosen budgets.

Every command prints plain text; ``solve --out`` additionally writes
the run result as JSON (reloadable with ``repro.util.load_result``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PA-CGA for grid scheduling (Pinel, Dorronsoro & Bouvry 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("instances", help="list the benchmark instances")

    p = sub.add_parser("heuristics", help="run every heuristic on an instance")
    p.add_argument("--instance", default="u_i_hihi.0")
    p.add_argument("--lp-bound", action="store_true", help="also compute the LP lower bound")

    for name, help_ in (
        ("solve", "run PA-CGA on an instance"),
        ("run", "alias for solve"),
    ):
        p = sub.add_parser(
            name,
            help=help_,
            epilog=(
                "engine aliases: pacga-sim = sim, pacga-threads = threads, "
                "pacga-processes = processes (the paper's PA-CGA engine on "
                "its three substrates)"
            ),
        )
        p.add_argument("--instance", default="u_i_hihi.0")
        p.add_argument(
            "--engine",
            choices=[
                "sim",
                "async",
                "sync",
                "vectorized",
                "threads",
                "processes",
                # aliases spelling out the paper's engine
                "pacga-sim",
                "pacga-threads",
                "pacga-processes",
            ],
            default="sim",
        )
        p.add_argument("--threads", type=int, default=3)
        p.add_argument("--crossover", choices=["opx", "tpx", "uniform"], default="tpx")
        p.add_argument(
            "--fitness", choices=["makespan", "makespan+flowtime"], default="makespan"
        )
        p.add_argument("--ls-iters", type=int, default=10)
        p.add_argument("--evals", type=int, default=None, help="evaluation budget")
        p.add_argument(
            "--vtime", type=float, default=None, help="virtual seconds (sim engine)"
        )
        p.add_argument("--wall", type=float, default=None, help="wall-clock seconds")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--gantt", action="store_true", help="print the best schedule")
        p.add_argument("--out", default=None, help="write the run result as JSON")
        p.add_argument(
            "--obs-out",
            default=None,
            help="collect run telemetry and write the bundle to this directory",
        )
        # the --obs-* defaults are None sentinels so "flag given without
        # --obs-out" is detectable and rejected with a clear error
        p.add_argument(
            "--obs-trace",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="include a Chrome trace_event timeline in the bundle (default: on)",
        )
        p.add_argument(
            "--obs-sample-every",
            type=int,
            default=None,
            metavar="EVALS",
            help="time-series sampling cadence in evaluations (default: 256)",
        )
        p.add_argument(
            "--obs-live",
            type=int,
            default=None,
            metavar="PORT",
            help=(
                "publish live.json into the bundle while running and serve "
                "/metrics (OpenMetrics) + /live.json on this port (0 = ephemeral)"
            ),
        )
        p.add_argument(
            "--obs-stall-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help=(
                "arm the worker watchdog: report a stall event when a worker's "
                "heartbeat does not advance for this long"
            ),
        )

    p = sub.add_parser("obs", help="live + longitudinal telemetry tooling")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("watch", help="render a bundle's live.json in place")
    q.add_argument("bundle", help="telemetry bundle directory")
    q.add_argument("--interval", type=float, default=1.0, help="refresh seconds")
    q.add_argument("--once", action="store_true", help="render one frame and exit")

    q = obs_sub.add_parser(
        "ingest", help="append a finished bundle's summary to a run history"
    )
    q.add_argument("bundle", help="telemetry bundle directory")
    q.add_argument("--history", required=True, help="JSONL run registry (appended)")

    q = obs_sub.add_parser("history", help="list a JSONL run registry")
    q.add_argument("file")
    q.add_argument("--limit", type=int, default=None, help="show only the newest N runs")

    q = obs_sub.add_parser(
        "diff", help="compare two runs (bundle dirs, summary .json, or history .jsonl)"
    )
    q.add_argument("a")
    q.add_argument("b")

    q = obs_sub.add_parser(
        "check",
        help="regression gate against a baseline; exits nonzero on regression",
    )
    q.add_argument(
        "run", help="run under test: bundle dir, summary .json, or history .jsonl"
    )
    q.add_argument(
        "--baseline",
        required=True,
        help="baseline: summary .json / history .jsonl / BENCH_throughput.json",
    )
    q.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed makespan (quality) regression in percent",
    )
    q.add_argument(
        "--throughput-tolerance",
        type=float,
        default=None,
        metavar="PCT",
        help="allowed evals/s drop in percent (default: same as --tolerance)",
    )

    p = sub.add_parser("generate", help="generate an ETC instance file")
    p.add_argument("--ntasks", type=int, default=512)
    p.add_argument("--nmachines", type=int, default=16)
    p.add_argument("--consistency", choices=["c", "i", "s"], default="i")
    p.add_argument("--task-het", default="hi")
    p.add_argument("--machine-het", default="hi")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)

    p = sub.add_parser("speedup", help="regenerate Fig. 4 (speedup)")
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--vtime", type=float, default=0.1)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("operators", help="regenerate Fig. 5 (operator study)")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--vtime", type=float, default=0.05)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=5)

    p = sub.add_parser("comparison", help="regenerate Table 2 (vs baselines)")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--vtime", type=float, default=0.05)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--protocol", choices=["evals", "time"], default="evals")

    p = sub.add_parser("convergence", help="regenerate Fig. 6 (convergence)")
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--vtime", type=float, default=0.1)
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=23)

    p = sub.add_parser("quality", help="optimality gaps vs the LP bound")
    p.add_argument("--instance", action="append", default=None)
    p.add_argument("--evals", type=int, default=5000)
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser(
        "calibrate", help="measure this machine's breeding-step costs"
    )
    p.add_argument("--instance", default="u_c_hihi.0")
    p.add_argument("--samples", type=int, default=2000)

    p = sub.add_parser(
        "reproduce", help="regenerate every paper artifact into a directory"
    )
    p.add_argument("--out", default="reproduction")
    p.add_argument("--scale", type=float, default=1.0, help="budget multiplier")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="also write per-cell observability bundles under <out>/telemetry/",
    )

    return parser


def _cmd_instances() -> int:
    from repro.etc import BENCHMARK_INSTANCES
    from repro.experiments import ascii_table

    rows = [
        [
            info.name,
            info.consistency.name.lower(),
            info.task_het,
            info.machine_het,
            f"{info.pj_min:g}",
            f"{info.pj_max:g}",
        ]
        for info in BENCHMARK_INSTANCES.values()
    ]
    print(
        ascii_table(
            ["instance", "consistency", "task het", "machine het", "pj min", "pj max"],
            rows,
        )
    )
    return 0


def _cmd_heuristics(args) -> int:
    from repro.etc import load_benchmark
    from repro.experiments import ascii_table
    from repro.heuristics import HEURISTICS
    from repro.scheduling.bounds import lp_lower_bound

    inst = load_benchmark(args.instance)
    rng = np.random.default_rng(0)
    rows = []
    for name, fn in HEURISTICS.items():
        rows.append([name, f"{fn(inst, rng).makespan():,.2f}"])
    print(f"{inst}\n")
    print(ascii_table(["heuristic", "makespan"], rows))
    if args.lp_bound:
        print(f"\nLP lower bound: {lp_lower_bound(inst):,.2f}")
    return 0


def _cmd_solve(args) -> int:
    from repro.cga import AsyncCGA, CGAConfig, StopCondition, SyncCGA, VectorizedSyncCGA
    from repro.etc import load_benchmark
    from repro.parallel import ProcessPACGA, SimulatedPACGA, ThreadedPACGA

    if args.obs_out is None:
        stray = [
            flag
            for flag, value in (
                ("--obs-trace/--no-obs-trace", args.obs_trace),
                ("--obs-sample-every", args.obs_sample_every),
                ("--obs-live", args.obs_live),
                ("--obs-stall-deadline", args.obs_stall_deadline),
            )
            if value is not None
        ]
        if stray:
            print(
                f"error: {', '.join(stray)} configure the telemetry bundle and "
                "require --obs-out DIR (no bundle directory was given)",
                file=sys.stderr,
            )
            return 2

    inst = load_benchmark(args.instance)
    engine_name = {
        "pacga-sim": "sim",
        "pacga-threads": "threads",
        "pacga-processes": "processes",
    }.get(args.engine, args.engine)
    config = CGAConfig(
        n_threads=args.threads if engine_name in ("sim", "threads", "processes") else 1,
        crossover=args.crossover,
        fitness=args.fitness,
        ls_iterations=args.ls_iters,
    )
    bounds = {}
    if args.evals is not None:
        bounds["max_evaluations"] = args.evals
    if args.vtime is not None:
        bounds["virtual_time"] = args.vtime
    if args.wall is not None:
        bounds["wall_time_s"] = args.wall
    if not bounds:
        bounds["max_evaluations"] = 5000
    stop = StopCondition(**bounds)

    obs = None
    if args.obs_out is not None:
        from repro.obs import Observer

        obs = Observer(
            out=args.obs_out,
            trace=True if args.obs_trace is None else args.obs_trace,
            sample_every_evals=(
                256 if args.obs_sample_every is None else args.obs_sample_every
            ),
            live=args.obs_live is not None,
            live_port=args.obs_live,
            stall_deadline_s=args.obs_stall_deadline,
        )
        obs.meta.update(
            {"instance": inst.name, "engine": engine_name, "seed": args.seed}
        )
        if args.obs_live is not None:
            print(f"live telemetry : {args.obs_out}/live.json", flush=True)
            if args.obs_live:
                print(
                    f"live endpoint  : http://127.0.0.1:{args.obs_live}/metrics "
                    "(OpenMetrics) and /live.json",
                    flush=True,
                )

    if engine_name == "sim":
        engine = SimulatedPACGA(inst, config, seed=args.seed, obs=obs)
    elif engine_name == "async":
        engine = AsyncCGA(inst, config, rng=args.seed, obs=obs)
    elif engine_name == "sync":
        engine = SyncCGA(inst, config, rng=args.seed, obs=obs)
    elif engine_name == "vectorized":
        engine = VectorizedSyncCGA(inst, config, rng=args.seed, obs=obs)
    elif engine_name == "threads":
        engine = ThreadedPACGA(inst, config, seed=args.seed, obs=obs)
    else:
        engine = ProcessPACGA(inst, config, seed=args.seed, obs=obs)

    result = engine.run(stop)
    print(f"instance      : {inst.name}")
    print(f"engine        : {engine_name} ({config.n_threads} thread(s))")
    print(f"best makespan : {result.best_fitness:,.2f}")
    print(f"evaluations   : {result.evaluations:,}")
    print(f"generations   : {result.generations}")
    if obs is not None:
        paths = obs.finalize()
        print()
        print(obs.summary())
        if paths:
            print(f"telemetry bundle: {args.obs_out}")
            for kind, path in sorted(paths.items()):
                print(f"  {kind:<10} {path}")
    if args.gantt:
        from repro.util import render_gantt

        print()
        print(render_gantt(result.best_schedule(inst)))
    if args.out:
        from repro.util import save_result

        save_result(result, args.out)
        print(f"result written to {args.out}")
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command == "watch":
        from repro.obs.live import watch

        return watch(args.bundle, interval_s=args.interval, once=args.once)

    from repro.obs import history as hist

    if args.obs_command == "ingest":
        row = hist.append_history(args.history, hist.summarize_bundle(args.bundle))
        print(f"recorded {row['run_id']} -> {args.history}")
        print(hist.render_history([row]))
        return 0

    if args.obs_command == "history":
        rows = hist.load_history(args.file)
        print(hist.render_history(rows, limit=args.limit))
        return 0

    if args.obs_command == "diff":
        a = hist.summarize_source(args.a)
        b = hist.summarize_source(args.b)
        print(hist.render_diff(a, b))
        return 0

    if args.obs_command == "check":
        current = hist.summarize_source(args.run)
        baseline = hist.load_baseline(args.baseline, row=current)
        problems = hist.check_row(
            current,
            baseline,
            tolerance_pct=args.tolerance,
            throughput_tolerance_pct=args.throughput_tolerance,
        )
        print(
            f"run {current.get('run_id', '?')} vs baseline "
            f"{baseline.get('run_id', args.baseline)}"
        )
        for key in ("best_fitness", "evals_per_s"):
            cur, base = current.get(key), baseline.get(key)
            if cur is not None and base is not None:
                print(f"  {key:<14}: {cur:,.2f} (baseline {base:,.2f})")
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    raise AssertionError(f"unhandled obs command {args.obs_command!r}")  # pragma: no cover


def _cmd_generate(args) -> int:
    from repro.etc import make_instance, save_instance

    inst = make_instance(
        args.ntasks,
        args.nmachines,
        consistency=args.consistency,
        task_het=args.task_het,
        machine_het=args.machine_het,
        seed=args.seed,
    )
    save_instance(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


def _cmd_speedup(args) -> int:
    from repro.experiments import speedup_experiment

    result = speedup_experiment(
        instance=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(result.table())
    return 0


def _cmd_operators(args) -> int:
    from repro.experiments import operators_experiment

    result = operators_experiment(
        instances=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(result.table())
    return 0


def _cmd_comparison(args) -> int:
    from repro.experiments import comparison_experiment

    result = comparison_experiment(
        instances=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
        protocol=args.protocol,
    )
    print(result.table())
    return 0


def _cmd_convergence(args) -> int:
    from repro.experiments import convergence_experiment
    from repro.experiments.report import ascii_chart

    result = convergence_experiment(
        instance=args.instance,
        virtual_time=args.vtime,
        n_runs=args.runs,
        seed=args.seed,
    )
    print(
        ascii_chart(
            {f"{n} thread(s)": result.curves[n].tolist() for n in sorted(result.curves)},
            x_label="generations (common grid)",
            y_label="mean population makespan",
        )
    )
    for n in sorted(result.curves):
        print(
            f"{n} thread(s): final={result.final_mean[n]:,.0f} "
            f"gens={result.generations_reached[n]:.0f}"
        )
    print(f"best thread count: {result.best_thread_count()}")
    return 0


def _cmd_quality(args) -> int:
    from repro.experiments import quality_experiment

    result = quality_experiment(
        instances=args.instance, max_evaluations=args.evals, seed=args.seed
    )
    print(result.table())
    print(f"\nmean PA-CGA gap above LP: {100 * result.mean_gap():.2f}%")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.etc import load_benchmark
    from repro.parallel import XEON_E5440, measure_cost_model

    inst = load_benchmark(args.instance)
    model = measure_cost_model(inst, samples=args.samples)
    print(f"measured on this machine ({args.samples} samples, {inst.name}):")
    print(f"  t_breed   : {model.t_breed:8.2f} us  (paper model: {XEON_E5440.t_breed})")
    print(f"  t_ls_iter : {model.t_ls_iter:8.2f} us  (paper model: {XEON_E5440.t_ls_iter})")
    print(f"  t_lock    : {model.t_lock:8.2f} us  (paper model: {XEON_E5440.t_lock})")
    print("contention/cache terms inherited from the paper calibration;")
    print("pass the model to SimulatedPACGA(cost_model=...) to rebuild Fig. 4.")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.experiments import run_campaign
    from repro.rng import DEFAULT_SEED

    report = run_campaign(
        args.out,
        scale=args.scale,
        n_runs=args.runs,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        telemetry=args.telemetry,
    )
    print(report.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "instances":
        return _cmd_instances()
    if args.command == "heuristics":
        return _cmd_heuristics(args)
    if args.command in ("solve", "run"):
        return _cmd_solve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "speedup":
        return _cmd_speedup(args)
    if args.command == "operators":
        return _cmd_operators(args)
    if args.command == "comparison":
        return _cmd_comparison(args)
    if args.command == "convergence":
        return _cmd_convergence(args)
    if args.command == "quality":
        return _cmd_quality(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

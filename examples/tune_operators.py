#!/usr/bin/env python
"""Mini Figure 5: which crossover / local-search depth should you use?

Runs the paper's four operator variants (opx/5, tpx/5, opx/10, tpx/10)
on one instance with several independent runs and reports the notched
statistics the paper bases its conclusion on ("tpx/10 performs better
than opx/5 with statistical significance").

Run:  python examples/tune_operators.py [instance] [n_runs]
"""

import sys

from repro.experiments import ascii_table, operators_experiment
from repro.experiments.operators_study import DEFAULT_VARIANTS, variant_label


def main(instance: str = "u_i_hihi.0", n_runs: int = 8) -> None:
    print(f"operator study on {instance}, {n_runs} runs per variant\n")
    result = operators_experiment(
        instances=[instance],
        variants=DEFAULT_VARIANTS,
        n_threads=3,
        virtual_time=0.03,
        n_runs=n_runs,
        seed=7,
    )

    rows = []
    for crossover, iters in DEFAULT_VARIANTS:
        label = variant_label(crossover, iters)
        s = result.stats(instance, label)
        rows.append(
            [
                label,
                f"{s.mean:,.0f}",
                f"{s.median:,.0f}",
                f"[{s.notch_lo:,.0f}, {s.notch_hi:,.0f}]",
                f"{s.std:,.0f}",
            ]
        )
    print(ascii_table(["variant", "mean", "median", "median notch", "std"], rows))

    best = result.best_variant(instance)
    print(f"\nbest variant by mean makespan: {best}")

    a, b = "tpx/10", "opx/5"
    p = result.p_value(instance, a, b)
    sig = result.significantly_better(instance, a, b)
    print(f"{a} vs {b}: Mann-Whitney p = {p:.4f}; "
          f"notches {'do NOT overlap -> significant' if sig else 'overlap -> inconclusive at this budget'}")
    print("\n(The paper runs 100 x 90 s; raise n_runs/virtual_time to approach that.)")


if __name__ == "__main__":
    inst = sys.argv[1] if len(sys.argv) > 1 else "u_i_hihi.0"
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(inst, runs)

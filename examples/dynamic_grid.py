#!/usr/bin/env python
"""A day in a dynamic grid: batches arrive, machines come and go.

The paper's problem description (§2.1) is dynamic — users submit
independent tasks continuously, resources join and drop, and every
rescheduling round starts from non-zero machine ready times.  This
example replays such a timeline with two policies: the greedy MCT
rescheduler and a PA-CGA-based one, and reports makespan, flowtime and
migrations for both.

Run:  python examples/dynamic_grid.py
"""

import numpy as np

from repro.dynamic import (
    BatchArrival,
    DynamicGridSimulator,
    MachineJoin,
    MachineLeave,
    greedy_rescheduler,
)
from repro.dynamic.simulator import pacga_rescheduler
from repro.experiments import ascii_table


def build_timeline(seed: int = 3):
    """Morning batches, a lunchtime node failure, afternoon reinforcements."""
    rng = np.random.default_rng(seed)
    events = [
        BatchArrival(time=0.0, workloads=tuple(rng.uniform(200, 2000, size=60))),
        BatchArrival(time=50.0, workloads=tuple(rng.uniform(200, 2000, size=40))),
        MachineLeave(time=80.0, machine_id=2),          # node crashes mid-run
        BatchArrival(time=120.0, workloads=tuple(rng.uniform(500, 4000, size=50))),
        MachineJoin(time=150.0, speed=40.0),            # a fast node joins
        MachineJoin(time=150.0, speed=40.0),
        BatchArrival(time=200.0, workloads=tuple(rng.uniform(200, 1500, size=30))),
    ]
    return events


def main() -> None:
    speeds = [10.0, 14.0, 9.0, 22.0]  # the initial grid
    print(f"initial grid: {len(speeds)} machines, speeds {speeds}")
    print("timeline: 4 batches (180 tasks), 1 node failure, 2 fast joins\n")

    rows = []
    for name, policy in [
        ("mct (greedy)", greedy_rescheduler),
        ("pa-cga (2k evals/event)", pacga_rescheduler(max_evaluations=2000)),
    ]:
        sim = DynamicGridSimulator(speeds, policy, seed=0)
        stats = sim.run(build_timeline())
        rows.append(
            [
                name,
                f"{stats.makespan:,.1f}",
                f"{stats.mean_flowtime:,.1f}",
                stats.completed,
                stats.migrations,
                stats.restarted,
            ]
        )

    print(
        ascii_table(
            ["policy", "makespan", "mean flowtime", "done", "migrations", "restarts"],
            rows,
        )
    )
    print(
        "\nMigrations are tasks replanned onto a different machine before"
        "\nstarting; restarts are tasks that lost work to the node failure."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scheduling a Monte-Carlo parameter-sweep campaign on a grid.

The paper motivates batch scheduling with parameter-sweep applications
(§2.1): a scientist submits hundreds of independent simulation tasks —
the same code, different parameters — to a computational grid whose
machines differ in speed, and some machines are already busy (non-zero
ready times).

This example builds such a campaign synthetically: task workloads are
drawn around a few "scenario sizes" (small/medium/large sweeps), the
grid mixes fast and slow machines, and several machines start busy.
It then compares every constructive heuristic with PA-CGA and reports
makespan, flowtime and utilization.

Run:  python examples/parameter_sweep_campaign.py
"""

import numpy as np

from repro import CGAConfig, SimulatedPACGA, StopCondition
from repro.etc.model import ETCMatrix
from repro.heuristics import HEURISTICS
from repro.scheduling import flowtime, utilization
from repro.experiments import ascii_table


def build_campaign(seed: int = 7) -> ETCMatrix:
    """240 sweep tasks on a 12-machine grid with busy machines."""
    rng = np.random.default_rng(seed)
    # three sweep batches with different per-task workloads (MI)
    workloads = np.concatenate(
        [
            rng.lognormal(mean=9.0, sigma=0.3, size=120),   # small runs
            rng.lognormal(mean=10.5, sigma=0.3, size=80),   # medium runs
            rng.lognormal(mean=12.0, sigma=0.4, size=40),   # long tails
        ]
    )
    # machine speeds in MIPS: 4 fast nodes, 6 mid, 2 old donations
    speeds = np.concatenate(
        [
            rng.uniform(900, 1100, size=4),
            rng.uniform(400, 600, size=6),
            rng.uniform(80, 120, size=2),
        ]
    )
    etc = workloads[:, None] / speeds[None, :]
    # a few machines are still finishing last night's batch
    ready = np.zeros(speeds.size)
    ready[1] = etc.mean() * 4
    ready[5] = etc.mean() * 10
    return ETCMatrix(etc=etc, ready_times=ready, name="mc-sweep-campaign")


def main() -> None:
    campaign = build_campaign()
    print(f"campaign: {campaign.ntasks} tasks on {campaign.nmachines} machines")
    print(f"consistency: {campaign.consistency().name.lower()} "
          f"(speed-scaled grids are consistent by construction)")
    print(f"lower bound on makespan: {campaign.makespan_lower_bound():,.1f}s")
    print()

    rows = []
    rng = np.random.default_rng(0)
    for name, fn in HEURISTICS.items():
        sched = fn(campaign, rng)
        rows.append(
            (
                name,
                f"{sched.makespan():,.1f}",
                f"{flowtime(campaign, sched.s):,.0f}",
                f"{100 * utilization(campaign, sched.s):.1f}%",
            )
        )

    config = CGAConfig(
        grid_rows=12, grid_cols=12, n_threads=3, crossover="tpx", ls_iterations=10
    )
    engine = SimulatedPACGA(campaign, config, seed=1)
    result = engine.run(StopCondition(max_evaluations=20_000))
    best = result.best_schedule(campaign)
    rows.append(
        (
            "pa-cga (3 threads)",
            f"{best.makespan():,.1f}",
            f"{flowtime(campaign, best.s):,.0f}",
            f"{100 * utilization(campaign, best.s):.1f}%",
        )
    )

    print(ascii_table(["scheduler", "makespan (s)", "flowtime (s)", "utilization"], rows))
    print()
    gap = 100 * (best.makespan() / campaign.makespan_lower_bound() - 1)
    print(
        f"PA-CGA finishes {gap:.1f}% above the area lower bound — the bound"
        "\nassumes every task runs on the globally fastest machine at once,"
        "\nso a large gap is expected on consistent (speed-scaled) grids."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mini Table 2: every algorithm on every benchmark instance.

Runs the two literature baselines (Struggle GA, cMA+LTH) and PA-CGA on
all twelve Braun instances at a small common evaluation budget and
prints the winners — the reduced-budget version of the paper's Table 2
(the full-budget run lives in benchmarks/bench_table2_comparison.py).

Run:  python examples/compare_algorithms.py [evaluation_budget]
"""

import sys

import numpy as np

from repro import (
    CGAConfig,
    CMALTH,
    SimulatedPACGA,
    StopCondition,
    StruggleGA,
    instance_names,
    load_benchmark,
)
from repro.experiments import PAPER_TABLE2, ascii_table, format_float


def main(budget: int = 3000) -> None:
    stop = StopCondition(max_evaluations=budget)
    pa_config = CGAConfig(n_threads=3, crossover="tpx", ls_iterations=10)

    rows = []
    agree = 0
    for name in instance_names():
        inst = load_benchmark(name)
        results = {
            "struggle-ga": StruggleGA(inst, rng=0).run(stop).best_fitness,
            "cma+lth": CMALTH(inst, rng=0).run(stop).best_fitness,
            "pa-cga": SimulatedPACGA(inst, pa_config, seed=0).run(stop).best_fitness,
        }
        winner = min(results, key=results.get)
        paper_winner = PAPER_TABLE2[name].best_algorithm()
        paper_says_pacga = paper_winner.startswith("pa-cga")
        we_say_pacga = winner == "pa-cga"
        agree += paper_says_pacga == we_say_pacga
        rows.append(
            [
                name,
                format_float(results["struggle-ga"]),
                format_float(results["cma+lth"]),
                format_float(results["pa-cga"]),
                winner,
                "yes" if paper_says_pacga == we_say_pacga else "no",
            ]
        )

    print(f"single-seed comparison at {budget} evaluations per algorithm\n")
    print(
        ascii_table(
            ["instance", "struggle-ga", "cma+lth", "pa-cga", "winner", "matches paper?"],
            rows,
        )
    )
    print(f"\nwinner class (PA-CGA vs not) matches the paper on {agree}/12 instances.")
    print("Increase the budget (argv[1]) for a sharper comparison.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)

#!/usr/bin/env python
"""Future-work study: bigger instances and more logical threads.

The paper closes (§5) with two directions: more parallelism and bigger
benchmark instances.  This example explores both with the virtual-time
simulator: a 2048-task / 64-machine instance, thread counts up to 16,
and the calibrated cost model's speedup predictions next to the
measured simulated evaluations.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import CGAConfig, SimulatedPACGA, StopCondition, make_instance
from repro.experiments import ascii_table
from repro.parallel import XEON_E5440


def main() -> None:
    instance = make_instance(
        2048, 64, consistency="i", task_het="hi", machine_het="hi", seed=11,
        name="u_i_hihi.big",
    )
    print(f"instance: {instance}")
    print()

    virtual_time = 0.2
    ls_iterations = 5
    rows = []
    base_evals = None
    for n in (1, 2, 4, 8, 16):
        config = CGAConfig(
            grid_rows=16, grid_cols=16, n_threads=n, ls_iterations=ls_iterations
        )
        engine = SimulatedPACGA(instance, config, seed=3, history_stride=10**9)
        result = engine.run(StopCondition(virtual_time=virtual_time))
        if base_evals is None:
            base_evals = result.evaluations
        measured = 100.0 * result.evaluations / base_evals
        predicted = 100.0 * XEON_E5440.predicted_speedup(
            n, ls_iterations, engine.boundary_fraction
        )
        rows.append(
            [
                n,
                f"{result.evaluations:,}",
                f"{measured:.0f}%",
                f"{predicted:.0f}%",
                f"{engine.boundary_fraction:.2f}",
                f"{result.best_fitness:,.0f}",
            ]
        )

    print(f"{virtual_time} virtual seconds per run, H2LL iter={ls_iterations}\n")
    print(
        ascii_table(
            [
                "threads",
                "evaluations",
                "speedup (measured)",
                "speedup (model)",
                "boundary frac",
                "best makespan",
            ],
            rows,
        )
    )
    print(
        "\nNote how the boundary fraction saturates the speedup long before"
        "\n16 threads — the contention mechanism the paper identifies in"
        "\nFig. 4 only worsens with thread count, which is why the authors"
        "\npoint at GPUs (massive cores, different memory model) as future"
        "\nwork rather than more CPU threads."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Why cellular? — visualizing selection pressure and diversity.

The paper's opening argument (§1, §3.1): restricting mating to small
neighborhoods slows the spread of good solutions, keeping diversity
longer and avoiding premature convergence.  This example makes that
visible twice over:

1. a **takeover experiment** — plant one optimal individual, disable
   variation, and watch how fast its copies flood a 16×16 torus under
   different neighborhoods and update policies;
2. a **diversity trace** — run the real PA-CGA and print how genotypic
   diversity decays for small vs large neighborhoods.

Run:  python examples/selection_pressure.py
"""

from repro import CGAConfig, StopCondition, load_benchmark
from repro.cga.engine import AsyncCGA
from repro.cga.diversity import diversity_report
from repro.experiments import ascii_table
from repro.experiments.report import ascii_series
from repro.experiments.takeover import takeover_experiment


def takeover_demo() -> None:
    print("1. takeover of a planted optimum (selection only, 16x16 torus)")
    print()
    rows = []
    curves = {}
    for label, nb, update in [
        ("L5 / synchronous", "l5", "sync"),
        ("C9 / synchronous", "c9", "sync"),
        ("C13 / synchronous", "c13", "sync"),
        ("L5 / asynchronous", "l5", "async"),
    ]:
        r = takeover_experiment(neighborhood=nb, update=update, max_generations=60)
        rows.append([label, r.takeover_generation, r.generations_to(0.5)])
        curves[label] = r.proportions
    print(ascii_table(["setting", "takeover generation", "generation to 50%"], rows))
    print()
    for label, curve in curves.items():
        print(f"  {label:18s} {ascii_series(curve, width=40)}")
    print()
    print("Small neighborhoods spread slowly (L5 sync needs the full grid")
    print("radius of 16 generations); the asynchronous line sweep is the")
    print("paper's convergence accelerator (2 generations).")
    print()


def diversity_demo() -> None:
    print("2. diversity decay during real optimization (u_i_hihi.0)")
    print()
    inst = load_benchmark("u_i_hihi.0")
    rows = []
    for nb in ("l5", "c13"):
        config = CGAConfig(neighborhood=nb, ls_iterations=2, seed_with_minmin=False)
        engine = AsyncCGA(inst, config, rng=1, record_history=False)
        trace = []
        for _ in range(6):
            engine.run(StopCondition(max_generations=4))
            trace.append(diversity_report(engine.pop)["hamming"])
        rows.append([nb] + [f"{v:.3f}" for v in trace])
    print(
        ascii_table(
            ["neighborhood"] + [f"gen {4 * (i + 1)}" for i in range(6)], rows
        )
    )
    print()
    print("L5 retains diversity far longer than C13 at the same budget —")
    print("the exploration reserve that pays off on hard instances.")


def main() -> None:
    takeover_demo()
    diversity_demo()


if __name__ == "__main__":
    main()

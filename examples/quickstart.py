#!/usr/bin/env python
"""Quickstart: schedule a Braun benchmark instance with PA-CGA.

Loads ``u_i_hihi.0`` (512 independent tasks, 16 heterogeneous
machines), prints the Table-1 configuration, runs the simulated
parallel asynchronous cellular GA with 3 logical threads, and compares
the result against the Min-min heuristic and the area lower bound.

Run:  python examples/quickstart.py
"""

from repro import (
    CGAConfig,
    SimulatedPACGA,
    StopCondition,
    load_benchmark,
    min_min,
)


def main() -> None:
    instance = load_benchmark("u_i_hihi.0")
    print(f"instance : {instance}")
    print(f"notation : {instance.blazewicz_notation()}")
    print()

    config = CGAConfig(n_threads=3, crossover="tpx", ls_iterations=10)
    print("PA-CGA parameterization (Table 1):")
    print(config.describe())
    print()

    baseline = min_min(instance)
    print(f"Min-min makespan      : {baseline.makespan():,.1f}")
    print(f"area lower bound      : {instance.makespan_lower_bound():,.1f}")

    engine = SimulatedPACGA(instance, config, seed=42)
    result = engine.run(StopCondition(virtual_time=0.05))

    print(f"PA-CGA best makespan  : {result.best_fitness:,.1f}")
    print(f"evaluations performed : {result.evaluations:,}")
    print(f"generations (slowest) : {result.generations}")
    improvement = 100.0 * (baseline.makespan() - result.best_fitness) / baseline.makespan()
    print(f"improvement vs Min-min: {improvement:.2f}%")

    schedule = result.best_schedule(instance)
    print()
    print("machine loads of the best schedule:")
    for m, load in enumerate(schedule.ct):
        ntasks = schedule.tasks_on(m).size
        bar = "#" * int(40 * load / schedule.makespan())
        print(f"  m{m:02d} [{ntasks:3d} tasks] {bar} {load:,.0f}")


if __name__ == "__main__":
    main()

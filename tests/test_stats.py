"""Tests for the statistics module."""

import numpy as np
import pytest

from repro.experiments import SummaryStats, mann_whitney_u, notches_overlap, summarize
from repro.experiments.stats import bootstrap_ci, holm_bonferroni, wilcoxon_signed_rank


class TestSummarize:
    def test_basic_moments(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_std_is_sample_std(self):
        s = summarize([1.0, 3.0])
        assert s.std == pytest.approx(np.std([1, 3], ddof=1))

    def test_singleton(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.ci95_lo == s.ci95_hi == 7.0

    def test_notch_width_shrinks_with_n(self):
        small = summarize(list(range(10)))
        big = summarize(list(range(10)) * 16)
        assert (big.notch_hi - big.notch_lo) < (small.notch_hi - small.notch_lo)

    def test_notch_centered_on_median(self):
        s = summarize([1.0, 2.0, 3.0, 10.0])
        assert s.notch_lo <= s.median <= s.notch_hi

    def test_iqr(self):
        s = summarize(list(range(101)))
        assert s.iqr == pytest.approx(50.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])

    def test_ci_contains_mean_for_wellbehaved_sample(self):
        rng = np.random.default_rng(0)
        x = rng.normal(100, 5, size=200)
        s = summarize(x)
        assert s.ci95_lo < s.mean < s.ci95_hi


class TestBootstrapCI:
    def test_deterministic_given_seed(self):
        x = np.arange(20.0)
        assert bootstrap_ci(x, seed=1) == bootstrap_ci(x, seed=1)

    def test_interval_ordering(self):
        x = np.arange(50.0)
        lo, hi = bootstrap_ci(x)
        assert lo < hi


class TestMannWhitney:
    def test_detects_clear_separation(self):
        a = list(range(0, 20))
        b = list(range(100, 120))
        _, p = mann_whitney_u(a, b)
        assert p < 1e-6

    def test_no_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        _, p = mann_whitney_u(a, b)
        assert p > 0.01

    def test_identical_constant_samples(self):
        _, p = mann_whitney_u([5.0] * 10, [5.0] * 10)
        assert p == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestWilcoxon:
    def test_detects_consistent_pairwise_shift(self):
        a = [10.0, 12.0, 9.0, 14.0, 11.0, 13.0, 10.5, 12.5]
        b = [x + 2.0 for x in a]
        _, p = wilcoxon_signed_rank(a, b)
        assert p < 0.05

    def test_identical_pairs(self):
        _, p = wilcoxon_signed_rank([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert p == 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])

    def test_no_shift_insignificant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=30)
        b = a + rng.normal(scale=0.01, size=30) * rng.choice([-1, 1], 30)
        _, p = wilcoxon_signed_rank(a, b)
        assert p > 0.01


class TestHolmBonferroni:
    def test_all_tiny_p_rejected(self):
        assert holm_bonferroni([1e-6, 1e-7, 1e-8]) == [True, True, True]

    def test_all_large_p_accepted(self):
        assert holm_bonferroni([0.5, 0.9, 0.7]) == [False, False, False]

    def test_step_down_behaviour(self):
        # smallest p tested at alpha/3; 0.01 < 0.0167 rejected, then
        # 0.03 vs alpha/2 = 0.025 accepted, stopping the procedure
        assert holm_bonferroni([0.03, 0.01, 0.2]) == [False, True, False]

    def test_less_conservative_than_bonferroni(self):
        # plain Bonferroni at alpha/4 = 0.0125 would accept 0.02; Holm
        # rejects it after rejecting the smaller ones
        result = holm_bonferroni([0.001, 0.002, 0.003, 0.02])
        assert result == [True, True, True, True]

    def test_empty(self):
        assert holm_bonferroni([]) == []

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            holm_bonferroni([0.5, 1.2])


class TestNotchesOverlap:
    def _stats(self, lo, hi):
        return SummaryStats(
            n=10, mean=0, std=0, minimum=0, q1=0, median=(lo + hi) / 2, q3=0,
            maximum=0, notch_lo=lo, notch_hi=hi, ci95_lo=0, ci95_hi=0,
        )

    def test_disjoint(self):
        assert not notches_overlap(self._stats(0, 1), self._stats(2, 3))

    def test_touching_counts_as_overlap(self):
        assert notches_overlap(self._stats(0, 1), self._stats(1, 2))

    def test_nested(self):
        assert notches_overlap(self._stats(0, 10), self._stats(4, 5))

    def test_order_invariant(self):
        a, b = self._stats(0, 1), self._stats(5, 6)
        assert notches_overlap(a, b) == notches_overlap(b, a)

"""Tests for the Xeon E5440 virtual cost model — including the
Fig. 4 shape calibration that DESIGN.md promises."""

import numpy as np
import pytest

from repro.cga import Grid2D, neighbor_table
from repro.parallel import CostModel, XEON_E5440


def boundary_fraction(n_threads: int) -> float:
    grid = Grid2D(16, 16)
    tbl = neighbor_table(grid, "l5")
    return grid.boundary_fraction(n_threads, tbl)


class TestBasics:
    def test_compute_cost_linear_in_ls(self):
        m = CostModel()
        assert m.compute_cost(10) == pytest.approx(m.t_breed + 10 * m.t_ls_iter)

    def test_cache_factor_monotone(self):
        m = XEON_E5440
        factors = [m.cache_factor(n) for n in (1, 2, 3, 4)]
        assert factors[0] == 1.0
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_cache_factor_kinks_after_three(self):
        m = XEON_E5440
        assert (m.cache_factor(4) - m.cache_factor(3)) > (
            m.cache_factor(3) - m.cache_factor(2)
        )

    def test_step_cost_boundary_surcharge(self):
        m = XEON_E5440
        inner = m.step_cost(3, 5, crosses_boundary=False)
        border = m.step_cost(3, 5, crosses_boundary=True)
        assert border > inner

    def test_no_surcharge_single_thread(self):
        m = XEON_E5440
        assert m.step_cost(1, 5, crosses_boundary=True) == pytest.approx(
            m.step_cost(1, 5, crosses_boundary=False)
        )

    def test_jitter_is_seeded(self):
        m = XEON_E5440
        a = m.step_cost(2, 5, True, np.random.default_rng(1))
        b = m.step_cost(2, 5, True, np.random.default_rng(1))
        assert a == b

    def test_jitter_disabled(self):
        m = CostModel(jitter_sigma=0.0)
        a = m.step_cost(2, 5, True, np.random.default_rng(1))
        b = m.step_cost(2, 5, True, np.random.default_rng(2))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(t_breed=-1)
        with pytest.raises(ValueError):
            CostModel(jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            XEON_E5440.cache_factor(0)
        with pytest.raises(ValueError):
            XEON_E5440.compute_cost(-1)
        with pytest.raises(ValueError):
            XEON_E5440.expected_step_cost(2, 5, 1.5)


class TestFig4ShapeCalibration:
    """The default model must reproduce the paper's Fig. 4 claims."""

    def speedups(self, ls_iters):
        return {
            n: XEON_E5440.predicted_speedup(n, ls_iters, boundary_fraction(n))
            for n in (1, 2, 3, 4)
        }

    def test_baseline_is_one(self):
        for it in (0, 1, 5, 10):
            assert self.speedups(it)[1] == pytest.approx(1.0)

    def test_zero_ls_slows_down_monotonically(self):
        s = self.speedups(0)
        assert s[2] < 1.0
        assert s[3] < s[2]
        assert s[4] < s[3]

    def test_one_ls_roughly_flat(self):
        s = self.speedups(1)
        assert 0.8 < s[2] < 1.3
        assert 0.8 < s[3] < 1.3

    def test_five_ls_positive_speedup_with_plateau(self):
        s = self.speedups(5)
        assert s[2] > 1.2
        assert s[3] > s[2]
        assert s[4] <= s[3] * 1.02  # no gain from 3 to 4 threads

    def test_ten_ls_largest_speedup_with_plateau(self):
        s5 = self.speedups(5)
        s10 = self.speedups(10)
        assert s10[3] > s5[3]
        assert s10[3] > 1.6
        assert s10[4] <= s10[3] * 1.02

    def test_more_ls_always_helps_parallel_efficiency(self):
        for n in (2, 3, 4):
            vals = [self.speedups(it)[n] for it in (0, 1, 5, 10)]
            assert all(b >= a for a, b in zip(vals, vals[1:]))

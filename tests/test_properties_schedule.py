"""Property-based tests (hypothesis) for the schedule representation.

The central invariant of the paper's representation (§3.3): no matter
what sequence of operators touches a schedule, the cached completion
times must equal a fresh evaluation of eq. 2, and the assignment must
stay a total in-range map.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.etc import make_instance
from repro.scheduling import Schedule
from repro.scheduling.validation import check_completion_times, validate_assignment


INSTANCE = make_instance(24, 5, consistency="i", seed=99, name="prop")


def assignments():
    return st.lists(
        st.integers(min_value=0, max_value=INSTANCE.nmachines - 1),
        min_size=INSTANCE.ntasks,
        max_size=INSTANCE.ntasks,
    ).map(lambda xs: np.array(xs, dtype=np.int32))


@st.composite
def mutation_scripts(draw):
    """A random sequence of move/swap/delta operations."""
    ops = []
    for _ in range(draw(st.integers(0, 30))):
        kind = draw(st.sampled_from(["move", "swap", "delta"]))
        if kind == "move":
            ops.append(
                (
                    "move",
                    draw(st.integers(0, INSTANCE.ntasks - 1)),
                    draw(st.integers(0, INSTANCE.nmachines - 1)),
                )
            )
        elif kind == "swap":
            ops.append(
                (
                    "swap",
                    draw(st.integers(0, INSTANCE.ntasks - 1)),
                    draw(st.integers(0, INSTANCE.ntasks - 1)),
                )
            )
        else:
            k = draw(st.integers(1, 6))
            tasks = draw(
                st.lists(
                    st.integers(0, INSTANCE.ntasks - 1),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
            machines = draw(
                st.lists(
                    st.integers(0, INSTANCE.nmachines - 1), min_size=k, max_size=k
                )
            )
            ops.append(("delta", tasks, machines))
    return ops


@given(assignments())
@settings(max_examples=60, deadline=None)
def test_constructor_ct_matches_recomputation(s):
    sched = Schedule(INSTANCE, s)
    check_completion_times(INSTANCE, sched.s, sched.ct)


@given(assignments())
@settings(max_examples=60, deadline=None)
def test_makespan_equals_bruteforce(s):
    sched = Schedule(INSTANCE, s)
    brute = max(
        INSTANCE.etc[np.flatnonzero(s == m), m].sum() for m in range(INSTANCE.nmachines)
    )
    assert sched.makespan() == np.float64(brute) or abs(sched.makespan() - brute) < 1e-6


@given(assignments(), mutation_scripts())
@settings(max_examples=80, deadline=None)
def test_ct_exact_after_any_operator_sequence(s, script):
    sched = Schedule(INSTANCE, s)
    for op in script:
        if op[0] == "move":
            sched.move(op[1], op[2])
        elif op[0] == "swap":
            sched.swap(op[1], op[2])
        else:
            sched.apply_delta(np.array(op[1]), np.array(op[2], dtype=np.int32))
    validate_assignment(INSTANCE, sched.s)
    check_completion_times(INSTANCE, sched.s, sched.ct)


@given(assignments(), mutation_scripts())
@settings(max_examples=40, deadline=None)
def test_resync_drift_is_negligible(s, script):
    sched = Schedule(INSTANCE, s)
    for op in script:
        if op[0] == "move":
            sched.move(op[1], op[2])
        elif op[0] == "swap":
            sched.swap(op[1], op[2])
        else:
            sched.apply_delta(np.array(op[1]), np.array(op[2], dtype=np.int32))
    assert sched.resync() < 1e-6


@given(assignments())
@settings(max_examples=40, deadline=None)
def test_makespan_lower_bound_holds(s):
    sched = Schedule(INSTANCE, s)
    assert sched.makespan() >= INSTANCE.makespan_lower_bound() - 1e-9


@given(assignments())
@settings(max_examples=40, deadline=None)
def test_copy_equal_and_independent(s):
    a = Schedule(INSTANCE, s)
    b = a.copy()
    assert a == b
    b.move(0, (int(b.s[0]) + 1) % INSTANCE.nmachines)
    check_completion_times(INSTANCE, a.s, a.ct)

"""Tests for the multi-replica benchmark suite."""

import numpy as np
import pytest

from repro.etc import load_benchmark
from repro.etc.suite import braun_suite, class_names, load_replica, replica_name


class TestNames:
    def test_twelve_classes(self):
        assert len(class_names()) == 12
        assert "u_c_hihi" in class_names()

    def test_replica_name(self):
        assert replica_name("u_i_lohi", 4) == "u_i_lohi.4"

    def test_negative_replica(self):
        with pytest.raises(ValueError):
            replica_name("u_i_lohi", -1)


class TestLoadReplica:
    def test_replica_zero_is_registry_instance(self):
        assert load_replica("u_c_hihi", 0) is load_benchmark("u_c_hihi.0")

    def test_higher_replicas_differ(self):
        a = load_replica("u_i_hilo", 0)
        b = load_replica("u_i_hilo", 1)
        assert not np.array_equal(a.etc, b.etc)

    def test_replicas_share_published_range(self):
        a = load_replica("u_s_lohi", 0)
        b = load_replica("u_s_lohi", 3)
        assert a.pj_min == pytest.approx(b.pj_min)
        assert a.pj_max == pytest.approx(b.pj_max)

    def test_replicas_share_consistency_class(self):
        for r in (1, 2):
            assert load_replica("u_c_lolo", r).is_consistent()

    def test_deterministic(self):
        a = load_replica("u_i_hihi", 2)
        b = load_replica("u_i_hihi", 2)
        assert np.array_equal(a.etc, b.etc)

    def test_unknown_class(self):
        with pytest.raises(KeyError, match="unknown class"):
            load_replica("u_x_zzzz", 0)


class TestBraunSuite:
    def test_sizes(self):
        suite = braun_suite(replicas=2)
        assert len(suite) == 24
        assert "u_c_hihi.0" in suite
        assert "u_s_lolo.1" in suite

    def test_all_512x16(self):
        suite = braun_suite(replicas=1)
        assert all(m.ntasks == 512 and m.nmachines == 16 for m in suite.values())

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            braun_suite(replicas=0)

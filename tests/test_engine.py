"""Tests for the sequential engines and the shared breeding step."""

import numpy as np
import pytest

from repro.cga import (
    AsyncCGA,
    CGAConfig,
    Population,
    StopCondition,
    SyncCGA,
    evolve_individual,
    neighbor_table,
)
from repro.cga.grid import Grid2D
from repro.heuristics import min_min


SMALL = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=2, seed_with_minmin=False)


@pytest.fixture
def async_engine(tiny_instance):
    return AsyncCGA(tiny_instance, SMALL, rng=3)


class TestEvolveIndividual:
    def test_keeps_invariants(self, tiny_instance, rng):
        pop = Population(tiny_instance, Grid2D(4, 4))
        pop.init_random(rng)
        tbl = neighbor_table(Grid2D(4, 4), "l5")
        ops = SMALL.resolve()
        for idx in range(pop.size):
            evolve_individual(pop, idx, tbl[idx], ops, rng)
        pop.check_invariants()

    def test_replacement_only_improves(self, tiny_instance, rng):
        pop = Population(tiny_instance, Grid2D(4, 4))
        pop.init_random(rng)
        tbl = neighbor_table(Grid2D(4, 4), "l5")
        ops = SMALL.resolve()
        before = pop.fitness.copy()
        for idx in range(pop.size):
            evolve_individual(pop, idx, tbl[idx], ops, rng)
        assert np.all(pop.fitness <= before + 1e-9)

    def test_returns_replacement_flag(self, tiny_instance, rng):
        pop = Population(tiny_instance, Grid2D(4, 4))
        pop.init_random(rng)
        tbl = neighbor_table(Grid2D(4, 4), "l5")
        ops = SMALL.resolve()
        flags = [evolve_individual(pop, i, tbl[i], ops, rng) for i in range(pop.size)]
        assert any(flags)  # random population: some offspring improve


class TestAsyncCGA:
    def test_runs_to_generation_budget(self, async_engine):
        res = async_engine.run(StopCondition(max_generations=3))
        assert res.generations == 3
        assert res.evaluations == 3 * 16

    def test_runs_to_evaluation_budget(self, async_engine):
        res = async_engine.run(StopCondition(max_evaluations=20))
        assert res.evaluations == 20

    def test_fitness_monotone_nonincreasing(self, async_engine):
        res = async_engine.run(StopCondition(max_generations=5))
        bests = [row[2] for row in res.history]
        assert all(b <= a + 1e-9 for a, b in zip(bests, bests[1:]))

    def test_improves_over_initial(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, SMALL, rng=3)
        initial_best = eng.pop.best()[1]
        res = eng.run(StopCondition(max_generations=10))
        assert res.best_fitness < initial_best

    def test_best_assignment_matches_fitness(self, async_engine, tiny_instance):
        res = async_engine.run(StopCondition(max_generations=3))
        sched = res.best_schedule(tiny_instance)
        assert sched.makespan() == pytest.approx(res.best_fitness)

    def test_deterministic_given_seed(self, tiny_instance):
        r1 = AsyncCGA(tiny_instance, SMALL, rng=9).run(StopCondition(max_generations=4))
        r2 = AsyncCGA(tiny_instance, SMALL, rng=9).run(StopCondition(max_generations=4))
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_assignment, r2.best_assignment)

    def test_seed_sensitivity(self, tiny_instance):
        r1 = AsyncCGA(tiny_instance, SMALL, rng=1).run(StopCondition(max_generations=4))
        r2 = AsyncCGA(tiny_instance, SMALL, rng=2).run(StopCondition(max_generations=4))
        assert not np.array_equal(r1.best_assignment, r2.best_assignment)

    def test_minmin_seed_bounds_initial_best(self, tiny_instance):
        config = SMALL.with_(seed_with_minmin=True)
        eng = AsyncCGA(tiny_instance, config, rng=3)
        assert eng.pop.best()[1] <= min_min(tiny_instance).makespan() + 1e-9

    def test_population_invariants_after_run(self, async_engine):
        async_engine.run(StopCondition(max_generations=5))
        async_engine.pop.check_invariants()

    def test_target_fitness_stops_early(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, SMALL, rng=3)
        res = eng.run(StopCondition(max_generations=500, target_fitness=float("inf")))
        assert res.generations == 0

    def test_history_disabled(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, SMALL, rng=3, record_history=False)
        res = eng.run(StopCondition(max_generations=2))
        assert res.history == []


class TestSyncCGA:
    def test_runs_and_improves(self, tiny_instance):
        eng = SyncCGA(tiny_instance, SMALL, rng=3)
        initial_best = eng.pop.best()[1]
        res = eng.run(StopCondition(max_generations=10))
        assert res.best_fitness <= initial_best

    def test_offspring_invisible_within_generation(self, tiny_instance, rng):
        # breeding reads the frozen parent population: after one sync
        # generation from a uniform population, every cell bred against
        # identical parents even though replacements happened.
        config = SMALL.with_(p_mut=0.0, local_search=None, p_comb=1.0)
        eng = SyncCGA(tiny_instance, config, rng=5)
        eng.pop.s[:] = eng.pop.s[0]  # make everyone identical
        eng.pop.evaluate_all()
        eng.run(StopCondition(max_generations=1))
        # crossover of identical parents = clone; nothing may change
        assert np.all(eng.pop.s == eng.pop.s[0])

    def test_population_invariants_after_run(self, tiny_instance):
        eng = SyncCGA(tiny_instance, SMALL, rng=3)
        eng.run(StopCondition(max_generations=5))
        eng.pop.check_invariants()

    def test_async_converges_faster(self, small_instance):
        # the paper's premise ([1], [14]): async updates converge faster
        # per generation; check the mean fitness after equal generations.
        config = CGAConfig(
            grid_rows=6, grid_cols=6, ls_iterations=0, local_search=None,
            seed_with_minmin=False,
        )
        gens = 20
        a = AsyncCGA(small_instance, config, rng=7).run(StopCondition(max_generations=gens))
        s = SyncCGA(small_instance, config, rng=7).run(StopCondition(max_generations=gens))
        assert a.history[-1][3] <= s.history[-1][3] * 1.05  # mean makespan


class TestRunResult:
    def test_history_rows_shape(self, async_engine):
        res = async_engine.run(StopCondition(max_generations=3))
        assert len(res.history) == 4  # initial snapshot + 3 generations
        gen, evals, best, mean = res.history[-1]
        assert gen == 3
        assert best <= mean

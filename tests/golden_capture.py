"""Capture golden best-fitness trajectories for the independent problem.

Run BEFORE and AFTER a refactor; the committed JSON pins every
deterministic engine's trajectory (history rows, final best, and a
checksum of the final population) so a refactor provably adds zero
behavioral drift.  Usage::

    PYTHONPATH=src python tests/golden_capture.py [--check]
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import numpy as np

from repro.cga import CGAConfig, StopCondition
from repro.etc import make_instance
from repro.runtime.registry import create_engine

OUT = Path(__file__).parent / "data" / "golden_independent.json"

#: (engine, n_threads, extra kwargs) — deterministic configurations only.
ENGINES = [
    ("async", 1, {}),
    ("sync", 1, {}),
    ("vectorized", 1, {}),
    ("sim", 3, {}),
    ("threads", 2, {"lockstep": True}),
    ("shm", 2, {"lockstep": True}),
]


def capture() -> dict:
    inst = make_instance(64, 8, consistency="i", seed=1)
    rows = {}
    for name, n_threads, extras in ENGINES:
        config = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5, n_threads=n_threads)
        engine = create_engine(name, inst, config, seed=7, **extras)
        result = engine.run(StopCondition(max_evaluations=1280))
        pop = engine.pop
        rows[f"{name}({n_threads})"] = {
            "best_fitness": result.best_fitness,
            "evaluations": result.evaluations,
            "generations": result.generations,
            "history_best": [row[2] for row in result.history],
            "pop_digest": hashlib.sha256(
                np.ascontiguousarray(pop.s).tobytes()
                + np.ascontiguousarray(pop.fitness).tobytes()
            ).hexdigest(),
        }
    return rows


def main() -> int:
    rows = capture()
    if "--check" in sys.argv:
        golden = json.loads(OUT.read_text())
        ok = True
        for key, row in rows.items():
            if golden.get(key) != row:
                ok = False
                print(f"DRIFT in {key}:\n  golden: {golden.get(key)}\n  now:    {row}")
        print("golden check:", "ok" if ok else "FAILED")
        return 0 if ok else 1
    OUT.write_text(json.dumps(rows, indent=2) + "\n")
    print(f"captured {len(rows)} engine trajectories -> {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

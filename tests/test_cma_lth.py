"""Tests for the cMA+LTH baseline and the Local Tabu Hop operator."""

import numpy as np
import pytest

from repro.baselines import CMALTH, local_tabu_hop
from repro.cga import CGAConfig, StopCondition
from repro.cga.local_search import LOCAL_SEARCHES
from repro.scheduling.schedule import compute_completion_times
from repro.scheduling.validation import check_completion_times, validate_assignment


@pytest.fixture
def state(small_instance, rng):
    s = rng.integers(0, small_instance.nmachines, small_instance.ntasks).astype(np.int32)
    ct = compute_completion_times(small_instance, s)
    return s, ct


class TestLocalTabuHop:
    def test_registered_as_local_search(self):
        assert "lth" in LOCAL_SEARCHES

    def test_never_returns_worse_state(self, small_instance, state, rng):
        s, ct = state
        before = ct.max()
        local_tabu_hop(s, ct, small_instance, rng, 10)
        assert ct.max() <= before + 1e-9

    def test_keeps_ct_exact(self, small_instance, state, rng):
        s, ct = state
        local_tabu_hop(s, ct, small_instance, rng, 10)
        check_completion_times(small_instance, s, ct)

    def test_keeps_assignment_valid(self, small_instance, state, rng):
        s, ct = state
        local_tabu_hop(s, ct, small_instance, rng, 10)
        validate_assignment(small_instance, s)

    def test_zero_iterations_noop(self, small_instance, state, rng):
        s, ct = state
        before = s.copy()
        assert local_tabu_hop(s, ct, small_instance, rng, 0) == 0
        assert np.array_equal(s, before)

    def test_improves_unbalanced(self, small_instance, rng):
        s = np.zeros(small_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(small_instance, s)
        before = ct.max()
        moves = local_tabu_hop(s, ct, small_instance, rng, 10)
        assert moves > 0
        assert ct.max() < before

    def test_tabu_forces_diversification(self, rng):
        # two tasks, two machines: after moving a task it becomes tabu,
        # so the next hop must pick the other one (or stop).
        from repro.etc import ETCMatrix

        etc = np.array([[4.0, 5.0], [4.0, 5.0], [4.0, 5.0], [4.0, 5.0]])
        inst = ETCMatrix(etc)
        s = np.zeros(4, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        local_tabu_hop(s, ct, inst, rng, 3, tenure=4)
        moved = np.flatnonzero(s != 0)
        assert len(set(moved.tolist())) == moved.size  # no task moved twice

    def test_single_machine_noop(self, rng):
        from repro.etc import make_instance

        inst = make_instance(6, 1, seed=0)
        s = np.zeros(6, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        assert local_tabu_hop(s, ct, inst, rng, 5) == 0


class TestCMALTH:
    def test_runs_and_improves(self, small_instance):
        algo = CMALTH(small_instance, rng=1, config=CGAConfig(
            grid_rows=4, grid_cols=4, local_search="lth", selection="tournament",
            seed_with_minmin=False,
        ))
        initial = algo._engine.pop.best()[1]
        res = algo.run(StopCondition(max_generations=10))
        assert res.best_fitness < initial

    def test_requires_lth(self, small_instance):
        with pytest.raises(ValueError, match="lth"):
            CMALTH(small_instance, config=CGAConfig(local_search="h2ll"))

    def test_default_config_uses_lth(self, tiny_instance):
        algo = CMALTH(tiny_instance, rng=0)
        assert algo.config.local_search == "lth"
        assert algo.config.selection == "tournament"

    def test_result_tagged(self, tiny_instance):
        algo = CMALTH(tiny_instance, rng=0, config=CGAConfig(
            grid_rows=4, grid_cols=4, local_search="lth", seed_with_minmin=False,
        ))
        res = algo.run(StopCondition(max_generations=2))
        assert res.extra["algorithm"] == "cma+lth"

    def test_population_invariants(self, tiny_instance):
        algo = CMALTH(tiny_instance, rng=0, config=CGAConfig(
            grid_rows=4, grid_cols=4, local_search="lth", seed_with_minmin=False,
        ))
        algo.run(StopCondition(max_generations=5))
        algo._engine.pop.check_invariants()

"""Tests for the takeover-time (selection pressure) study."""

import pytest

from repro.experiments.takeover import TakeoverResult, takeover_experiment


@pytest.fixture(scope="module")
def sync_l5():
    return takeover_experiment(neighborhood="l5", update="sync", max_generations=80)


@pytest.fixture(scope="module")
def sync_c9():
    return takeover_experiment(neighborhood="c9", update="sync", max_generations=80)


@pytest.fixture(scope="module")
def async_l5():
    return takeover_experiment(neighborhood="l5", update="async", max_generations=80)


class TestCurveShape:
    def test_starts_with_single_copy(self, sync_l5):
        assert sync_l5.proportions[0] == pytest.approx(1 / 256)

    def test_monotone_nondecreasing(self, sync_l5):
        p = sync_l5.proportions
        assert all(b >= a for a, b in zip(p, p[1:]))

    def test_reaches_full_takeover(self, sync_l5):
        assert sync_l5.proportions[-1] == 1.0
        assert sync_l5.takeover_generation is not None

    def test_generations_to_half_before_full(self, sync_l5):
        half = sync_l5.generations_to(0.5)
        full = sync_l5.takeover_generation
        assert half is not None and half < full


class TestSelectionPressureOrdering:
    def test_larger_neighborhood_faster_takeover(self, sync_l5, sync_c9):
        # C9 reaches 2 cells per generation on the diagonal; L5 only 1
        assert sync_c9.takeover_generation < sync_l5.takeover_generation

    def test_async_much_faster_than_sync(self, sync_l5, async_l5):
        # immediate replacement + line sweep carries the genotype across
        # the grid within a sweep: the paper's faster-convergence premise
        assert async_l5.takeover_generation < sync_l5.takeover_generation

    def test_sync_l5_takeover_matches_grid_radius(self, sync_l5):
        # spread is 1 Manhattan step per generation from the center of a
        # 16x16 torus: full takeover needs ~16 generations
        assert 12 <= sync_l5.takeover_generation <= 20


class TestValidation:
    def test_unknown_update(self):
        with pytest.raises(ValueError, match="update"):
            takeover_experiment(update="wavefront")

    def test_generations_to_unreached(self):
        r = TakeoverResult(neighborhood="l5", update="sync", proportions=[0.1, 0.2])
        assert r.generations_to(0.9) is None
        assert r.takeover_generation is None

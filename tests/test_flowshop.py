"""Permutation flow shop: DP evaluation, Taillard acceleration, NEH,
instance I/O and end-to-end runs through every engine."""

import numpy as np
import pytest

from repro.problems.flowshop import (
    FLOWSHOP,
    FlowShopInstance,
    FlowShopSchedule,
    batch_flowshop_ct,
    flowshop_ct,
    insertion_makespans,
    load_flowshop_instance,
    make_flowshop,
    neh_order,
    save_flowshop_instance,
)


@pytest.fixture
def inst():
    return make_flowshop(10, 4, seed=1)


def _brute_ct(p, s):
    """Reference O(n*m) DP with explicit table (no rolling row)."""
    n, m = len(s), p.shape[1]
    c = np.zeros((n, m))
    for i, j in enumerate(s):
        for k in range(m):
            up = c[i - 1, k] if i else 0.0
            left = c[i, k - 1] if k else 0.0
            c[i, k] = max(up, left) + p[j, k]
    return c[-1]


class TestEvaluation:
    def test_scalar_dp_matches_reference(self, inst, rng):
        for _ in range(30):
            s = rng.permutation(inst.njobs).astype(np.int32)
            ct = flowshop_ct(inst, s)
            ref = _brute_ct(inst.p, s)
            np.testing.assert_allclose(ct, ref, rtol=1e-12)
            # the ct row is nondecreasing and ends at the makespan
            assert (np.diff(ct) >= 0).all()
            assert ct.max() == ct[-1]

    def test_batch_matches_scalar_bitexact(self, inst, rng):
        S = np.stack(
            [rng.permutation(inst.njobs).astype(np.int32) for _ in range(12)]
        )
        CT = batch_flowshop_ct(inst, S)
        for i in range(12):
            assert np.array_equal(CT[i], flowshop_ct(inst, S[i]))

    def test_single_machine_is_cumsum(self):
        inst1 = make_flowshop(6, 1, seed=2)
        s = np.arange(6, dtype=np.int32)
        ct = flowshop_ct(inst1, s)
        assert ct[0] == pytest.approx(inst1.p[:, 0].sum())

    def test_lower_bound_holds(self, inst, rng):
        lb = inst.makespan_lower_bound()
        for _ in range(20):
            s = rng.permutation(inst.njobs).astype(np.int32)
            assert flowshop_ct(inst, s)[-1] >= lb - 1e-9


class TestTaillardInsertion:
    def test_matches_full_dp_at_every_position(self, inst, rng):
        for _ in range(10):
            perm = rng.permutation(inst.njobs).astype(np.int32)
            R, jobs = perm[:-1][None, :], perm[-1:]
            ms = insertion_makespans(inst, R, jobs)[0]
            L = R.shape[1]
            for pos in range(L + 1):
                full = np.insert(R[0], pos, jobs[0]).astype(np.int32)
                assert ms[pos] == pytest.approx(
                    flowshop_ct(inst, full)[-1], rel=1e-12
                )


class TestNEH:
    def test_neh_is_feasible_and_beats_random(self, inst, rng):
        order = neh_order(inst)
        FLOWSHOP.check_genome(inst, order)
        neh_ms = flowshop_ct(inst, order)[-1]
        random_ms = [
            flowshop_ct(inst, rng.permutation(inst.njobs).astype(np.int32))[-1]
            for _ in range(50)
        ]
        assert neh_ms <= np.mean(random_ms)

    def test_schedule_wrapper(self, inst):
        sched = FlowShopSchedule(inst, neh_order(inst))
        assert sched.makespan() == pytest.approx(
            float(flowshop_ct(inst, sched.s)[-1])
        )


class TestInstanceIO:
    def test_generator_pattern_roundtrip(self):
        inst = load_flowshop_instance("fs8x3.5")
        assert (inst.njobs, inst.nmachines) == (8, 3)
        again = load_flowshop_instance("fs8x3.5")
        assert inst == again

    def test_file_roundtrip(self, inst, tmp_path):
        path = tmp_path / "inst.fsp"
        save_flowshop_instance(inst, path)
        back = load_flowshop_instance(str(path))
        assert back == inst
        assert back.name == inst.name

    def test_bad_spec_lists_valid_forms(self):
        with pytest.raises(ValueError, match="generator spec"):
            load_flowshop_instance("no_such_thing")

    def test_rejects_degenerate_matrices(self):
        with pytest.raises(ValueError):
            FlowShopInstance(np.ones((1, 3)), name="one-job")
        with pytest.raises(ValueError):
            FlowShopInstance(-np.ones((4, 3)), name="negative")


class TestProblemAdoption:
    """build_context resolves the workload from the *instance*."""

    def test_default_config_adopts_flowshop(self):
        from repro.cga import AsyncCGA, CGAConfig, StopCondition

        inst = make_flowshop(8, 3, seed=1)
        # no problem= — a default (independent) config must still
        # resolve flow-shop operators, like Population does
        eng = AsyncCGA(inst, CGAConfig(grid_rows=4, grid_cols=4), rng=0)
        assert eng.config.problem == "flowshop"  # corrected at build time
        res = eng.run(StopCondition(max_generations=2))
        assert res.best_fitness > 0

    def test_foreign_operator_fails_with_problem_error(self):
        from repro.cga import AsyncCGA, CGAConfig

        inst = make_flowshop(8, 3, seed=1)
        with pytest.raises(ValueError, match="for problem 'flowshop'"):
            AsyncCGA(inst, CGAConfig(mutation="rebalance"), rng=0)


class TestEndToEnd:
    ENGINES = [
        ("async", 1, {}),
        ("sync", 1, {}),
        ("vectorized", 1, {}),
        ("sim", 2, {}),
        ("threads", 2, {"lockstep": True}),
        ("shm", 2, {"lockstep": True}),
    ]

    @pytest.mark.parametrize("name,n_threads,extras", ENGINES)
    def test_every_engine_runs_flowshop(self, name, n_threads, extras):
        from repro.cga import CGAConfig, StopCondition
        from repro.runtime.registry import create_engine

        inst = make_flowshop(12, 4, seed=3)
        config = CGAConfig(
            problem="flowshop",
            grid_rows=4,
            grid_cols=4,
            ls_iterations=3,
            n_threads=n_threads,
        )
        engine = create_engine(name, inst, config, seed=9, **extras)
        result = engine.run(StopCondition(max_evaluations=640))
        assert result.evaluations >= 640
        sched = result.best_schedule(inst)
        assert isinstance(sched, FlowShopSchedule)
        assert result.best_fitness == pytest.approx(sched.makespan())
        assert result.best_fitness >= inst.makespan_lower_bound() - 1e-9
        engine.pop.check_invariants()

    def test_processes_engine_runs_flowshop(self):
        from repro.cga import CGAConfig, StopCondition
        from repro.runtime.registry import create_engine

        inst = make_flowshop(12, 4, seed=3)
        config = CGAConfig(
            problem="flowshop", grid_rows=4, grid_cols=4, ls_iterations=2, n_threads=2
        )
        engine = create_engine("processes", inst, config, seed=9)
        result = engine.run(StopCondition(max_evaluations=320))
        assert result.evaluations >= 320
        FLOWSHOP.check_genome(inst, result.best_assignment)

    def test_cga_reaches_or_beats_neh(self):
        # quality smoke: on a harder instance the cGA must at least
        # match its NEH seed within the budget
        from repro.cga import CGAConfig, StopCondition
        from repro.cga.engine import AsyncCGA

        inst = make_flowshop(20, 5, seed=0)
        neh_ms = float(flowshop_ct(inst, neh_order(inst))[-1])
        config = CGAConfig(
            problem="flowshop", grid_rows=6, grid_cols=6, ls_iterations=5
        )
        result = AsyncCGA(inst, config, rng=0).run(
            StopCondition(max_evaluations=4000)
        )
        assert result.best_fitness <= neh_ms + 1e-9


class TestCLI:
    def test_solve_flag(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "solve",
                "--problem",
                "flowshop",
                "--engine",
                "async",
                "--evals",
                "300",
                "--gantt",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fs20x5.0" in out
        assert "job order" in out

    def test_problems_listing(self, capsys):
        from repro.cli import main

        rc = main(["problems"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flowshop" in out and "independent" in out

    def test_generate_flowshop(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "fs.txt"
        rc = main(
            [
                "generate",
                "--problem",
                "flowshop",
                "--ntasks",
                "6",
                "--nmachines",
                "3",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        inst = load_flowshop_instance(str(out_path))
        assert (inst.njobs, inst.nmachines) == (6, 3)

"""Tests for the on-disk experiment cache."""

import numpy as np
import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.experiments.cache import cached_run_many, clear_cache, experiment_key


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


def make_factory(instance, calls):
    def factory(ss):
        calls.append(1)
        return AsyncCGA(instance, CFG, rng=np.random.default_rng(ss)).run(
            StopCondition(max_generations=2)
        )

    return factory


class TestExperimentKey:
    def test_stable(self):
        assert experiment_key(1, "a", (2, 3)) == experiment_key(1, "a", (2, 3))

    def test_sensitive_to_parts(self):
        assert experiment_key(1, "a") != experiment_key(1, "b")
        assert experiment_key(1, "a") != experiment_key(2, "a")

    def test_order_matters(self):
        assert experiment_key("a", "b") != experiment_key("b", "a")


class TestCachedRunMany:
    def test_first_call_computes(self, tiny_instance, tmp_path):
        calls = []
        res = cached_run_many(
            make_factory(tiny_instance, calls), 3, 7, tmp_path, ["k1"], label="x"
        )
        assert len(calls) == 3
        assert res.n_runs == 3

    def test_second_call_hits_cache(self, tiny_instance, tmp_path):
        calls = []
        factory = make_factory(tiny_instance, calls)
        a = cached_run_many(factory, 3, 7, tmp_path, ["k1"])
        b = cached_run_many(factory, 3, 7, tmp_path, ["k1"])
        assert len(calls) == 3  # no recomputation
        assert np.array_equal(a.best_fitnesses, b.best_fitnesses)

    def test_extending_runs_only_computes_new(self, tiny_instance, tmp_path):
        calls = []
        factory = make_factory(tiny_instance, calls)
        cached_run_many(factory, 2, 7, tmp_path, ["k1"])
        cached_run_many(factory, 5, 7, tmp_path, ["k1"])
        assert len(calls) == 5  # 2 + 3 new

    def test_different_keys_isolated(self, tiny_instance, tmp_path):
        calls = []
        factory = make_factory(tiny_instance, calls)
        cached_run_many(factory, 2, 7, tmp_path, ["k1"])
        cached_run_many(factory, 2, 7, tmp_path, ["k2"])
        assert len(calls) == 4

    def test_corrupt_entry_recomputed(self, tiny_instance, tmp_path):
        calls = []
        factory = make_factory(tiny_instance, calls)
        cached_run_many(factory, 1, 7, tmp_path, ["k1"])
        victim = next(tmp_path.rglob("run_0.json"))
        victim.write_text("{not json")
        res = cached_run_many(factory, 1, 7, tmp_path, ["k1"])
        assert len(calls) == 2
        assert res.n_runs == 1

    def test_cached_equals_fresh(self, tiny_instance, tmp_path):
        from repro.experiments import run_many

        calls = []
        factory = make_factory(tiny_instance, calls)
        cached = cached_run_many(factory, 3, 11, tmp_path, ["k"])
        fresh = run_many(factory, 3, 11)
        assert np.array_equal(cached.best_fitnesses, fresh.best_fitnesses)

    def test_rejects_zero_runs(self, tiny_instance, tmp_path):
        with pytest.raises(ValueError):
            cached_run_many(make_factory(tiny_instance, []), 0, 7, tmp_path, ["k"])


class TestClearCache:
    def test_removes_entries(self, tiny_instance, tmp_path):
        calls = []
        cached_run_many(make_factory(tiny_instance, calls), 3, 7, tmp_path, ["k"])
        removed = clear_cache(tmp_path)
        assert removed == 3
        assert not list(tmp_path.rglob("run_*.json"))

    def test_missing_dir_is_zero(self, tmp_path):
        assert clear_cache(tmp_path / "nope") == 0

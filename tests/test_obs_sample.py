"""Statistical sampling profiler: collapsed stacks + cProfile agreement."""

import cProfile
import pstats
import threading
import time
from collections import Counter

import pytest

from repro.obs.profile import _func_label
from repro.obs.sample import (
    StackSampler,
    frame_label,
    hot_functions,
    load_merged_samples,
    merge_collapsed,
    parse_collapsed,
    profile_workload,
    render_collapsed,
)


# -- a deterministic two-peak synthetic workload ---------------------------

def _spin(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def busy_a():
    return _spin(20_000)


def busy_b():
    return _spin(5_000)


def workload():
    busy_a()
    busy_b()


class TestCollapsedFormat:
    def test_render_parse_roundtrip(self):
        counts = Counter({"a;b;c": 5, "a;d": 2})
        assert parse_collapsed(render_collapsed(counts)) == counts

    def test_render_skips_zero_counts(self):
        assert render_collapsed({"a;b": 0}) == ""
        assert render_collapsed({}) == ""

    def test_parse_tolerates_garbage(self):
        text = "a;b 3\n\nnot-a-count x\n   \nc 2\n"
        counts = parse_collapsed(text)
        assert counts == Counter({"a;b": 3, "c": 2})

    def test_merge_is_addition(self):
        a = render_collapsed({"x;y": 2, "x;z": 1})
        b = render_collapsed({"x;y": 3, "w": 4})
        merged = parse_collapsed(merge_collapsed([a, b]))
        assert merged == Counter({"x;y": 5, "x;z": 1, "w": 4})

    def test_hot_functions_cumulative_once_per_stack(self):
        # "x" appears in both stacks -> charged both counts; a frame
        # repeated within one stack (recursion) is charged once
        text = "x;y;x 3\nx;z 2\n"
        hot = dict(hot_functions(text))
        assert hot["x"] == 5
        assert hot["y"] == 3
        assert hot["z"] == 2


class TestStackSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            StackSampler(interval_s=0)

    def test_sample_once_sees_other_threads(self):
        stop = threading.Event()

        def pinned():
            while not stop.wait(0.005):
                pass

        t = threading.Thread(target=pinned, name="victim", daemon=True)
        t.start()
        try:
            sampler = StackSampler()
            recorded = sampler.sample_once()
            assert recorded >= 1
            assert any("pinned" in stack for stack in sampler.counts)
        finally:
            stop.set()
            t.join()

    def test_excludes_obs_threads_by_default(self):
        stop = threading.Event()

        def fake_obs():
            while not stop.wait(0.005):
                pass

        t = threading.Thread(target=fake_obs, name="obs-resources", daemon=True)
        t.start()
        try:
            sampler = StackSampler()
            sampler.sample_once()
            assert not any("fake_obs" in s for s in sampler.counts)
            inclusive = StackSampler(include_obs_threads=True)
            inclusive.sample_once()
            assert any("fake_obs" in s for s in inclusive.counts)
        finally:
            stop.set()
            t.join()

    def test_start_stop_writes_collapsed_file(self, tmp_path):
        out = tmp_path / "samples-w0.collapsed"
        sampler = StackSampler(interval_s=0.001, out_path=out).start()
        stop = threading.Event()
        t = threading.Thread(
            target=lambda: [workload() for _ in iter(lambda: stop.is_set(), True)],
            daemon=True,
        )
        t.start()
        time.sleep(0.15)
        stop.set()
        t.join()
        text = sampler.stop()
        assert out.read_text() == text
        assert sampler.n_samples > 0
        assert sum(parse_collapsed(text).values()) > 0

    def test_frame_label_matches_cprofile_label(self):
        import sys

        frame = sys._getframe()
        code = frame.f_code
        expected = _func_label((code.co_filename, code.co_firstlineno, code.co_name))
        assert frame_label(frame) == expected
        assert expected.endswith("(test_frame_label_matches_cprofile_label)")


class TestLoadMergedSamples:
    def test_prefers_finalized_file(self, tmp_path):
        (tmp_path / "samples.collapsed").write_text("a;b 3\n")
        flight = tmp_path / "flight"
        flight.mkdir()
        (flight / "samples-w0.collapsed").write_text("c 1\n")
        assert load_merged_samples(tmp_path) == "a;b 3\n"

    def test_merges_worker_files(self, tmp_path):
        flight = tmp_path / "flight"
        flight.mkdir()
        (flight / "samples-w0.collapsed").write_text("a;b 1\n")
        (flight / "samples-w1.collapsed").write_text("a;b 2\n")
        assert parse_collapsed(load_merged_samples(tmp_path)) == Counter({"a;b": 3})

    def test_none_when_absent(self, tmp_path):
        assert load_merged_samples(tmp_path) is None


class TestCProfileAgreement:
    """Acceptance criterion: on a single-process run, the sampler's hot
    functions agree with cProfile's on the same workload."""

    def test_top_functions_agree(self):
        modname = __file__.split("/")[-1]
        collapsed = profile_workload(workload, interval_s=0.001, min_s=0.4)
        # the full ranking is dominated by the test harness's own call
        # stack (present in every sample); compare on this module only
        sampled_hot = [
            label
            for label, _ in hot_functions(collapsed, top=10_000)
            if modname in label
        ][:5]
        assert any("busy_a" in label for label in sampled_hot)
        assert any("_spin" in label for label in sampled_hot)

        profiler = cProfile.Profile()
        profiler.enable()
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < 0.4:
            workload()
        profiler.disable()
        stats = pstats.Stats(profiler)
        by_cumtime = sorted(
            stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
        )
        cprofile_hot = [
            _func_label(func)
            for func, _ in by_cumtime
            if modname in str(func[0])  # this module's functions
        ][:5]
        assert cprofile_hot, "cProfile saw none of the workload functions"
        # cProfile's top-5 hot functions of this module must all appear
        # in the sampler's top-5 under the *identical* label scheme
        missing = set(cprofile_hot) - set(sampled_hot)
        assert not missing, (
            f"sampler hot {sampled_hot} missing cProfile hot {missing}"
        )

    def test_sampler_and_cprofile_rank_spin_hottest(self):
        collapsed = profile_workload(workload, interval_s=0.001, min_s=0.4)
        own = [
            (label, n)
            for label, n in hot_functions(collapsed, top=10_000)
            if "test_obs_sample" in label
        ]
        assert own, "sampler recorded no frames from this module"
        # _spin is where the work happens; it must be the hottest leaf-ish
        # frame among this module's functions after the harness wrappers
        labels = [label for label, _ in own]
        spin_rank = next(i for i, lb in enumerate(labels) if "_spin" in lb)
        busy_b_rank = next(
            (i for i, lb in enumerate(labels) if "busy_b" in lb), len(labels)
        )
        assert spin_rank < busy_b_rank

"""Kernel-vs-scalar equivalence: batch kernels must reproduce the
scalar ``Schedule``/operator semantics on randomized instances.

These tests gate the vectorized engine: every batch kernel is checked
against its scalar reference (``compute_completion_times``,
``Schedule.apply_delta``, the fitness functions, the selectors) or, for
the randomized kernels, against the invariants the scalar operator
guarantees (CT stays exact, makespan never increases under H2LL,
assignments stay in range).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cga.fitness import makespan_fitness, weighted_fitness
from repro.cga.selection import best_two, center_plus_best
from repro.etc import make_instance
from repro.kernels import (
    BATCH_CROSSOVER_MASKS,
    BATCH_FITNESS,
    BATCH_LOCAL_SEARCHES,
    BATCH_MUTATIONS,
    BATCH_SELECTIONS,
    batch_best_two,
    batch_center_plus_best,
    batch_completion_times,
    batch_ct_delta,
    batch_h2ll,
    batch_makespan,
    batch_mean_flowtime,
    batch_random_pair,
    batch_resync_drift,
    batch_tournament_pair,
    batch_weighted_fitness,
    crossover_mask,
    resolve_batch_fitness,
    resolve_batch_selection,
)
from repro.scheduling.schedule import Schedule, compute_completion_times

# shared hypothesis strategy: a random instance geometry + seed
geometries = st.tuples(
    st.integers(min_value=2, max_value=40),  # ntasks
    st.integers(min_value=2, max_value=12),  # nmachines
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


def _random_batch(ntasks, nmachines, seed, P=7):
    inst = make_instance(ntasks, nmachines, consistency="i", seed=seed % 997, name="prop")
    rng = np.random.default_rng(seed)
    S = rng.integers(0, nmachines, size=(P, ntasks)).astype(np.int32)
    return inst, rng, S


class TestBatchCompletionTimes:
    @settings(max_examples=25, deadline=None)
    @given(geometries)
    def test_matches_scalar_rowwise(self, geom):
        inst, _, S = _random_batch(*geom)
        ct = batch_completion_times(inst, S)
        for i in range(S.shape[0]):
            np.testing.assert_allclose(
                ct[i], compute_completion_times(inst, S[i]), rtol=1e-12
            )

    def test_respects_ready_times(self, rng):
        inst = make_instance(10, 3, consistency="i", seed=5)
        ready = np.array([1.0, 2.0, 3.0])
        from repro.etc.model import ETCMatrix

        inst2 = ETCMatrix(inst.etc, ready_times=ready, name="ready")
        S = rng.integers(0, 3, size=(4, 10)).astype(np.int32)
        ct = batch_completion_times(inst2, S)
        for i in range(4):
            np.testing.assert_allclose(ct[i], compute_completion_times(inst2, S[i]))

    def test_rejects_bad_shape(self, tiny_instance):
        with pytest.raises(ValueError, match="must be"):
            batch_completion_times(tiny_instance, np.zeros(tiny_instance.ntasks, dtype=np.int32))


class TestBatchCtDelta:
    @settings(max_examples=25, deadline=None)
    @given(geometries)
    def test_matches_apply_delta(self, geom):
        inst, rng, S = _random_batch(*geom)
        ct = batch_completion_times(inst, S)
        new_S = S.copy()
        # random reassignment of a random subset of genes per row
        flip = rng.random(S.shape) < 0.4
        new_S[flip] = rng.integers(0, inst.nmachines, size=int(flip.sum()), dtype=np.int32)
        batch_ct_delta(inst, ct, S, new_S)
        for i in range(S.shape[0]):
            sched = Schedule(inst, S[i])
            changed = np.flatnonzero(S[i] != new_S[i])
            sched.apply_delta(changed, new_S[i, changed])
            np.testing.assert_allclose(ct[i], sched.ct, rtol=1e-9, atol=1e-6)

    def test_noop_delta_keeps_ct(self, tiny_instance, rng):
        S = rng.integers(0, tiny_instance.nmachines, size=(3, tiny_instance.ntasks)).astype(np.int32)
        ct = batch_completion_times(tiny_instance, S)
        expected = ct.copy()
        batch_ct_delta(tiny_instance, ct, S, S.copy())
        np.testing.assert_array_equal(ct, expected)


class TestBatchFitness:
    @settings(max_examples=25, deadline=None)
    @given(geometries)
    def test_makespan_and_flowtime_match_scalar(self, geom):
        inst, _, S = _random_batch(*geom)
        ct = batch_completion_times(inst, S)
        ms = batch_makespan(S, ct, inst)
        wf = batch_weighted_fitness(S, ct, inst)
        mf = batch_mean_flowtime(S, inst)
        for i in range(S.shape[0]):
            assert ms[i] == pytest.approx(makespan_fitness(S[i], ct[i], inst))
            assert wf[i] == pytest.approx(weighted_fitness(S[i], ct[i], inst))
            assert mf[i] == pytest.approx(
                weighted_fitness(S[i], ct[i], inst, lam=0.0), rel=1e-9
            )

    def test_registry_covers_scalar_names(self):
        from repro.cga.fitness import FITNESS

        assert set(BATCH_FITNESS) == set(FITNESS)

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="no batch fitness"):
            resolve_batch_fitness("tardiness")


class TestBatchSelection:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_best_two_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        fit = rng.random((11, 5)) * 100
        a, b = batch_best_two(fit, rng)
        for i in range(fit.shape[0]):
            sa, sb = best_two(fit[i], rng)
            assert (int(a[i]), int(b[i])) == (sa, sb)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_center_plus_best_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        fit = rng.random((11, 5)) * 100
        a, b = batch_center_plus_best(fit, rng)
        for i in range(fit.shape[0]):
            sa, sb = center_plus_best(fit[i], rng)
            assert (int(a[i]), int(b[i])) == (sa, sb)

    def test_random_pair_distinct(self, rng):
        fit = rng.random((200, 5))
        a, b = batch_random_pair(fit, rng)
        assert np.all(a != b)
        assert a.min() >= 0 and a.max() < 5
        assert b.min() >= 0 and b.max() < 5

    def test_tournament_in_range(self, rng):
        fit = rng.random((200, 5))
        a, b = batch_tournament_pair(fit, rng)
        for arr in (a, b):
            assert arr.min() >= 0 and arr.max() < 5

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="no batch selection"):
            resolve_batch_selection("rank")  # no batch kernel (weighted sampling)


class TestCrossoverMask:
    @pytest.mark.parametrize("name", sorted(BATCH_CROSSOVER_MASKS))
    def test_child_ct_consistent(self, name, tiny_instance, rng):
        P, nt = 9, tiny_instance.ntasks
        S1 = rng.integers(0, tiny_instance.nmachines, size=(P, nt)).astype(np.int32)
        S2 = rng.integers(0, tiny_instance.nmachines, size=(P, nt)).astype(np.int32)
        ct = batch_completion_times(tiny_instance, S1)
        mask = crossover_mask(name, P, nt, rng)
        child = np.where(mask, S2, S1)
        batch_ct_delta(tiny_instance, ct, S1, child)
        assert batch_resync_drift(tiny_instance, child, ct) < 1e-6

    def test_opx_mask_is_suffix(self, rng):
        mask = crossover_mask("opx", 50, 20, rng)
        # each row: False prefix then True suffix, both non-empty
        for row in mask:
            changes = np.flatnonzero(np.diff(row.astype(int)))
            assert changes.size == 1 and not row[0] and row[-1]

    def test_tpx_mask_is_window(self, rng):
        mask = crossover_mask("tpx", 50, 20, rng)
        for row in mask:
            changes = np.flatnonzero(np.diff(row.astype(int)))
            assert changes.size <= 2  # single (possibly empty/edge) window

    def test_inactive_rows_untouched(self, rng):
        active = np.zeros(10, dtype=bool)
        mask = crossover_mask("tpx", 10, 20, rng, active=active)
        assert not mask.any()


class TestBatchMutations:
    @pytest.mark.parametrize("name", sorted(BATCH_MUTATIONS))
    @settings(max_examples=15, deadline=None)
    @given(geometries)
    def test_ct_invariant_and_valid_assignment(self, name, geom):
        inst, rng, S = _random_batch(*geom)
        ct = batch_completion_times(inst, S)
        active = rng.random(S.shape[0]) < 0.7
        BATCH_MUTATIONS[name](S, ct, inst, rng, active)
        assert S.min() >= 0 and S.max() < inst.nmachines
        assert batch_resync_drift(inst, S, ct) < 1e-6

    def test_inactive_rows_untouched(self, tiny_instance, rng):
        S = rng.integers(0, tiny_instance.nmachines, size=(6, tiny_instance.ntasks)).astype(np.int32)
        ct = batch_completion_times(tiny_instance, S)
        before_s, before_ct = S.copy(), ct.copy()
        for name in BATCH_MUTATIONS:
            BATCH_MUTATIONS[name](S, ct, tiny_instance, rng, np.zeros(6, dtype=bool))
        np.testing.assert_array_equal(S, before_s)
        np.testing.assert_array_equal(ct, before_ct)


class TestBatchH2LL:
    @settings(max_examples=15, deadline=None)
    @given(geometries)
    def test_h2ll_invariants(self, geom):
        """Batch H2LL: monotone per-row makespan, exact CT, valid S."""
        inst, rng, S = _random_batch(*geom)
        ct = batch_completion_times(inst, S)
        before = ct.max(axis=1).copy()
        moves = batch_h2ll(S, ct, inst, rng, iterations=5)
        after = ct.max(axis=1)
        assert np.all(after <= before + 1e-9)
        assert S.min() >= 0 and S.max() < inst.nmachines
        assert batch_resync_drift(inst, S, ct) < 1e-6
        assert moves >= 0

    def test_improves_unbalanced_population(self, small_instance, rng):
        """Everything on machine 0: one pass must strictly improve."""
        P = 8
        S = np.zeros((P, small_instance.ntasks), dtype=np.int32)
        ct = batch_completion_times(small_instance, S)
        before = ct.max(axis=1).copy()
        moves = batch_h2ll(S, ct, small_instance, rng, iterations=3)
        assert moves > 0
        assert np.all(ct.max(axis=1) < before)

    def test_zero_iterations_noop(self, tiny_instance, rng):
        S = rng.integers(0, tiny_instance.nmachines, size=(3, tiny_instance.ntasks)).astype(np.int32)
        ct = batch_completion_times(tiny_instance, S)
        assert batch_h2ll(S, ct, tiny_instance, rng, iterations=0) == 0

    def test_registry(self):
        assert "h2ll" in BATCH_LOCAL_SEARCHES
        assert set(BATCH_SELECTIONS) >= {"best2", "tournament", "random"}

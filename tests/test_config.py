"""Tests for CGAConfig and StopCondition (Table 1)."""

import math

import pytest

from repro.cga import CGAConfig, StopCondition


class TestCGAConfigDefaults:
    def test_table1_values(self):
        c = CGAConfig()
        assert (c.grid_rows, c.grid_cols) == (16, 16)
        assert c.population_size == 256
        assert c.neighborhood == "l5"
        assert c.selection == "best2"
        assert c.p_comb == 1.0
        assert c.mutation == "move"
        assert c.p_mut == 1.0
        assert c.local_search == "h2ll"
        assert c.p_ls == 1.0
        assert c.replacement == "if-better"
        assert c.seed_with_minmin

    def test_describe_mentions_key_rows(self):
        text = CGAConfig().describe()
        assert "16x16" in text
        assert "Min-min" in text
        assert "line sweep" in text

    def test_with_updates(self):
        c = CGAConfig().with_(n_threads=3, crossover="opx")
        assert c.n_threads == 3
        assert c.crossover == "opx"
        assert CGAConfig().n_threads == 1  # original untouched


class TestCGAConfigValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError, match="p_mut"):
            CGAConfig(p_mut=1.5)

    def test_bad_neighborhood(self):
        with pytest.raises(ValueError, match="neighborhood"):
            CGAConfig(neighborhood="l7")

    def test_bad_selection(self):
        with pytest.raises(ValueError, match="selection"):
            CGAConfig(selection="elitist")

    def test_bad_crossover(self):
        with pytest.raises(ValueError, match="crossover"):
            CGAConfig(crossover="pmx")

    def test_bad_local_search(self):
        with pytest.raises(ValueError, match="local search"):
            CGAConfig(local_search="h3ll")

    def test_none_local_search_ok(self):
        assert CGAConfig(local_search=None).resolve().local_search is None

    def test_thread_bounds(self):
        with pytest.raises(ValueError, match="n_threads"):
            CGAConfig(n_threads=0)
        with pytest.raises(ValueError, match="n_threads"):
            CGAConfig(grid_rows=2, grid_cols=2, n_threads=5)

    def test_negative_ls_iterations(self):
        with pytest.raises(ValueError, match="ls_iterations"):
            CGAConfig(ls_iterations=-1)

    def test_resolve_binds_callables(self):
        ops = CGAConfig().resolve()
        assert callable(ops.select)
        assert callable(ops.crossover)
        assert callable(ops.mutate)
        assert callable(ops.local_search)
        assert callable(ops.replace)


class TestStopCondition:
    def test_needs_a_bound(self):
        with pytest.raises(ValueError, match="at least one bound"):
            StopCondition()

    def test_max_evaluations(self):
        s = StopCondition(max_evaluations=10)
        assert not s.done(evaluations=9)
        assert s.done(evaluations=10)

    def test_max_generations(self):
        s = StopCondition(max_generations=3)
        assert not s.done(generations=2)
        assert s.done(generations=3)

    def test_wall_time(self):
        s = StopCondition(wall_time_s=1.0)
        assert not s.done(elapsed=0.5)
        assert s.done(elapsed=1.0)

    def test_target_fitness(self):
        s = StopCondition(target_fitness=100.0)
        assert not s.done(best_fitness=101.0)
        assert s.done(best_fitness=100.0)

    def test_virtual_time_alone_is_a_bound(self):
        s = StopCondition(virtual_time=0.5)
        # virtual time is checked by the sim engine, not done()
        assert not s.done(evaluations=10**9)

    def test_any_bound_triggers(self):
        s = StopCondition(max_evaluations=10, max_generations=100)
        assert s.done(evaluations=10, generations=0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            StopCondition(wall_time_s=0.0)
        with pytest.raises(ValueError):
            StopCondition(virtual_time=-1.0)
        with pytest.raises(ValueError):
            StopCondition(wall_time_s=math.inf)

    def test_rejects_zero_evaluations(self):
        with pytest.raises(ValueError):
            StopCondition(max_evaluations=0)

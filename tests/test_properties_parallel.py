"""Property-based tests for the cost model and the simulator."""

from hypothesis import given, settings, strategies as st

from repro.cga import CGAConfig, StopCondition
from repro.etc import make_instance
from repro.parallel import CostModel, SimulatedPACGA


INST = make_instance(24, 4, consistency="i", seed=77, name="prop-parallel")


cost_models = st.builds(
    CostModel,
    t_breed=st.floats(0.5, 50.0),
    t_ls_iter=st.floats(0.0, 50.0),
    t_lock=st.floats(0.0, 50.0),
    t_boundary=st.floats(0.0, 200.0),
    cache_alpha=st.floats(0.0, 0.2),
    cache_beta=st.floats(0.0, 0.5),
    jitter_sigma=st.just(0.0),
)


@given(cost_models, st.integers(1, 8), st.integers(0, 20))
@settings(max_examples=80, deadline=None)
def test_step_cost_positive_and_boundary_monotone(model, n, iters):
    inner = model.step_cost(n, iters, crosses_boundary=False)
    border = model.step_cost(n, iters, crosses_boundary=True)
    assert inner > 0
    assert border >= inner


@given(cost_models, st.integers(1, 8), st.integers(0, 20), st.floats(0.0, 1.0))
@settings(max_examples=80, deadline=None)
def test_expected_cost_between_extremes(model, n, iters, bf):
    expected = model.expected_step_cost(n, iters, bf)
    lo = model.expected_step_cost(n, iters, 0.0)
    hi = model.expected_step_cost(n, iters, 1.0)
    assert lo - 1e-9 <= expected <= hi + 1e-9


@given(cost_models, st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_single_thread_speedup_is_identity(model, iters):
    assert model.predicted_speedup(1, iters, 0.0) == 1.0


@given(cost_models, st.integers(2, 8), st.integers(0, 20), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_speedup_bounded_by_thread_count(model, n, iters, bf):
    s = model.predicted_speedup(n, iters, bf)
    assert 0.0 < s <= n + 1e-9


@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_sim_more_virtual_time_never_fewer_evaluations(seed, n_threads):
    config = CGAConfig(
        grid_rows=4, grid_cols=4, n_threads=n_threads, ls_iterations=1,
        seed_with_minmin=False,
    )
    short = SimulatedPACGA(INST, config, seed=seed).run(
        StopCondition(virtual_time=0.001)
    )
    long = SimulatedPACGA(INST, config, seed=seed).run(
        StopCondition(virtual_time=0.003)
    )
    assert long.evaluations >= short.evaluations


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_sim_population_invariants_hold_for_any_seed(seed):
    config = CGAConfig(
        grid_rows=4, grid_cols=4, n_threads=3, ls_iterations=2, seed_with_minmin=False
    )
    sim = SimulatedPACGA(INST, config, seed=seed)
    sim.run(StopCondition(max_generations=3))
    sim.pop.check_invariants()

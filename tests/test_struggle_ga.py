"""Tests for the Struggle GA baseline."""

import numpy as np
import pytest

from repro.baselines import StruggleGA
from repro.cga import StopCondition
from repro.scheduling.validation import check_completion_times, validate_assignment


class TestConstruction:
    def test_population_shapes(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=10, rng=0)
        assert ga.s.shape == (10, tiny_instance.ntasks)
        assert ga.fitness.shape == (10,)

    def test_minmin_seed(self, tiny_instance):
        from repro.heuristics import min_min

        ga = StruggleGA(tiny_instance, pop_size=8, rng=0)
        assert np.array_equal(ga.s[0], min_min(tiny_instance).s)

    def test_no_seed_option(self, tiny_instance):
        from repro.heuristics import min_min

        ga = StruggleGA(tiny_instance, pop_size=8, seed_with_minmin=False, rng=0)
        assert not np.array_equal(ga.s[0], min_min(tiny_instance).s)

    def test_initial_ct_consistent(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=6, rng=0)
        for i in range(6):
            check_completion_times(tiny_instance, ga.s[i], ga.ct[i])

    def test_rejects_tiny_population(self, tiny_instance):
        with pytest.raises(ValueError):
            StruggleGA(tiny_instance, pop_size=1)

    def test_rejects_bad_tournament(self, tiny_instance):
        with pytest.raises(ValueError):
            StruggleGA(tiny_instance, tournament=0)


class TestRun:
    def test_improves(self, small_instance):
        ga = StruggleGA(small_instance, pop_size=16, rng=1)
        initial = float(ga.fitness.min())
        res = ga.run(StopCondition(max_evaluations=800))
        assert res.best_fitness <= initial
        assert res.evaluations == 800

    def test_population_stays_consistent(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=8, rng=2)
        ga.run(StopCondition(max_evaluations=300))
        for i in range(8):
            validate_assignment(tiny_instance, ga.s[i])
            check_completion_times(tiny_instance, ga.s[i], ga.ct[i])
            assert ga.fitness[i] == pytest.approx(ga.ct[i].max())

    def test_deterministic(self, tiny_instance):
        a = StruggleGA(tiny_instance, pop_size=8, rng=3).run(StopCondition(max_evaluations=200))
        b = StruggleGA(tiny_instance, pop_size=8, rng=3).run(StopCondition(max_evaluations=200))
        assert a.best_fitness == b.best_fitness

    def test_history_shape(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=8, rng=0)
        res = ga.run(StopCondition(max_evaluations=40))
        assert len(res.history) == 1 + 40 // 8
        gens = [row[0] for row in res.history]
        assert gens == sorted(gens)

    def test_extra_metadata(self, tiny_instance):
        res = StruggleGA(tiny_instance, pop_size=8, rng=0).run(
            StopCondition(max_evaluations=16)
        )
        assert res.extra["algorithm"] == "struggle-ga"


class TestReplacementPolicies:
    def test_all_policies_run_and_improve(self, small_instance):
        for policy in StruggleGA.REPLACEMENTS:
            ga = StruggleGA(small_instance, pop_size=16, replacement=policy, rng=1)
            initial = float(ga.fitness.min())
            res = ga.run(StopCondition(max_evaluations=600))
            assert res.best_fitness <= initial, policy
            assert res.extra["replacement"] == policy

    def test_unknown_policy_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="replacement"):
            StruggleGA(tiny_instance, replacement="crowding")

    def test_worst_policy_targets_worst(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=8, replacement="worst", rng=0)
        worst = int(ga.fitness.argmax())
        child = ga.s[0].copy()
        assert ga._pick_victim(child) == worst

    def test_struggle_keeps_more_diversity_than_worst(self, small_instance):
        # ref [19]'s central finding: similarity-based replacement
        # preserves genotypic diversity versus replace-worst
        def final_diversity(policy):
            ga = StruggleGA(
                small_instance, pop_size=24, replacement=policy,
                seed_with_minmin=False, rng=3,
            )
            ga.run(StopCondition(max_evaluations=3000))
            pairs = 0
            dist = 0.0
            for i in range(ga.pop_size):
                for j in range(i + 1, ga.pop_size):
                    dist += float((ga.s[i] != ga.s[j]).mean())
                    pairs += 1
            return dist / pairs

        assert final_diversity("struggle") > final_diversity("worst")


class TestStruggleReplacement:
    def test_replaces_most_similar_when_better(self, tiny_instance):
        ga = StruggleGA(tiny_instance, pop_size=4, rng=0)
        # craft a child identical to individual 2 except better: we force
        # similarity to pick index 2
        child = ga.s[2].copy()
        rival = ga._most_similar(child)
        assert rival == 2

    def test_best_never_degrades(self, small_instance):
        ga = StruggleGA(small_instance, pop_size=16, rng=4)
        best0 = float(ga.fitness.min())
        trace = []
        for _ in range(5):
            res = ga.run(StopCondition(max_evaluations=100))
            trace.append(res.best_fitness)
        assert all(b <= best0 + 1e-9 for b in trace)
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))

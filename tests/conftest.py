"""Shared fixtures: instances of several sizes and a seeded RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.etc import load_benchmark, make_instance


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_instance():
    """16 tasks x 4 machines — fast enough for exhaustive checks."""
    return make_instance(16, 4, consistency="i", seed=7, name="tiny")


@pytest.fixture
def small_instance():
    """64 tasks x 8 machines — realistic structure, still fast."""
    return make_instance(64, 8, consistency="i", seed=11, name="small")


@pytest.fixture(scope="session")
def benchmark_instance():
    """One real 512x16 benchmark instance (session-cached)."""
    return load_benchmark("u_i_hilo.0")


@pytest.fixture(scope="session")
def consistent_instance():
    """A consistent 512x16 benchmark instance (session-cached)."""
    return load_benchmark("u_c_hihi.0")

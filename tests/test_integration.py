"""Integration tests: full pipelines across modules.

Each test exercises a realistic end-to-end path a user of the library
would take — instance → algorithm → result → analysis — rather than a
single unit.
"""

import numpy as np
import pytest

from repro import (
    AsyncCGA,
    CGAConfig,
    CMALTH,
    ProcessPACGA,
    SimulatedPACGA,
    StopCondition,
    StruggleGA,
    SyncCGA,
    ThreadedPACGA,
    load_benchmark,
    make_instance,
    min_min,
)
from repro.scheduling import makespan
from repro.scheduling.validation import validate_assignment


BUDGET = StopCondition(max_evaluations=1500)
CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=3)


def _engines(instance):
    return {
        "async": AsyncCGA(instance, CFG, rng=0),
        "sync": SyncCGA(instance, CFG, rng=0),
        "threads": ThreadedPACGA(instance, CFG.with_(n_threads=2), seed=0),
        "processes": ProcessPACGA(instance, CFG.with_(n_threads=2), seed=0),
        "sim": SimulatedPACGA(instance, CFG.with_(n_threads=2), seed=0),
    }


class TestEveryEngineOnBenchmark:
    @pytest.mark.parametrize("name", ["async", "sync", "threads", "processes", "sim"])
    def test_engine_beats_minmin_seeded_start(self, benchmark_instance, name):
        engine = _engines(benchmark_instance)[name]
        res = engine.run(BUDGET)
        mm = min_min(benchmark_instance).makespan()
        # Min-min seeds the population, elitist replacement keeps it:
        # every engine must end at or below the Min-min makespan.
        assert res.best_fitness <= mm + 1e-6
        validate_assignment(benchmark_instance, res.best_assignment)
        # reported fitness must be reproducible from the assignment alone
        assert makespan(benchmark_instance, res.best_assignment) == pytest.approx(
            res.best_fitness
        )


class TestCrossEngineConsistency:
    def test_all_engines_land_in_same_quality_band(self, benchmark_instance):
        results = {
            name: eng.run(BUDGET).best_fitness
            for name, eng in _engines(benchmark_instance).items()
        }
        best, worst = min(results.values()), max(results.values())
        # same operators, same budget: no engine may be wildly off
        assert worst <= best * 1.10, results

    def test_sim_single_thread_equals_async_genetics(self, small_instance):
        # with one logical thread, identical seeds and sweep order, the
        # simulator replays the canonical async CGA exactly
        from repro.rng import spawn_rngs

        config = CFG.with_(n_threads=1, seed_with_minmin=False)
        sim = SimulatedPACGA(small_instance, config, seed=42)
        eng = AsyncCGA(small_instance, config, rng=None)
        # align populations and streams: copy sim's initial state and
        # rebuild the same genetic stream the sim's thread 0 will use
        eng.pop.s[:] = sim.pop.s
        eng.pop.ct[:] = sim.pop.ct
        eng.pop.fitness[:] = sim.pop.fitness
        eng.rng = spawn_rngs(42, 3)[1]
        r_sim = sim.run(StopCondition(max_generations=3))
        r_eng = eng.run(StopCondition(max_generations=3))
        assert r_sim.best_fitness == pytest.approx(r_eng.best_fitness)
        assert np.array_equal(r_sim.best_assignment, r_eng.best_assignment)


class TestBaselinesIntegration:
    def test_pa_cga_beats_struggle_ga_on_hihi(self):
        # the paper's headline: PA-CGA improves on the panmictic GA for
        # high-heterogeneity instances at equal evaluation budgets
        inst = load_benchmark("u_i_hihi.0")
        budget = StopCondition(max_evaluations=4000)
        pa = SimulatedPACGA(inst, CGAConfig(n_threads=3, ls_iterations=10), seed=1).run(
            budget
        )
        sg = StruggleGA(inst, rng=1).run(budget)
        assert pa.best_fitness < sg.best_fitness

    def test_cma_lth_competitive(self, benchmark_instance):
        budget = StopCondition(max_evaluations=1500)
        cma = CMALTH(benchmark_instance, rng=1, config=CGAConfig(
            grid_rows=6, grid_cols=6, local_search="lth", selection="tournament",
        )).run(budget)
        mm = min_min(benchmark_instance).makespan()
        assert cma.best_fitness <= mm


class TestScalesBeyondPaper:
    def test_bigger_instance_runs(self):
        # future work (§5): bigger benchmark instances
        inst = make_instance(2048, 64, consistency="i", seed=5, name="big")
        eng = SimulatedPACGA(inst, CGAConfig(n_threads=4, ls_iterations=5), seed=0)
        res = eng.run(StopCondition(max_evaluations=600))
        assert res.best_fitness < np.inf
        validate_assignment(inst, res.best_assignment)

    def test_many_threads_partition(self):
        inst = make_instance(128, 8, seed=3)
        eng = SimulatedPACGA(inst, CGAConfig(n_threads=16, ls_iterations=1), seed=0)
        res = eng.run(StopCondition(max_generations=2))
        assert len(res.extra["per_thread_generations"]) == 16

    def test_nonsquare_grid(self):
        inst = make_instance(64, 8, seed=4)
        config = CGAConfig(grid_rows=8, grid_cols=32, n_threads=3, ls_iterations=1)
        eng = SimulatedPACGA(inst, config, seed=0)
        res = eng.run(StopCondition(max_generations=2))
        assert res.evaluations >= 2 * 256


class TestReproducibilityAcrossEngines:
    def test_sim_run_fully_reproducible_with_everything_on(self, benchmark_instance):
        def once():
            eng = SimulatedPACGA(
                benchmark_instance,
                CGAConfig(n_threads=4, crossover="tpx", ls_iterations=10),
                seed=2024,
            )
            return eng.run(StopCondition(virtual_time=0.01))

        a, b = once(), once()
        assert a.best_fitness == b.best_fitness
        assert a.evaluations == b.evaluations
        assert a.extra["per_thread_clocks"] == b.extra["per_thread_clocks"]
        assert [tuple(r) for r in a.history] == [tuple(r) for r in b.history]

"""End-to-end observability tests: engines -> bundles, and the
zero-overhead-when-disabled guarantee."""

import json

import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.cga.vectorized import VectorizedSyncCGA
from repro.obs import (
    ObsConfig,
    Observer,
    load_bundle,
    load_grid_rows,
    render_markdown,
    render_terminal,
)
from repro.obs.metrics import MetricRecorder
from repro.obs.observer import resolve_observer
from repro.parallel import SimulatedPACGA, ThreadedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)
BUNDLE_FILES = {
    "meta.json",
    "metrics.json",
    "timeseries.jsonl",
    "grid.jsonl",
    "trace.json",
    "report.md",
}


class TestSequentialBundle:
    def test_async_bundle_complete_and_consistent(self, tiny_instance, tmp_path):
        out = tmp_path / "bundle"
        obs = Observer(out=out, sample_every_evals=36)
        eng = AsyncCGA(tiny_instance, CFG, rng=0, obs=obs)
        res = eng.run(StopCondition(max_evaluations=180))
        obs.finalize()

        assert {p.name for p in out.iterdir()} == BUNDLE_FILES
        metrics = json.loads((out / "metrics.json").read_text())
        # breeding counters agree exactly with the engine's own counts
        assert metrics["merged"]["counters"]["breeding.evaluations"] == res.evaluations
        assert metrics["merged"]["counters"]["breeding.steps"] == res.evaluations
        # phase histograms observed one sample per step
        assert metrics["merged"]["histograms"]["phase.fitness_us"]["count"] == res.evaluations

        rows = [
            json.loads(line)
            for line in (out / "timeseries.jsonl").read_text().splitlines()
        ]
        assert rows, "sampler must emit at least the forced final row"
        assert rows[-1]["evaluations"] == res.evaluations
        assert all({"t_s", "evaluations", "best", "mean", "entropy"} <= set(r) for r in rows)
        # best is monotone non-increasing under if-better replacement
        bests = [r["best"] for r in rows]
        assert bests == sorted(bests, reverse=True)

        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"], "trace must contain events"

        meta = json.loads((out / "meta.json").read_text())
        assert meta["result"]["evaluations"] == res.evaluations

    def test_vectorized_bundle(self, tiny_instance, tmp_path):
        out = tmp_path / "vec"
        obs = Observer(out=out, sample_every_evals=36)
        eng = VectorizedSyncCGA(tiny_instance, CFG, rng=0, obs=obs)
        res = eng.run(StopCondition(max_generations=4))
        obs.finalize()
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["merged"]["counters"]["breeding.evaluations"] == res.evaluations
        assert "phase.select_us" in metrics["merged"]["histograms"]

    def test_ls_acceptance_rate_in_rows(self, tiny_instance, tmp_path):
        obs = Observer(out=tmp_path / "b", sample_every_evals=36)
        AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
            StopCondition(max_evaluations=108)
        )
        rates = [r.get("ls_accept_rate") for r in obs.sampler.rows]
        assert any(r is not None and 0.0 <= r <= 1.0 for r in rates)


class TestThreadedBundle:
    def test_per_thread_series(self, tiny_instance, tmp_path):
        n = 3
        out = tmp_path / "bundle"
        obs = Observer(out=out, sample_every_evals=64)
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=n), seed=0, obs=obs)
        res = eng.run(StopCondition(max_evaluations=360))
        obs.finalize()

        metrics = json.loads((out / "metrics.json").read_text())
        # the acceptance criterion: the bundle carries N threads' series
        assert set(metrics["per_thread"]) == {str(t) for t in range(n)}
        for tid in range(n):
            per = metrics["per_thread"][str(tid)]["counters"]
            assert per["breeding.evaluations"] > 0
            assert per["sweeps"] >= 1
            assert per["lock.write_acquires"] > 0
        merged = metrics["merged"]["counters"]
        assert merged["breeding.evaluations"] == res.evaluations
        assert "sweep_us" in metrics["merged"]["histograms"]

        trace = json.loads((out / "trace.json").read_text())
        lanes = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert lanes == set(range(n))

    def test_boundary_reads_counted(self, tiny_instance, tmp_path):
        obs = Observer(out=None, sample_every_evals=64)
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        eng.run(StopCondition(max_generations=2))
        merged = obs.registry.merged().counters
        # 6x6 grid split in 2 blocks: boundary cells certainly exist
        assert merged["boundary_evals"] > 0


class TestSimulatedBundle:
    def test_virtual_time_rows_and_spans(self, tiny_instance, tmp_path):
        out = tmp_path / "sim"
        obs = Observer(out=out, sample_every_evals=None, sample_every_s=0.001)
        eng = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs
        )
        res = eng.run(StopCondition(virtual_time=0.01))
        obs.finalize()
        rows = obs.sampler.rows
        assert rows and rows[-1]["evaluations"] == res.evaluations
        # rows are stamped with the *virtual* clock
        assert rows[-1]["t_s"] <= res.elapsed_s + 0.01
        assert all("virtual_t_s" in r for r in rows)
        trace = json.loads((out / "trace.json").read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans
        # span timestamps are virtual microseconds within the budget
        assert all(0.0 <= e["ts"] <= 0.05e6 for e in spans)

    def test_tracked_contention_counters(self, tiny_instance):
        from repro.parallel.costmodel import CostModel

        sticky = CostModel(t_write_hold=500.0, t_read_hold=200.0, jitter_sigma=0.0)
        obs = Observer(out=None, sample_every_evals=10**9)
        eng = SimulatedPACGA(
            tiny_instance,
            CFG.with_(n_threads=4),
            seed=0,
            contention="tracked",
            cost_model=sticky,
            obs=obs,
        )
        res = eng.run(StopCondition(max_generations=4))
        merged = obs.registry.merged().counters
        assert merged["lock.conflicts"] == res.extra["lock_conflicts"]
        waits = merged.get("lock.read_wait_s_total", 0.0) + merged.get(
            "lock.write_wait_s_total", 0.0
        )
        assert waits == pytest.approx(res.extra["conflict_wait_s"])


class TestConfigDriven:
    def test_obsconfig_auto_finalizes(self, tiny_instance, tmp_path):
        out = tmp_path / "auto"
        cfg = CFG.with_(obs=ObsConfig(out=str(out), sample_every_evals=36))
        AsyncCGA(tiny_instance, cfg, rng=0).run(StopCondition(max_evaluations=72))
        # no manual finalize: the on_stop hook wrote the bundle
        assert {p.name for p in out.iterdir()} == BUNDLE_FILES

    def test_obsconfig_validates_cadence(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_every_evals=None, sample_every_s=None)

    def test_explicit_observer_wins(self, tiny_instance):
        cfg = CFG.with_(obs=ObsConfig(sample_every_evals=36))
        mine = Observer(out=None)
        assert resolve_observer(cfg, mine) is mine
        assert resolve_observer(cfg, None) is not None
        assert resolve_observer(CFG, None) is None


class TestZeroOverheadWhenDisabled:
    def test_no_recorder_allocations_without_obs(self, tiny_instance, monkeypatch):
        # the disabled path must never construct a MetricRecorder: patch
        # the constructor to explode and run every engine family dry
        def boom(self, *a, **k):
            raise AssertionError("MetricRecorder constructed on the disabled path")

        monkeypatch.setattr(MetricRecorder, "__init__", boom)
        AsyncCGA(tiny_instance, CFG, rng=0).run(StopCondition(max_generations=2))
        ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0).run(
            StopCondition(max_generations=2)
        )
        SimulatedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0).run(
            StopCondition(max_generations=2)
        )
        VectorizedSyncCGA(tiny_instance, CFG, rng=0).run(
            StopCondition(max_generations=2)
        )

    def test_disabled_engines_keep_plain_ops(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, CFG, rng=0)
        assert eng.obs is None
        assert eng.ops is not None
        # instrumented ops wrap callables in closures named 'select' etc.
        # on the obs path only; the plain path keeps the registry functions
        from repro.cga.selection import SELECTIONS

        assert eng.ops.select is SELECTIONS[CFG.selection]


class TestCrashSafety:
    def test_context_manager_finalizes_partial_bundle(self, tiny_instance, tmp_path):
        out = tmp_path / "crashed"
        with pytest.raises(RuntimeError, match="boom"):
            with Observer(out=out, sample_every_evals=36) as obs:
                AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
                    StopCondition(max_evaluations=108)
                )
                raise RuntimeError("boom")
        # the exception propagated AND the partial bundle exists
        assert {p.name for p in out.iterdir()} == BUNDLE_FILES
        meta = json.loads((out / "meta.json").read_text())
        assert meta["interrupted"] == {"type": "RuntimeError", "message": "boom"}

    def test_keyboard_interrupt_finalizes(self, tiny_instance, tmp_path):
        out = tmp_path / "ctrlc"
        with pytest.raises(KeyboardInterrupt):
            with Observer(out=out, sample_every_evals=36) as obs:
                AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
                    StopCondition(max_evaluations=72)
                )
                raise KeyboardInterrupt
        meta = json.loads((out / "meta.json").read_text())
        assert meta["interrupted"]["type"] == "KeyboardInterrupt"

    def test_clean_exit_has_no_interrupt_stamp(self, tiny_instance, tmp_path):
        out = tmp_path / "clean"
        with Observer(out=out, sample_every_evals=36) as obs:
            AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
                StopCondition(max_evaluations=72)
            )
        meta = json.loads((out / "meta.json").read_text())
        assert "interrupted" not in meta

    def test_rows_streamed_before_finalize(self, tiny_instance, tmp_path):
        """Every sampled row is already on disk while the run executes,
        so a hard crash (no finalize at all) still leaves the series."""
        out = tmp_path / "streaming"
        obs = Observer(out=out, sample_every_evals=36)
        AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
            StopCondition(max_evaluations=144)
        )
        # no finalize() call here, on purpose
        lines = (out / "timeseries.jsonl").read_text().splitlines()
        assert len(lines) >= 1
        assert lines == [json.dumps(r) for r in obs.sampler.rows]


class TestReporting:
    def test_render_and_load_bundle(self, tiny_instance, tmp_path):
        out = tmp_path / "bundle"
        obs = Observer(out=out, sample_every_evals=36)
        AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
            StopCondition(max_evaluations=108)
        )
        obs.finalize()
        meta, metrics, rows = load_bundle(out)
        grid_rows = load_grid_rows(out)
        term = render_terminal(meta, metrics, rows, grid_rows=grid_rows)
        md = render_markdown(meta, metrics, rows, grid_rows=grid_rows)
        for text in (term, md):
            assert "Phase timings" in text
            assert "Convergence time series" in text
            assert "Operator attribution" in text
            assert "Grid dynamics" in text
        report = (out / "report.md").read_text()
        assert report == md

    def test_summary_without_out_dir(self, tiny_instance):
        obs = Observer(out=None, sample_every_evals=36)
        AsyncCGA(tiny_instance, CFG, rng=0, obs=obs).run(
            StopCondition(max_evaluations=72)
        )
        assert obs.finalize() == {}
        assert "Phase timings" in obs.summary()

"""Property-based tests for the dynamic grid simulator.

Random-but-valid event timelines must always drain: every submitted
task completes exactly once, completions never precede arrivals, and
the reported statistics stay internally consistent.
"""

from hypothesis import given, settings, strategies as st

from repro.dynamic import (
    BatchArrival,
    DynamicGridSimulator,
    MachineJoin,
    MachineLeave,
)


@st.composite
def timelines(draw):
    """(initial_speeds, events) with only valid leave targets."""
    n_initial = draw(st.integers(1, 3))
    speeds = [draw(st.floats(1.0, 50.0)) for _ in range(n_initial)]
    alive = set(range(n_initial))
    next_machine = n_initial
    events = []
    t = 0.0
    total_tasks = 0
    for _ in range(draw(st.integers(1, 8))):
        t += draw(st.floats(0.0, 20.0))
        kind = draw(st.sampled_from(["batch", "batch", "join", "leave"]))
        if kind == "batch":
            k = draw(st.integers(1, 5))
            workloads = tuple(draw(st.floats(1.0, 100.0)) for _ in range(k))
            events.append(BatchArrival(time=t, workloads=workloads))
            total_tasks += k
        elif kind == "join":
            events.append(MachineJoin(time=t, speed=draw(st.floats(1.0, 50.0))))
            alive.add(next_machine)
            next_machine += 1
        else:
            if len(alive) <= 1:
                continue
            victim = draw(st.sampled_from(sorted(alive)))
            alive.discard(victim)
            events.append(MachineLeave(time=t, machine_id=victim))
    if total_tasks == 0:
        events.append(BatchArrival(time=t + 1.0, workloads=(10.0,)))
        total_tasks = 1
    return speeds, events, total_tasks


@given(timelines())
@settings(max_examples=50, deadline=None)
def test_every_task_completes_exactly_once(data):
    speeds, events, total_tasks = data
    stats = DynamicGridSimulator(speeds, seed=0).run(events)
    assert stats.completed == total_tasks


@given(timelines())
@settings(max_examples=50, deadline=None)
def test_makespan_after_last_arrival(data):
    speeds, events, _ = data
    stats = DynamicGridSimulator(speeds, seed=0).run(events)
    last_arrival = max(e.time for e in events if isinstance(e, BatchArrival))
    assert stats.makespan >= last_arrival


@given(timelines())
@settings(max_examples=50, deadline=None)
def test_flowtimes_positive_and_stats_consistent(data):
    speeds, events, _ = data
    sim = DynamicGridSimulator(speeds, seed=0)
    stats = sim.run(events)
    assert stats.mean_flowtime > 0
    assert stats.reschedules == len(events)
    assert len(stats.timeline) == len(events)
    assert stats.migrations >= 0
    assert stats.restarted >= 0
    # every completion is at or after its task's arrival
    for tid, done in sim._completed.items():
        assert done >= sim._arrival[tid]


@given(timelines())
@settings(max_examples=30, deadline=None)
def test_deterministic_replay(data):
    speeds, events, _ = data
    a = DynamicGridSimulator(speeds, seed=1).run(events)
    b = DynamicGridSimulator(speeds, seed=1).run(events)
    assert a.makespan == b.makespan
    assert a.mean_flowtime == b.mean_flowtime
    assert a.migrations == b.migrations

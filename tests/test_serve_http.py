"""HTTP front end, `repro serve` CLI and the SIGTERM drain contract."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve import SolveService
from repro.serve.http import HttpFrontend

FAST_JOB = {
    "problem": "flowshop",
    "instance": "fs8x4.1",
    "engine": "sync",
    "config": {"grid_rows": 4, "grid_cols": 4},
    "budget": {"max_generations": 6},
}


def _request(base: str, method: str, path: str, payload=None, timeout=10.0):
    """(status, headers, parsed body) via urllib; never raises on 4xx/5xx."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _json(body: bytes):
    return json.loads(body.decode("utf-8"))


class _Frontend:
    """Run HttpFrontend in a private event-loop thread for sync tests."""

    def __init__(self, service):
        self.service = service
        self.loop = asyncio.new_event_loop()
        import threading

        self._thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self._thread.start()
        self.frontend = asyncio.run_coroutine_threadsafe(
            HttpFrontend(service, port=0).start(), self.loop
        ).result(timeout=10)
        self.base = f"http://127.0.0.1:{self.frontend.port}"

    def close(self):
        asyncio.run_coroutine_threadsafe(self.frontend.close(), self.loop).result(
            timeout=10
        )
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def unstarted(tmp_path):
    """Service whose scheduler never runs: the queue holds still."""
    svc = SolveService(tmp_path, workers=1, queue_limit=2)
    fe = _Frontend(svc)
    yield fe
    fe.close()


@pytest.fixture
def running(tmp_path):
    svc = SolveService(tmp_path, workers=1, queue_limit=16).start()
    fe = _Frontend(svc)
    yield fe
    fe.close()
    svc.stop()


class TestEndpoints:
    def test_submit_poll_complete(self, running):
        code, _, body = _request(running.base, "POST", "/jobs", FAST_JOB)
        assert code == 202
        accepted = _json(body)
        assert accepted["state"] == "queued" and accepted["url"].startswith("/jobs/")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            code, _, body = _request(running.base, "GET", accepted["url"])
            rec = _json(body)
            if rec["state"] in ("done", "failed"):
                break
            time.sleep(0.1)
        assert code == 200 and rec["state"] == "done"
        assert rec["result"]["generations"] == 6
        code, _, body = _request(running.base, "GET", "/jobs")
        assert code == 200 and len(_json(body)["jobs"]) == 1

    def test_unknown_job_404_and_unknown_route(self, unstarted):
        code, _, body = _request(unstarted.base, "GET", "/jobs/feedfacef00d")
        assert code == 404 and "no such job" in _json(body)["error"]
        code, _, _ = _request(unstarted.base, "GET", "/nope")
        assert code == 404
        code, _, _ = _request(unstarted.base, "DELETE", "/jobs")
        assert code == 405

    def test_validation_error_is_400(self, unstarted):
        code, _, body = _request(unstarted.base, "POST", "/jobs", {"engine": "processes"})
        assert code == 400
        assert "does not support checkpoints" in _json(body)["error"]

    def test_malformed_json_is_400(self, unstarted):
        req = urllib.request.Request(
            unstarted.base + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_backpressure_is_429_with_retry_after(self, unstarted):
        for _ in range(2):
            code, _, _ = _request(unstarted.base, "POST", "/jobs", FAST_JOB)
            assert code == 202
        code, headers, body = _request(unstarted.base, "POST", "/jobs", FAST_JOB)
        assert code == 429
        assert int(headers["Retry-After"]) >= 1
        rejected = _json(body)
        assert rejected["queue_depth"] == 2 and rejected["queue_limit"] == 2

    def test_draining_is_503(self, unstarted):
        unstarted.service._draining.set()
        code, _, body = _request(unstarted.base, "POST", "/jobs", FAST_JOB)
        assert code == 503 and "draining" in _json(body)["error"]

    def test_metrics_is_openmetrics(self, unstarted):
        _request(unstarted.base, "POST", "/jobs", FAST_JOB)
        code, headers, body = _request(unstarted.base, "GET", "/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("application/openmetrics-text")
        text = body.decode("utf-8")
        assert "repro_serve_jobs_submitted_total 1" in text
        assert "repro_serve_http_requests_total" in text
        assert text.rstrip().endswith("# EOF")

    def test_healthz_snapshot(self, unstarted):
        code, _, body = _request(unstarted.base, "GET", "/healthz")
        snap = _json(body)
        assert code == 200
        assert snap["queue_limit"] == 2 and snap["draining"] is False
        assert set(snap["jobs"]) == {
            "queued", "running", "retrying", "parked", "done", "failed",
        }


class TestCliFlagParity:
    """serve and solve share one obs-flag validation path (obsflags.py)."""

    def _stderr_of(self, capsys, argv):
        rc = main(argv)
        return rc, capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [["--obs-trace"], ["--obs-sample-every", "64"], ["--obs-stack-sample", "97"]],
    )
    def test_stray_obs_flags_same_error_text(self, capsys, flags):
        rc_solve, err_solve = self._stderr_of(capsys, ["solve", *flags])
        rc_serve, err_serve = self._stderr_of(capsys, ["serve", *flags])
        assert rc_solve == rc_serve == 2
        assert err_solve == err_serve  # byte-identical: one validation path
        assert "require --obs-out" in err_solve

    def test_serve_rejects_per_run_obs_flags_even_with_obs_out(
        self, capsys, tmp_path
    ):
        out = str(tmp_path / "bundle")
        for flags, needle in [
            (["--obs-trace"], "--obs-trace"),
            (["--obs-sample-every", "64"], "--obs-sample-every"),
            (["--obs-live", "0"], "--obs-live"),
            (["--obs-profile"], "--obs-profile"),
            (["--obs-stack-sample", "97"], "--obs-stack-sample"),
        ]:
            rc = main(["serve", "--obs-out", out, *flags])
            err = capsys.readouterr().err
            assert rc == 2
            assert needle in err and "not applicable to `repro serve`" in err

    def test_serve_validates_worker_and_queue_counts(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["serve", "--queue-limit", "0"]) == 2
        assert "--queue-limit" in capsys.readouterr().err


class TestSigtermDrain:
    """The full contract: SIGTERM -> checkpoint -> exit 0 -> resume."""

    LONG_JOB = {
        "problem": "flowshop",
        "instance": "fs10x5.1",
        "engine": "sync",
        "config": {"grid_rows": 6, "grid_cols": 6, "ls_iterations": 30},
        "budget": {"max_generations": 50},
    }

    def _start_server(self, spool: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1", "--spool", str(spool),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if "serving on" in line:
                port = int(line.rsplit(":", 1)[1])
                break
            if not line and proc.poll() is not None:
                break
        assert port is not None, "server never reported its port"
        return proc, f"http://127.0.0.1:{port}"

    def test_sigterm_drains_and_restart_completes(self, tmp_path):
        spool = tmp_path / "spool"
        proc, base = self._start_server(spool)
        try:
            code, _, body = _request(base, "POST", "/jobs", self.LONG_JOB)
            assert code == 202
            jid = _json(body)["id"]
            # wait until demonstrably mid-flight so the drain has work to park
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, _, body = _request(base, "GET", f"/jobs/{jid}")
                progress = _json(body)["progress"] or {}
                if progress.get("generation", 0) >= 2:
                    break
                time.sleep(0.1)
            assert progress.get("generation", 0) >= 2
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0  # graceful drain exits 0
        finally:
            if proc.poll() is None:
                proc.kill()
        record = json.loads((spool / "jobs" / f"{jid}.json").read_text())
        assert record["state"] == "parked"
        assert (spool / "checkpoints" / f"{jid}.ckpt").is_file()

        proc, base = self._start_server(spool)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                _, _, body = _request(base, "GET", f"/jobs/{jid}")
                rec = _json(body)
                if rec["state"] in ("done", "failed"):
                    break
                time.sleep(0.2)
            assert rec["state"] == "done", rec["error"]
            assert rec["resumed"] is True
            assert rec["result"]["generations"] == self.LONG_JOB["budget"]["max_generations"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_fault_injection_requires_env_gate(self, tmp_path):
        # without REPRO_SERVE_FAULT_INJECTION=1 a crash request is inert
        spool = tmp_path / "spool"
        proc, base = self._start_server(spool)
        try:
            code, _, body = _request(
                base,
                "POST",
                "/jobs",
                dict(FAST_JOB, inject={"crash_after_generations": 1}),
            )
            assert code == 202
            jid = _json(body)["id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, _, body = _request(base, "GET", f"/jobs/{jid}")
                rec = _json(body)
                if rec["state"] in ("done", "failed"):
                    break
                time.sleep(0.1)
            assert rec["state"] == "done" and rec["attempts"] == 1
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

"""Tests for the partition schemes (runs / rows / tiles)."""

import numpy as np
import pytest

from repro.cga import CGAConfig, Grid2D, StopCondition, neighbor_table
from repro.parallel import SimulatedPACGA


GRID = Grid2D(16, 16)
TBL = neighbor_table(GRID, "l5")


def assert_valid_partition(blocks, size):
    joined = np.sort(np.concatenate(blocks))
    assert np.array_equal(joined, np.arange(size))


class TestPartitionRows:
    def test_whole_rows(self):
        blocks = GRID.partition_rows(4)
        assert_valid_partition(blocks, GRID.size)
        for block in blocks:
            assert block.size % GRID.cols == 0

    def test_uneven_row_counts(self):
        blocks = Grid2D(10, 4).partition_rows(3)
        sizes = [b.size // 4 for b in blocks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            Grid2D(4, 4).partition_rows(5)


class TestPartitionTiles:
    def test_square_tiling(self):
        blocks = GRID.partition_tiles(4)
        assert_valid_partition(blocks, GRID.size)
        assert all(b.size == 64 for b in blocks)

    def test_prefers_square_factorization(self):
        # 4 = 2x2 on a 16x16 grid: each tile is 8x8
        blocks = GRID.partition_tiles(4)
        rows, cols = GRID.coords(blocks[0])
        assert rows.max() - rows.min() == 7
        assert cols.max() - cols.min() == 7

    def test_prime_counts_fall_back_to_strips(self):
        blocks = GRID.partition_tiles(3)  # 1x3 or 3x1
        assert_valid_partition(blocks, GRID.size)
        assert len(blocks) == 3

    def test_impossible_tiling_rejected(self):
        with pytest.raises(ValueError, match="do not tile"):
            Grid2D(2, 2).partition_tiles(3)  # needs 1x3 or 3x1 > dims

    def test_tiles_have_lower_boundary_fraction_at_high_counts(self):
        # the scaling rationale: tiles beat runs on cross-block traffic
        runs = GRID.partition_scheme(16, "runs")
        tiles = GRID.partition_scheme(16, "tiles")
        bf_runs = GRID.boundary_fraction_of(runs, TBL)
        bf_tiles = GRID.boundary_fraction_of(tiles, TBL)
        assert bf_tiles < bf_runs


class TestPartitionScheme:
    def test_runs_matches_partition(self):
        a = GRID.partition_scheme(3, "runs")
        b = GRID.partition(3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown partition"):
            GRID.partition_scheme(2, "spiral")

    def test_boundary_fraction_of_single_block(self):
        assert GRID.boundary_fraction_of(GRID.partition(1), TBL) == 0.0


class TestPartitionInEngines:
    @pytest.mark.parametrize("scheme", ["runs", "rows", "tiles"])
    def test_sim_engine_runs_under_scheme(self, tiny_instance, scheme):
        config = CGAConfig(
            grid_rows=4, grid_cols=4, n_threads=4, ls_iterations=1,
            seed_with_minmin=False, partition=scheme,
        )
        sim = SimulatedPACGA(tiny_instance, config, seed=0)
        res = sim.run(StopCondition(max_generations=2))
        sim.pop.check_invariants()
        assert res.evaluations >= 2 * 16

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError, match="partition"):
            CGAConfig(partition="hexagons")

    def test_tiles_reduce_sim_boundary_fraction(self, small_instance):
        def bf(scheme):
            config = CGAConfig(n_threads=16, ls_iterations=0, partition=scheme,
                               seed_with_minmin=False)
            return SimulatedPACGA(small_instance, config, seed=0).boundary_fraction

        assert bf("tiles") < bf("runs")

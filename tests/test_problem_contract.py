"""Registry-parametrized contract suite for every registered problem.

Every :class:`repro.problems.SchedulingProblem` must honor the same
contracts regardless of workload: delta evaluation must match full
re-evaluation, batch kernels must match the scalar reference
bit-exactly, every variation operator must preserve genome feasibility
and CT exactness, and a checkpointed run must resume bit-exactly.
Adding a problem to the registry automatically runs it through this
file — there is no per-problem test to forget.
"""

import numpy as np
import pytest

from repro.problems import PROBLEMS, problem_names, problem_of, resolve_problem

#: small per-problem instances, cheap enough for 1000-move replay
_INSTANCE_SPECS = {
    "independent": "g32x8",
    "flowshop": "fs12x4.2",
}


def _instance_for(problem):
    if problem.name == "independent":
        from repro.etc import make_instance

        return make_instance(32, 8, "i", seed=2)
    return problem.load_instance(_INSTANCE_SPECS[problem.name])


@pytest.fixture(params=problem_names())
def problem(request):
    prob = resolve_problem(request.param)
    assert request.param in _INSTANCE_SPECS, (
        f"problem {request.param!r} has no contract-suite instance; "
        "add one to _INSTANCE_SPECS"
    )
    return prob


@pytest.fixture
def instance(problem):
    return _instance_for(problem)


class TestRegistry:
    def test_registered_name_matches(self, problem):
        assert PROBLEMS[problem.name] is problem

    def test_instance_maps_back_to_problem(self, problem, instance):
        assert problem.owns_instance(instance)
        assert problem_of(instance) is problem

    def test_unknown_problem_lists_valid_names(self):
        with pytest.raises(ValueError, match="independent"):
            resolve_problem("nonesuch")

    def test_default_instance_loads(self, problem):
        inst = problem.load_instance(problem.default_instance)
        assert problem.owns_instance(inst)


class TestDeltaEvaluation:
    def test_1000_random_moves_match_full_reeval(self, problem, instance):
        """The delta-evaluation gate: replay 1000 random feasible moves
        through the problem's incremental machinery and hold its CT to
        the full re-evaluation at every step."""
        rng = np.random.default_rng(11)
        s = problem.random_genomes(instance, rng, (1, instance.ntasks))[0]
        ct = problem.evaluate(instance, s).astype(np.float64)
        for i in range(1000):
            predicted = problem.random_move(s, ct, instance, rng)
            problem.check_genome(instance, s)
            full = problem.evaluate(instance, s)
            np.testing.assert_allclose(ct, full, rtol=1e-9, atol=1e-6)
            assert predicted == pytest.approx(float(full.max()), rel=1e-9)


class TestBatchKernels:
    def test_population_ct_matches_scalar_bitexact(self, problem, instance):
        rng = np.random.default_rng(5)
        S = problem.random_genomes(instance, rng, (16, instance.ntasks))
        CT = problem.population_ct(instance, S)
        assert CT.shape == (16, instance.nmachines)
        for i in range(16):
            row = problem.evaluate(instance, S[i])
            assert np.array_equal(CT[i], row), f"row {i} diverges from scalar"

    def test_batch_fitness_matches_ct_max(self, problem, instance):
        if not problem.has_batch_kernels:
            pytest.skip("no batch suite")
        rng = np.random.default_rng(6)
        S = problem.random_genomes(instance, rng, (8, instance.ntasks))
        CT = problem.population_ct(instance, S)
        fit = problem.batch_fitness[problem.default_fitness](S, CT, instance)
        assert np.array_equal(fit, CT.max(axis=1))

    def test_batch_mutations_keep_ct_exact(self, problem, instance):
        if not problem.has_batch_kernels:
            pytest.skip("no batch suite")
        for name, kernel in problem.batch_mutations.items():
            rng = np.random.default_rng(7)
            S = problem.random_genomes(instance, rng, (12, instance.ntasks))
            CT = problem.population_ct(instance, S)
            active = rng.random(12) < 0.7
            kernel(S, CT, instance, rng, active)
            for i in range(12):
                problem.check_genome(instance, S[i])
                problem.check_ct(instance, S[i], CT[i])

    def test_batch_local_search_never_worsens(self, problem, instance):
        if not problem.has_batch_kernels:
            pytest.skip("no batch suite")
        for name, kernel in problem.batch_local_searches.items():
            rng = np.random.default_rng(8)
            S = problem.random_genomes(instance, rng, (12, instance.ntasks))
            CT = problem.population_ct(instance, S)
            before = CT.max(axis=1).copy()
            kernel(S, CT, instance, rng, 5, None)
            after = CT.max(axis=1)
            assert (after <= before + 1e-9).all(), f"{name} worsened a row"
            for i in range(12):
                problem.check_genome(instance, S[i])
                problem.check_ct(instance, S[i], CT[i])

    def test_batch_recombine_preserves_feasibility(self, problem, instance):
        if not problem.has_batch_kernels:
            pytest.skip("no batch suite")
        for name, mask_fn in problem.batch_cross_masks.items():
            rng = np.random.default_rng(9)
            P = 12
            P1 = problem.random_genomes(instance, rng, (P, instance.ntasks))
            P2 = problem.random_genomes(instance, rng, (P, instance.ntasks))
            child_s = P1.copy()
            child_ct = problem.population_ct(instance, child_s)
            mask = mask_fn(P, instance.ntasks, rng)
            child_s = problem.batch_recombine(instance, child_s, child_ct, P2, mask)
            for i in range(P):
                problem.check_genome(instance, child_s[i])
                problem.check_ct(instance, child_s[i], child_ct[i])


class TestScalarOperators:
    def test_crossovers_preserve_feasibility(self, problem, instance):
        for name, op in problem.crossovers.items():
            rng = np.random.default_rng(13)
            for _ in range(25):
                p1 = problem.random_genomes(instance, rng, (1, instance.ntasks))[0]
                p2 = problem.random_genomes(instance, rng, (1, instance.ntasks))[0]
                p1_ct = problem.evaluate(instance, p1)
                child_s, child_ct = problem.recombine(
                    instance, p1, p1_ct, p2, op, rng
                )
                problem.check_genome(instance, child_s)
                problem.check_ct(instance, child_s, child_ct)

    def test_mutations_preserve_feasibility(self, problem, instance):
        for name, op in problem.mutations.items():
            rng = np.random.default_rng(14)
            s = problem.random_genomes(instance, rng, (1, instance.ntasks))[0]
            ct = problem.evaluate(instance, s).astype(np.float64)
            for _ in range(50):
                op(s, ct, instance, rng)
                problem.check_genome(instance, s)
                problem.check_ct(instance, s, ct)

    def test_local_searches_preserve_feasibility(self, problem, instance):
        for name, ls in problem.local_searches.items():
            rng = np.random.default_rng(15)
            s = problem.random_genomes(instance, rng, (1, instance.ntasks))[0]
            ct = problem.evaluate(instance, s).astype(np.float64)
            moves = ls(s, ct, instance, rng, iterations=10)
            assert isinstance(moves, int)
            problem.check_genome(instance, s)
            problem.check_ct(instance, s, ct)

    def test_seed_schedules_are_feasible(self, problem, instance):
        from repro.cga.config import CGAConfig

        config = CGAConfig(problem=problem.name, grid_rows=4, grid_cols=4)
        seeds = problem.seed_schedules(instance, config) or []
        assert seeds, "seeding enabled by default but no seeds returned"
        for sched in seeds:
            problem.check_genome(instance, np.asarray(sched.s))


class TestCheckpointResume:
    def test_v3_mid_run_resume_is_bitexact(self, problem, instance, tmp_path):
        """Checkpoint an async run mid-flight, resume through the
        universal v3 machinery, and demand the exact same trajectory as
        the uninterrupted run."""
        from repro.cga import CGAConfig, StopCondition
        from repro.cga.engine import AsyncCGA
        from repro.runtime.checkpoint import (
            load_state,
            resume_engine,
            save_checkpoint,
        )

        config = CGAConfig(
            problem=problem.name, grid_rows=4, grid_cols=4, ls_iterations=2
        )
        straight = AsyncCGA(instance, config, rng=5)
        res_straight = straight.run(StopCondition(max_generations=8))

        first = AsyncCGA(instance, config, rng=5)
        first.run(StopCondition(max_generations=4))
        path = tmp_path / "mid.json"
        save_checkpoint(first, path, stop=StopCondition(max_generations=4))

        state = load_state(path)
        assert state["format_version"] == 3
        assert state["problem"] == problem.name
        # counters resume cumulatively: the continuation runs to the
        # straight run's total budget, not another 8 generations
        engine, _ = resume_engine(state, instance=instance)
        res_resumed = engine.run(StopCondition(max_generations=8))

        assert res_resumed.best_fitness == res_straight.best_fitness
        assert np.array_equal(
            res_resumed.best_assignment, res_straight.best_assignment
        )
        assert np.array_equal(engine.pop.s, straight.pop.s)
        assert np.array_equal(engine.pop.ct, straight.pop.ct)

    def test_restore_rejects_problem_mismatch(self, tmp_path):
        from repro.cga import CGAConfig, StopCondition
        from repro.cga.engine import AsyncCGA
        from repro.runtime.checkpoint import capture_state, restore_state

        fs = resolve_problem("flowshop")
        etc = resolve_problem("independent")
        eng_fs = AsyncCGA(
            _instance_for(fs),
            CGAConfig(problem="flowshop", grid_rows=4, grid_cols=4),
            rng=1,
        )
        eng_fs.run(StopCondition(max_generations=1))
        state = capture_state(eng_fs)
        eng_etc = AsyncCGA(
            _instance_for(etc),
            CGAConfig(problem="independent", grid_rows=4, grid_cols=4),
            rng=1,
        )
        with pytest.raises(ValueError, match="problem"):
            restore_state(eng_etc, state)

    def test_v2_checkpoint_defaults_to_independent(self, tmp_path):
        """A pre-problems (v2) snapshot must load with the problem
        defaulted, not crash on the missing config field."""
        from repro.cga import CGAConfig, StopCondition
        from repro.cga.engine import AsyncCGA
        from repro.runtime.checkpoint import capture_state, restore_state

        prob = resolve_problem("independent")
        inst = _instance_for(prob)
        config = CGAConfig(grid_rows=4, grid_cols=4)
        eng = AsyncCGA(inst, config, rng=3)
        eng.run(StopCondition(max_generations=2))
        state = capture_state(eng)
        # rewrite into v2 shape: no problem stamp, no problem config field
        state["format_version"] = 2
        del state["problem"]
        del state["config"]["problem"]
        other = AsyncCGA(inst, config, rng=0)
        restore_state(other, state)
        assert np.array_equal(other.pop.s, eng.pop.s)
